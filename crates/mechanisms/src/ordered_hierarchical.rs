//! The Ordered Hierarchical Mechanism (Section 7.2).
//!
//! A hybrid structure for the policy `(T, G^{d,θ}, I_n)` on an ordered
//! domain, interpolating between the Ordered Mechanism (θ = 1) and the
//! hierarchical mechanism (θ = |T|):
//!
//! * **S nodes** `s_i = q[x_1, x_{iθ}]`, `i = 1..k`, `k = ⌈|T|/θ⌉`:
//!   prefix counts at stride θ. Moving one tuple a distance ≤ θ crosses at
//!   most one stride boundary, so the S-node vector has sensitivity 1 and
//!   each `s_i` (i ≥ 2) is released with `Lap(1/ε_S)`.
//! * **H subtrees** `H_i`: a fanout-`f` interval tree over block `i`'s θ
//!   values, of edge-height `h = ⌈log_f θ⌉`. Sub-block ranges decompose
//!   into *non-root* H nodes (a prefix query never needs a whole block —
//!   it would use the S node instead), and a tuple change touches at most
//!   `2h` of those, so each is released with `Lap(2h/ε_H)`.
//! * `s_1` doubles as the root of `H_1`, so the whole of `H_1` (root
//!   included) is noised with `Lap(2h/(ε_S + ε_H))`.
//!
//! The expected range-query error (Eq. 14) is
//! `c₁/ε_S² + c₂/ε_H²` with `c₁ = 4(|T|−θ)/(|T|+1)` and
//! `c₂ = 8(f−1)·log_f³θ·|T|/(|T|+1)`, minimized at
//! `ε_S* = c₁^⅓/(c₁^⅓ + c₂^⅓)·ε` (Eq. 15).

use crate::hierarchical::{BudgetSplit, HierarchicalMechanism, HierarchicalRelease, IntervalTree};
use bf_core::{sample_laplace, Epsilon};
use rand::Rng;

/// Error constants `(c1, c2)` of Eq. 14 for a domain size, threshold and
/// fanout.
pub fn error_constants(size: usize, theta: usize, fanout: usize) -> (f64, f64) {
    assert!(size >= 1 && theta >= 1 && fanout >= 2);
    let t = size as f64;
    let theta_f = theta.min(size) as f64;
    let c1 = 4.0 * (t - theta_f) / (t + 1.0);
    let log_f_theta = if theta <= 1 {
        0.0
    } else {
        theta_f.ln() / (fanout as f64).ln()
    };
    let c2 = 8.0 * (fanout as f64 - 1.0) * log_f_theta.powi(3) * t / (t + 1.0);
    (c1, c2)
}

/// The optimal S-budget fraction `ε_S*/ε` from Eq. 15. Returns 1.0 when
/// `c2 = 0` (pure ordered) and 0.0 when `c1 = 0` (pure hierarchical).
pub fn optimal_split(size: usize, theta: usize, fanout: usize) -> f64 {
    let (c1, c2) = error_constants(size, theta, fanout);
    if c2 == 0.0 {
        return 1.0;
    }
    if c1 == 0.0 {
        return 0.0;
    }
    let a = c1.cbrt();
    let b = c2.cbrt();
    a / (a + b)
}

/// The expected per-range-query error of Eq. 14 for a concrete split.
pub fn expected_range_error(
    size: usize,
    theta: usize,
    fanout: usize,
    eps_s: f64,
    eps_h: f64,
) -> f64 {
    let (c1, c2) = error_constants(size, theta, fanout);
    let s_term = if c1 == 0.0 { 0.0 } else { c1 / (eps_s * eps_s) };
    let h_term = if c2 == 0.0 { 0.0 } else { c2 / (eps_h * eps_h) };
    s_term + h_term
}

/// Configuration of the Ordered Hierarchical Mechanism.
///
/// # Examples
///
/// ```
/// use bf_core::Epsilon;
/// use bf_mechanisms::OrderedHierarchicalMechanism;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let counts = vec![1.0; 256];
/// let mech = OrderedHierarchicalMechanism::new(Epsilon::new(0.5).unwrap(), 16, 4);
/// let mut rng = StdRng::seed_from_u64(1);
/// let release = mech.release(&counts, &mut rng);
/// assert_eq!(release.regime(), "hybrid");
/// assert!(release.range(10, 200).is_finite());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OrderedHierarchicalMechanism {
    /// Total privacy budget ε = ε_S + ε_H.
    pub epsilon: Epsilon,
    /// Distance threshold θ in domain cells (θ ≥ |T| ⇒ pure hierarchical).
    pub theta: usize,
    /// Fanout of the H subtrees.
    pub fanout: usize,
    /// S-budget fraction; `None` selects the Eq. 15 optimum.
    pub eps_s_fraction: Option<f64>,
}

impl OrderedHierarchicalMechanism {
    /// A mechanism with the optimal budget split.
    pub fn new(epsilon: Epsilon, theta: usize, fanout: usize) -> Self {
        assert!(theta >= 1, "theta must be at least 1");
        assert!(fanout >= 2, "fanout must be at least 2");
        Self {
            epsilon,
            theta,
            fanout,
            eps_s_fraction: None,
        }
    }

    /// Overrides the budget split (ablation).
    pub fn with_split(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        self.eps_s_fraction = Some(fraction);
        self
    }

    /// The `(ε_S, ε_H)` pair this mechanism will use on a domain of the
    /// given size.
    pub fn budget(&self, size: usize) -> (f64, f64) {
        let theta = self.theta.min(size);
        let frac = self
            .eps_s_fraction
            .unwrap_or_else(|| optimal_split(size, theta, self.fanout));
        let e = self.epsilon.value();
        (e * frac, e * (1.0 - frac))
    }

    /// Releases the structure over an exact histogram.
    pub fn release(&self, histogram: &[f64], rng: &mut impl Rng) -> OrderedHierarchicalRelease {
        let size = histogram.len();
        assert!(size >= 1);
        let theta = self.theta.min(size);
        let (eps_s, eps_h) = self.budget(size);

        // Degenerate splits collapse to the pure mechanisms.
        if theta >= size || eps_s <= f64::EPSILON {
            let hm = HierarchicalMechanism {
                fanout: self.fanout,
                epsilon: self.epsilon,
                split: BudgetSplit::Uniform,
                consistency: false,
            };
            return OrderedHierarchicalRelease {
                inner: OhInner::Hierarchical(hm.release(histogram, rng)),
            };
        }
        if theta == 1 || eps_h <= f64::EPSILON {
            // Pure ordered: every position is a stride boundary; noisy
            // prefixes with Lap(1/ε).
            let scale = 1.0 / self.epsilon.value();
            let mut prefix = Vec::with_capacity(size);
            let mut acc = 0.0;
            for &c in histogram {
                acc += c;
                prefix.push(acc + sample_laplace(rng, scale));
            }
            return OrderedHierarchicalRelease {
                inner: OhInner::PureOrdered { prefix },
            };
        }

        let k = size.div_ceil(theta);
        // Edge-height of a θ-block tree.
        let h = (IntervalTree::build(theta, self.fanout).levels() - 1) as f64;

        // Exact prefix sums for the S nodes.
        let mut prefix = vec![0.0; size + 1];
        for (i, &c) in histogram.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c;
        }

        // H subtrees per block; block i (0-based) covers
        // [i·θ, min((i+1)θ, size) − 1].
        let mut subtrees = Vec::with_capacity(k);
        for i in 0..k {
            let lo = i * theta;
            let hi = ((i + 1) * theta).min(size) - 1;
            let tree = IntervalTree::build(hi - lo + 1, self.fanout);
            let mut values = tree.exact_counts(&histogram[lo..=hi]);
            let scale = if i == 0 {
                2.0 * h / (eps_s + eps_h)
            } else {
                2.0 * h / eps_h
            };
            for (node, v) in values.iter_mut().enumerate() {
                if i > 0 && node == 0 {
                    // Roots of H_i (i ≥ 2) are never queried and never
                    // released; keep the slot unused.
                    *v = f64::NAN;
                    continue;
                }
                *v += sample_laplace(rng, scale);
            }
            subtrees.push((tree, values));
        }

        // Noisy S values: s_1 is H_1's root; s_i (i ≥ 2) gets Lap(1/ε_S).
        let mut s_values = Vec::with_capacity(k);
        s_values.push(subtrees[0].1[0]);
        let s_scale = 1.0 / eps_s;
        for i in 2..=k {
            let pos = (i * theta).min(size);
            s_values.push(prefix[pos] + sample_laplace(rng, s_scale));
        }

        OrderedHierarchicalRelease {
            inner: OhInner::Hybrid {
                theta,
                size,
                s_values,
                subtrees,
            },
        }
    }
}

#[derive(Debug, Clone)]
enum OhInner {
    /// θ ≥ |T|: the classical hierarchical mechanism.
    Hierarchical(HierarchicalRelease),
    /// θ = 1: noisy prefix sums only.
    PureOrdered { prefix: Vec<f64> },
    /// The hybrid S/H structure.
    Hybrid {
        theta: usize,
        size: usize,
        /// `s_values[i]` is the noisy prefix at 1-based position
        /// `min((i+1)·θ, |T|)`.
        s_values: Vec<f64>,
        /// Per block: the interval tree and noisy node values (roots of
        /// blocks ≥ 1 are NaN placeholders — never queried).
        subtrees: Vec<(IntervalTree, Vec<f64>)>,
    },
}

/// A released Ordered Hierarchical structure answering prefix and range
/// queries.
#[derive(Debug, Clone)]
pub struct OrderedHierarchicalRelease {
    inner: OhInner,
}

impl OrderedHierarchicalRelease {
    /// Noisy cumulative count `q[x_1, x_{i+1}]` for 0-based index `i`
    /// (i.e. the count of values ≤ i).
    pub fn prefix(&self, i: usize) -> f64 {
        match &self.inner {
            OhInner::Hierarchical(r) => r.range(0, i),
            OhInner::PureOrdered { prefix } => prefix[i],
            OhInner::Hybrid {
                theta,
                size,
                s_values,
                subtrees,
            } => {
                debug_assert!(i < *size);
                let pos = i + 1; // 1-based position
                                 // Block containing index i, and that block's end position.
                let block = i / theta;
                let block_end = ((block + 1) * theta).min(*size);
                if pos == block_end {
                    // Aligned with an S node (including the short last
                    // block, whose end is s_k = q[x_1, x_|T|]).
                    return s_values[block];
                }
                let s_part = if block == 0 { 0.0 } else { s_values[block - 1] };
                let within = pos - block * theta; // 1..block_len-1
                let (tree, values) = &subtrees[block];
                let h_part: f64 = tree
                    .decompose(0, within - 1)
                    .into_iter()
                    .map(|id| values[id])
                    .sum();
                debug_assert!(h_part.is_finite(), "queried an unreleased H root");
                s_part + h_part
            }
        }
    }

    /// Noisy range count `q[lo, hi]` (inclusive, 0-based).
    pub fn range(&self, lo: usize, hi: usize) -> f64 {
        match &self.inner {
            OhInner::Hierarchical(r) => r.range(lo, hi),
            _ => {
                let upper = self.prefix(hi);
                let lower = if lo == 0 { 0.0 } else { self.prefix(lo - 1) };
                upper - lower
            }
        }
    }

    /// Which regime the release operated in: `"hierarchical"`,
    /// `"ordered"`, or `"hybrid"`.
    pub fn regime(&self) -> &'static str {
        match &self.inner {
            OhInner::Hierarchical(_) => "hierarchical",
            OhInner::PureOrdered { .. } => "ordered",
            OhInner::Hybrid { .. } => "hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(size: usize) -> Vec<f64> {
        (0..size).map(|i| ((i * 13 + 5) % 11) as f64).collect()
    }

    fn exact_prefix(h: &[f64], i: usize) -> f64 {
        h[..=i].iter().sum()
    }

    #[test]
    fn constants_limits() {
        let (c1, c2) = error_constants(100, 1, 16);
        assert!(c1 > 0.0);
        assert_eq!(c2, 0.0);
        let (c1, c2) = error_constants(100, 100, 16);
        assert_eq!(c1, 0.0);
        assert!(c2 > 0.0);
    }

    #[test]
    fn optimal_split_limits() {
        assert_eq!(optimal_split(100, 1, 16), 1.0);
        assert_eq!(optimal_split(100, 100, 16), 0.0);
        let mid = optimal_split(1000, 50, 16);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn optimal_split_minimizes_expected_error() {
        let (size, theta, f) = (4096, 64, 16);
        let star = optimal_split(size, theta, f);
        let eps = 1.0;
        let best = expected_range_error(size, theta, f, eps * star, eps * (1.0 - star));
        for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let e = expected_range_error(size, theta, f, eps * frac, eps * (1.0 - frac));
            assert!(best <= e + 1e-9, "fraction {frac} beats optimum");
        }
    }

    #[test]
    fn regimes() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = histogram(64);
        let eps = Epsilon::new(1.0).unwrap();
        assert_eq!(
            OrderedHierarchicalMechanism::new(eps, 64, 16)
                .release(&h, &mut rng)
                .regime(),
            "hierarchical"
        );
        assert_eq!(
            OrderedHierarchicalMechanism::new(eps, 1, 16)
                .release(&h, &mut rng)
                .regime(),
            "ordered"
        );
        assert_eq!(
            OrderedHierarchicalMechanism::new(eps, 8, 4)
                .release(&h, &mut rng)
                .regime(),
            "hybrid"
        );
    }

    #[test]
    fn hybrid_prefixes_unbiased() {
        let h = histogram(50);
        let eps = Epsilon::new(2.0).unwrap();
        let m = OrderedHierarchicalMechanism::new(eps, 8, 4);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 1500;
        for idx in [0usize, 7, 8, 15, 23, 31, 49] {
            let mut acc = 0.0;
            for _ in 0..trials {
                acc += m.release(&h, &mut rng).prefix(idx);
            }
            let mean = acc / trials as f64;
            let truth = exact_prefix(&h, idx);
            assert!(
                (mean - truth).abs() < truth.max(10.0) * 0.1 + 2.0,
                "prefix {idx}: mean {mean} vs {truth}"
            );
        }
    }

    #[test]
    fn hybrid_ranges_unbiased_and_finite() {
        let h = histogram(100);
        let eps = Epsilon::new(1.0).unwrap();
        let m = OrderedHierarchicalMechanism::new(eps, 10, 4);
        let mut rng = StdRng::seed_from_u64(10);
        for (lo, hi) in [(0, 99), (5, 14), (10, 19), (37, 83), (99, 99)] {
            let v = m.release(&h, &mut rng).range(lo, hi);
            assert!(v.is_finite(), "range [{lo},{hi}] not finite");
        }
    }

    #[test]
    fn last_short_block_handled() {
        // size 53, theta 10 → 6 blocks, last of length 3.
        let h = histogram(53);
        let m = OrderedHierarchicalMechanism::new(Epsilon::new(1.0).unwrap(), 10, 4);
        let mut rng = StdRng::seed_from_u64(11);
        let r = m.release(&h, &mut rng);
        for i in 0..53 {
            assert!(r.prefix(i).is_finite(), "prefix {i}");
        }
    }

    #[test]
    fn theta_larger_than_domain_clamps() {
        let h = histogram(16);
        let m = OrderedHierarchicalMechanism::new(Epsilon::new(1.0).unwrap(), 500, 4);
        let mut rng = StdRng::seed_from_u64(12);
        assert_eq!(m.release(&h, &mut rng).regime(), "hierarchical");
    }

    #[test]
    fn small_theta_beats_hierarchical_on_range_mse() {
        // The headline claim of Section 7: at small θ the OH error is far
        // below the hierarchical baseline.
        let size = 1024;
        let h = histogram(size);
        let eps = Epsilon::new(0.5).unwrap();
        let ordered = OrderedHierarchicalMechanism::new(eps, 1, 16);
        let hier = OrderedHierarchicalMechanism::new(eps, size, 16);
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 150;
        let ranges = [(100usize, 400usize), (0, 1023), (512, 600)];
        let mut mse_ord = 0.0;
        let mut mse_hier = 0.0;
        for _ in 0..trials {
            let ro = ordered.release(&h, &mut rng);
            let rh = hier.release(&h, &mut rng);
            for &(lo, hi) in &ranges {
                let truth: f64 = h[lo..=hi].iter().sum();
                mse_ord += (ro.range(lo, hi) - truth).powi(2);
                mse_hier += (rh.range(lo, hi) - truth).powi(2);
            }
        }
        assert!(
            mse_ord * 5.0 < mse_hier,
            "ordered {mse_ord} should be ≪ hierarchical {mse_hier}"
        );
    }

    #[test]
    fn split_override() {
        let m =
            OrderedHierarchicalMechanism::new(Epsilon::new(1.0).unwrap(), 8, 4).with_split(0.25);
        let (es, eh) = m.budget(64);
        assert!((es - 0.25).abs() < 1e-12);
        assert!((eh - 0.75).abs() < 1e-12);
    }
}
