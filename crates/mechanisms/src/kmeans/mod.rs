//! K-means clustering under Blowfish policies (Section 6).
//!
//! The private algorithm is SuLQ k-means (Blum et al. \[2\]): each Lloyd
//! iteration asks two queries — cluster sizes `q_size` and per-cluster
//! coordinate sums `q_sum` — and perturbs both with Laplace noise. Under
//! differential privacy `q_sum` has sensitivity `2·d(T)` (the domain's L1
//! diameter); under Blowfish policies it shrinks to the largest secret
//! edge length (Lemma 6.1), which is where the accuracy gains of Figure 1
//! come from.

pub mod lloyd;
pub mod private;
pub mod sensitivity;

pub use lloyd::lloyd_kmeans;
pub use private::PrivateKmeans;
pub use sensitivity::KmeansSecretSpec;

use bf_domain::PointSet;
use rand::seq::index::sample;
use rand::Rng;

/// Index of the nearest centroid to a point (L2).
pub fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (j, c) in centroids.iter().enumerate() {
        let d = PointSet::sq_l2(point, c);
        if d < best_d {
            best_d = d;
            best = j;
        }
    }
    best
}

/// Points below which parallel assignment is not worth the scoped-pool
/// spawn overhead.
const PAR_ASSIGN_MIN_POINTS: usize = 4096;

/// Assigns every point to its nearest centroid. Large point sets are
/// split into chunks assigned in parallel across the available cores
/// (the Lloyd assignment step is the `O(n·k·d)` bulk of each private and
/// non-private iteration); the result is identical to the sequential
/// pass since assignment is pure per-point arithmetic.
pub fn assign(points: &PointSet, centroids: &[Vec<f64>]) -> Vec<usize> {
    let n = points.len();
    let workers = rayon::current_num_threads();
    if n < PAR_ASSIGN_MIN_POINTS || workers <= 1 {
        return points
            .iter()
            .map(|p| nearest_centroid(p, centroids))
            .collect();
    }
    // 4 chunks per worker keeps stragglers short without paying per-point
    // scheduling overhead.
    let chunk = n.div_ceil(workers * 4).max(1);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();
    rayon::par_map(&ranges, |&(lo, hi)| {
        (lo..hi)
            .map(|i| nearest_centroid(points.point(i), centroids))
            .collect::<Vec<usize>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// The k-means objective (Definition 6.1): total squared L2 distance from
/// each point to its nearest centroid.
pub fn objective(points: &PointSet, centroids: &[Vec<f64>]) -> f64 {
    points
        .iter()
        .map(|p| PointSet::sq_l2(p, &centroids[nearest_centroid(p, centroids)]))
        .sum()
}

/// Samples `k` distinct data points as initial centroids (the common
/// "random" initialization both the private and non-private runs share so
/// that error ratios isolate the noise effect).
pub fn init_random(points: &PointSet, k: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    assert!(k >= 1 && k <= points.len(), "need 1 ≤ k ≤ n");
    sample(rng, points.len(), k)
        .into_iter()
        .map(|i| points.point(i).to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_domain::BoundingBox;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square_points() -> PointSet {
        let bbox = BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        PointSet::new(
            vec![
                vec![1.0, 1.0],
                vec![1.0, 2.0],
                vec![9.0, 9.0],
                vec![9.0, 8.0],
            ],
            bbox,
        )
    }

    #[test]
    fn nearest_and_assign() {
        let pts = square_points();
        let cents = vec![vec![1.0, 1.5], vec![9.0, 8.5]];
        assert_eq!(assign(&pts, &cents), vec![0, 0, 1, 1]);
        assert_eq!(nearest_centroid(&[0.0, 0.0], &cents), 0);
    }

    #[test]
    fn objective_value() {
        let pts = square_points();
        let cents = vec![vec![1.0, 1.5], vec![9.0, 8.5]];
        // Each point is 0.5 away in one coordinate: 4 * 0.25.
        assert!((objective(&pts, &cents) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_assignment_matches_sequential() {
        // Past the parallel threshold, the chunked assignment must be
        // bit-identical to the sequential map.
        let n = PAR_ASSIGN_MIN_POINTS + 513;
        let bbox = BoundingBox::new(vec![0.0, 0.0], vec![100.0, 100.0]);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 100) as f64, ((i * 7) % 100) as f64])
            .collect();
        let points = PointSet::new(pts, bbox);
        let cents = vec![vec![10.0, 10.0], vec![50.0, 50.0], vec![90.0, 20.0]];
        let expect: Vec<usize> = points.iter().map(|p| nearest_centroid(p, &cents)).collect();
        assert_eq!(assign(&points, &cents), expect);
    }

    #[test]
    fn init_yields_distinct_indices() {
        let pts = square_points();
        let mut rng = StdRng::seed_from_u64(3);
        let cents = init_random(&pts, 3, &mut rng);
        assert_eq!(cents.len(), 3);
        for c in &cents {
            assert_eq!(c.len(), 2);
        }
    }
}
