//! Sensitivities of the k-means queries per policy (Lemma 6.1), in the
//! continuous embedding the clustering runs in.
//!
//! `q_size` is a histogram over clusters: sensitivity 2 for every secret
//! graph with at least one edge (0 only for the degenerate all-singleton
//! partition, where clustering is exact). `q_sum` moves one point between
//! two cluster sums, so its L1 sensitivity is twice the largest L1 edge
//! length of the secret graph *measured in point coordinates*:
//!
//! | secret graph | `q_sum` sensitivity |
//! |---|---|
//! | `G^full` (= DP) | `2·d(T)` — the bounding-box L1 diameter |
//! | `G^attr` | `2·max_A |A|` — the largest single-axis extent |
//! | `G^{L1,θ}` | `2·θ` (physical units) |
//! | `G^P` | `2·max_P d(P)` — the largest block diameter |

use bf_domain::BoundingBox;

/// Which sensitive-information family the clustering policy uses, with
/// physical parameters matching the point embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KmeansSecretSpec {
    /// Full-domain secrets — ordinary differential privacy ("laplace" in
    /// the figures).
    Full,
    /// Attribute secrets `G^attr`.
    Attribute,
    /// Distance-threshold secrets `G^{L1,θ}` with θ in physical units
    /// (e.g. km).
    L1Threshold(f64),
    /// Partitioned secrets `G^P`; the parameter is the largest L1 diameter
    /// of a block in physical units.
    PartitionMaxDiameter(f64),
    /// All-singleton partition: nothing is secret within a block, both
    /// queries have sensitivity 0 and clustering is exact
    /// (`partition|120000` in Figure 1(f)).
    Exact,
}

impl KmeansSecretSpec {
    /// Sensitivity of `q_size` (cluster cardinalities).
    pub fn qsize_sensitivity(&self) -> f64 {
        match self {
            KmeansSecretSpec::Exact => 0.0,
            _ => 2.0,
        }
    }

    /// Sensitivity of `q_sum` (per-cluster coordinate sums) given the
    /// domain bounding box.
    pub fn qsum_sensitivity(&self, bbox: &BoundingBox) -> f64 {
        let diam = bbox.l1_diameter();
        match self {
            KmeansSecretSpec::Full => 2.0 * diam,
            KmeansSecretSpec::Attribute => 2.0 * bbox.max_extent(),
            KmeansSecretSpec::L1Threshold(theta) => {
                assert!(*theta > 0.0, "theta must be positive");
                2.0 * theta.min(diam)
            }
            KmeansSecretSpec::PartitionMaxDiameter(d) => {
                assert!(*d >= 0.0);
                2.0 * d.min(diam)
            }
            KmeansSecretSpec::Exact => 0.0,
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> String {
        match self {
            KmeansSecretSpec::Full => "laplace".into(),
            KmeansSecretSpec::Attribute => "attribute".into(),
            KmeansSecretSpec::L1Threshold(t) => format!("blowfish|{t}"),
            KmeansSecretSpec::PartitionMaxDiameter(d) => format!("partition|d={d:.0}"),
            KmeansSecretSpec::Exact => "exact".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bbox() -> BoundingBox {
        BoundingBox::new(vec![0.0, 0.0], vec![2222.0, 1442.0])
    }

    #[test]
    fn full_is_diameter() {
        assert_eq!(
            KmeansSecretSpec::Full.qsum_sensitivity(&bbox()),
            2.0 * (2222.0 + 1442.0)
        );
    }

    #[test]
    fn attribute_is_max_extent() {
        assert_eq!(
            KmeansSecretSpec::Attribute.qsum_sensitivity(&bbox()),
            2.0 * 2222.0
        );
    }

    #[test]
    fn threshold_clamped_by_diameter() {
        assert_eq!(
            KmeansSecretSpec::L1Threshold(100.0).qsum_sensitivity(&bbox()),
            200.0
        );
        assert_eq!(
            KmeansSecretSpec::L1Threshold(1e9).qsum_sensitivity(&bbox()),
            KmeansSecretSpec::Full.qsum_sensitivity(&bbox())
        );
    }

    #[test]
    fn ordering_matches_lemma_6_1() {
        // Every Blowfish spec is at most the DP sensitivity.
        let b = bbox();
        let dp = KmeansSecretSpec::Full.qsum_sensitivity(&b);
        for spec in [
            KmeansSecretSpec::Attribute,
            KmeansSecretSpec::L1Threshold(500.0),
            KmeansSecretSpec::PartitionMaxDiameter(300.0),
            KmeansSecretSpec::Exact,
        ] {
            assert!(spec.qsum_sensitivity(&b) <= dp, "{}", spec.label());
        }
    }

    #[test]
    fn exact_partition_zero() {
        assert_eq!(KmeansSecretSpec::Exact.qsize_sensitivity(), 0.0);
        assert_eq!(KmeansSecretSpec::Exact.qsum_sensitivity(&bbox()), 0.0);
        assert_eq!(KmeansSecretSpec::Full.qsize_sensitivity(), 2.0);
    }
}
