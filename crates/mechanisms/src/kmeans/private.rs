//! SuLQ-style private k-means (Section 6), calibrated to a Blowfish
//! policy via [`KmeansSecretSpec`].

use super::sensitivity::KmeansSecretSpec;
use super::{assign, objective};
use bf_core::{sample_laplace, Epsilon};
use bf_domain::PointSet;
use rand::Rng;

/// Private k-means configuration.
///
/// # Examples
///
/// ```
/// use bf_core::Epsilon;
/// use bf_domain::{BoundingBox, PointSet};
/// use bf_mechanisms::kmeans::{init_random, KmeansSecretSpec, PrivateKmeans};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let points = PointSet::new(
///     vec![vec![1.0, 1.0], vec![1.5, 1.0], vec![9.0, 9.0], vec![8.5, 9.0]],
///     BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]),
/// );
/// let mut rng = StdRng::seed_from_u64(1);
/// let init = init_random(&points, 2, &mut rng);
/// let mech = PrivateKmeans::new(
///     2,
///     5,
///     Epsilon::new(1.0).unwrap(),
///     KmeansSecretSpec::L1Threshold(2.0), // "cannot locate me within 2 units"
/// );
/// let centroids = mech.run(&points, &init, &mut rng);
/// assert_eq!(centroids.len(), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PrivateKmeans {
    /// Number of clusters `k`.
    pub k: usize,
    /// Fixed number of Lloyd iterations (the paper uses 10).
    pub iterations: usize,
    /// Total privacy budget, split uniformly across iterations and then
    /// evenly between `q_size` and `q_sum` within each iteration.
    pub epsilon: Epsilon,
    /// The sensitive-information specification.
    pub spec: KmeansSecretSpec,
}

impl PrivateKmeans {
    /// Builds a configuration.
    pub fn new(k: usize, iterations: usize, epsilon: Epsilon, spec: KmeansSecretSpec) -> Self {
        assert!(k >= 1 && iterations >= 1);
        Self {
            k,
            iterations,
            epsilon,
            spec,
        }
    }

    /// Runs private k-means from the given initial centroids, returning
    /// the final centroids.
    ///
    /// Per iteration: noisy sizes `ñ_j = |S_j| + Lap(S_size/ε')` and noisy
    /// sums `Σ̃_j = Σ_j + Lap(S_sum/ε')` per coordinate, with
    /// `ε' = ε / (2·iterations)`; the centroid update is `Σ̃_j / ñ_j`,
    /// clamped into the domain bounding box. Clusters with noisy size
    /// below 1 keep their previous centroid.
    pub fn run(
        &self,
        points: &PointSet,
        initial: &[Vec<f64>],
        rng: &mut impl Rng,
    ) -> Vec<Vec<f64>> {
        assert_eq!(
            initial.len(),
            self.k,
            "need one initial centroid per cluster"
        );
        let dim = points.dim();
        let bbox = points.bbox().clone();
        let per_query_eps = self.epsilon.value() / (2.0 * self.iterations as f64);
        let size_scale = self.spec.qsize_sensitivity() / per_query_eps;
        let sum_scale = self.spec.qsum_sensitivity(&bbox) / per_query_eps;

        let mut centroids = initial.to_vec();
        for _ in 0..self.iterations {
            let labels = assign(points, &centroids);
            let mut sums = vec![vec![0.0; dim]; self.k];
            let mut counts = vec![0.0f64; self.k];
            for (p, &j) in points.iter().zip(&labels) {
                counts[j] += 1.0;
                for (s, &v) in sums[j].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for j in 0..self.k {
                let noisy_count = counts[j] + sample_laplace(rng, size_scale);
                if noisy_count < 1.0 {
                    continue; // keep the previous centroid
                }
                let mut new_c = Vec::with_capacity(dim);
                for s in &sums[j] {
                    new_c.push((s + sample_laplace(rng, sum_scale)) / noisy_count);
                }
                bbox.clamp(&mut new_c);
                centroids[j] = new_c;
            }
        }
        centroids
    }

    /// Convenience: runs the mechanism and reports the objective ratio
    /// against a non-private Lloyd run from the same initialization — the
    /// quantity plotted in Figure 1.
    pub fn objective_ratio(
        &self,
        points: &PointSet,
        initial: &[Vec<f64>],
        rng: &mut impl Rng,
    ) -> f64 {
        let private = self.run(points, initial, rng);
        let baseline = super::lloyd::lloyd_kmeans(points, initial, self.iterations);
        let obj_p = objective(points, &private);
        let obj_b = objective(points, &baseline);
        if obj_b == 0.0 {
            if obj_p == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            obj_p / obj_b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::init_random;
    use bf_domain::BoundingBox;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n_per: usize, rng: &mut impl Rng) -> PointSet {
        let centers = [[2.0, 2.0], [8.0, 8.0], [2.0, 8.0], [8.0, 2.0]];
        let mut pts = Vec::new();
        for c in centers {
            for _ in 0..n_per {
                let dx: f64 = rng.random::<f64>() - 0.5;
                let dy: f64 = rng.random::<f64>() - 0.5;
                pts.push(vec![
                    (c[0] + dx).clamp(0.0, 10.0),
                    (c[1] + dy).clamp(0.0, 10.0),
                ]);
            }
        }
        PointSet::new(pts, BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]))
    }

    #[test]
    fn exact_spec_reproduces_lloyd() {
        let mut rng = StdRng::seed_from_u64(8);
        let pts = blobs(50, &mut rng);
        let init = init_random(&pts, 4, &mut rng);
        let m = PrivateKmeans::new(4, 5, Epsilon::new(1.0).unwrap(), KmeansSecretSpec::Exact);
        let ratio = m.objective_ratio(&pts, &init, &mut rng);
        assert!((ratio - 1.0).abs() < 1e-9, "exact spec must match Lloyd");
    }

    #[test]
    fn centroids_stay_in_bbox() {
        let mut rng = StdRng::seed_from_u64(9);
        let pts = blobs(30, &mut rng);
        let init = init_random(&pts, 4, &mut rng);
        let m = PrivateKmeans::new(4, 10, Epsilon::new(0.1).unwrap(), KmeansSecretSpec::Full);
        let cents = m.run(&pts, &init, &mut rng);
        for c in cents {
            assert!(pts.bbox().contains(&c), "centroid {c:?} escaped the box");
        }
    }

    #[test]
    fn smaller_theta_gives_lower_error_on_average() {
        // The Figure 1 trend: tighter policies → less noise → lower
        // objective ratio, at least in aggregate.
        let mut rng = StdRng::seed_from_u64(10);
        let pts = blobs(100, &mut rng);
        let eps = Epsilon::new(0.4).unwrap();
        let trials = 12;
        let mut ratio_full = 0.0;
        let mut ratio_tight = 0.0;
        for t in 0..trials {
            let mut trial_rng = StdRng::seed_from_u64(100 + t);
            let init = init_random(&pts, 4, &mut trial_rng);
            let full = PrivateKmeans::new(4, 10, eps, KmeansSecretSpec::Full);
            let tight = PrivateKmeans::new(4, 10, eps, KmeansSecretSpec::L1Threshold(0.5));
            ratio_full += full.objective_ratio(&pts, &init, &mut trial_rng);
            ratio_tight += tight.objective_ratio(&pts, &init, &mut trial_rng);
        }
        assert!(
            ratio_tight < ratio_full,
            "tight {ratio_tight} should beat full {ratio_full}"
        );
    }

    #[test]
    fn ratio_handles_zero_baseline() {
        // Single point: Lloyd objective is 0; private ratio is defined.
        let pts = PointSet::new(vec![vec![5.0]], BoundingBox::new(vec![0.0], vec![10.0]));
        let mut rng = StdRng::seed_from_u64(11);
        let m = PrivateKmeans::new(1, 2, Epsilon::new(10.0).unwrap(), KmeansSecretSpec::Exact);
        let r = m.objective_ratio(&pts, &[vec![5.0]], &mut rng);
        assert_eq!(r, 1.0);
    }
}
