//! Non-private Lloyd iteration — the utility reference point for Figure 1.

use super::assign;
use bf_domain::PointSet;

/// Runs `iterations` Lloyd updates from the given initial centroids and
/// returns the final centroids.
///
/// Empty clusters keep their previous centroid (the same convention the
/// private variant uses, so the two runs are directly comparable).
pub fn lloyd_kmeans(points: &PointSet, initial: &[Vec<f64>], iterations: usize) -> Vec<Vec<f64>> {
    let k = initial.len();
    let dim = points.dim();
    let mut centroids: Vec<Vec<f64>> = initial.to_vec();
    for _ in 0..iterations {
        let labels = assign(points, &centroids);
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &j) in points.iter().zip(&labels) {
            counts[j] += 1;
            for (s, &v) in sums[j].iter_mut().zip(p) {
                *s += v;
            }
        }
        for j in 0..k {
            if counts[j] > 0 {
                for (c, s) in centroids[j].iter_mut().zip(&sums[j]) {
                    *c = s / counts[j] as f64;
                }
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::objective;
    use bf_domain::BoundingBox;

    fn two_blobs() -> PointSet {
        let bbox = BoundingBox::new(vec![0.0], vec![10.0]);
        PointSet::new(
            vec![
                vec![0.0],
                vec![1.0],
                vec![2.0],
                vec![8.0],
                vec![9.0],
                vec![10.0],
            ],
            bbox,
        )
    }

    #[test]
    fn converges_to_blob_means() {
        let pts = two_blobs();
        let cents = lloyd_kmeans(&pts, &[vec![0.5], vec![9.5]], 10);
        let mut sorted: Vec<f64> = cents.iter().map(|c| c[0]).collect();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] - 1.0).abs() < 1e-9);
        assert!((sorted[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn objective_non_increasing() {
        let pts = two_blobs();
        let init = vec![vec![0.0], vec![3.0]];
        let mut prev = objective(&pts, &init);
        let mut cents = init;
        for _ in 0..5 {
            cents = lloyd_kmeans(&pts, &cents, 1);
            let obj = objective(&pts, &cents);
            assert!(obj <= prev + 1e-9);
            prev = obj;
        }
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        let pts = two_blobs();
        // A far-away centroid attracts nothing and must stay put.
        let cents = lloyd_kmeans(&pts, &[vec![5.0], vec![10_000.0]], 3);
        assert!((cents[1][0] - 10_000.0).abs() < 1e-9);
    }
}
