//! The Ordered Mechanism (Section 7.1).
//!
//! Under the policy `(T, G^{d,θ}, I_n)` on a totally ordered domain, the
//! cumulative histogram `S_T` has policy-specific sensitivity θ (one tuple
//! moving ≤ θ positions changes at most θ prefix counts by 1 each). The
//! Ordered Mechanism releases `s̃_i = s_i + Lap(θ/ε)` and then *boosts*
//! accuracy with constrained inference on the ordering constraint
//! `s_1 ≤ s_2 ≤ …` (isotonic regression = exact least-squares projection).
//!
//! Every range query is a difference of two prefix counts, so its error is
//! at most `2 · 2(θ/ε)²` — for the line graph (θ = 1) this is the `4/ε²`
//! bound of Theorem 7.1, *independent of* `|T|`, beating the
//! `Ω(log³|T|/ε²)` lower bound for differentially private strategies.

use crate::isotonic::{isotonic_regression, isotonic_regression_nonneg};
use bf_core::sensitivity::cumulative_histogram_sensitivity;
use bf_core::{sample_laplace, CoreError, Epsilon, LaplaceMechanism, Policy};
use bf_domain::CumulativeHistogram;
use rand::Rng;

/// Configuration of the Ordered Mechanism.
///
/// # Examples
///
/// ```
/// use bf_core::Epsilon;
/// use bf_domain::Histogram;
/// use bf_mechanisms::OrderedMechanism;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let hist = Histogram::from_counts(vec![3.0, 0.0, 5.0, 2.0]);
/// let mech = OrderedMechanism::line_graph(Epsilon::new(0.5).unwrap());
/// let mut rng = StdRng::seed_from_u64(1);
/// let release = mech.release(&hist.cumulative(), &mut rng).unwrap();
/// // Any range query costs at most two prefix counts:
/// let noisy = release.range(1, 2);
/// assert!(noisy.is_finite());
/// // Theorem 7.1: error ≤ 4/ε² regardless of the domain size.
/// assert_eq!(mech.range_error_bound(), 16.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct OrderedMechanism {
    /// Total privacy budget ε.
    pub epsilon: Epsilon,
    /// Sensitivity of the cumulative histogram (θ for `G^{L1,θ}`).
    pub sensitivity: f64,
    /// Run constrained inference (isotonic regression) on the noisy prefix
    /// sums. On by default — it is the "boosting" step of Section 7.1.
    pub constrained_inference: bool,
    /// Additionally force `s_1 ≥ 0` so recovered counts are non-negative.
    pub nonnegative: bool,
}

impl OrderedMechanism {
    /// For the line graph `G^{d,1}` (sensitivity 1).
    pub fn line_graph(epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            sensitivity: 1.0,
            constrained_inference: true,
            nonnegative: false,
        }
    }

    /// For a distance threshold θ (sensitivity θ).
    pub fn with_theta(epsilon: Epsilon, theta: u64) -> Self {
        assert!(theta >= 1);
        Self {
            epsilon,
            sensitivity: theta as f64,
            constrained_inference: true,
            nonnegative: false,
        }
    }

    /// Calibrated from a constraint-free policy (closed-form cumulative
    /// histogram sensitivity).
    pub fn for_policy(policy: &Policy, epsilon: Epsilon) -> Self {
        Self {
            epsilon,
            sensitivity: cumulative_histogram_sensitivity(policy),
            constrained_inference: true,
            nonnegative: false,
        }
    }

    /// Disables the boosting step (raw noisy prefix sums).
    pub fn without_inference(mut self) -> Self {
        self.constrained_inference = false;
        self
    }

    /// Enables the `s_1 ≥ 0` refinement.
    pub fn with_nonnegativity(mut self) -> Self {
        self.nonnegative = true;
        self
    }

    /// Noise scale θ/ε.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon.value()
    }

    /// Upper bound on the expected squared error of one range query
    /// *without* inference: `2 · 2(θ/ε)²` (Theorem 7.1 gives `4/ε²` at
    /// θ = 1; inference only improves this).
    pub fn range_error_bound(&self) -> f64 {
        4.0 * self.scale() * self.scale()
    }

    /// Releases noisy (and, by default, boosted) prefix sums.
    ///
    /// # Errors
    ///
    /// Propagates invalid-sensitivity errors from the Laplace layer.
    pub fn release(
        &self,
        cumulative: &CumulativeHistogram,
        rng: &mut impl Rng,
    ) -> Result<OrderedRelease, CoreError> {
        let mech = LaplaceMechanism::new(self.epsilon, self.sensitivity)?;
        let mut noisy = cumulative.prefixes().to_vec();
        let scale = mech.scale();
        for v in &mut noisy {
            *v += sample_laplace(rng, scale);
        }
        let final_prefix = if self.constrained_inference {
            if self.nonnegative {
                isotonic_regression_nonneg(&noisy)
            } else {
                isotonic_regression(&noisy)
            }
        } else {
            noisy
        };
        Ok(OrderedRelease {
            prefix: final_prefix,
        })
    }
}

/// Released (noisy) cumulative histogram, answering prefix and range
/// queries.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedRelease {
    prefix: Vec<f64>,
}

impl OrderedRelease {
    /// Wraps a pre-computed noisy prefix vector.
    pub fn from_prefix(prefix: Vec<f64>) -> Self {
        Self { prefix }
    }

    /// Noisy prefix count `s̃_{i+1}` (0-based index `i`).
    pub fn prefix(&self, i: usize) -> f64 {
        self.prefix[i]
    }

    /// All noisy prefix counts.
    pub fn prefixes(&self) -> &[f64] {
        &self.prefix
    }

    /// Answers many linear queries `Σ_x w(x)·c̃(x)` against the
    /// reconstructed noisy histogram, reusing one reconstruction pass.
    pub fn answer_linear(&self, weight_rows: &[Vec<f64>]) -> Vec<f64> {
        let hist = self.histogram();
        weight_rows
            .iter()
            .map(|w| {
                assert_eq!(w.len(), hist.len(), "weights must cover the domain");
                w.iter().zip(&hist).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Noisy range count `q[lo, hi] = s̃_hi − s̃_{lo−1}` (inclusive).
    pub fn range(&self, lo: usize, hi: usize) -> f64 {
        let upper = self.prefix[hi];
        let lower = if lo == 0 { 0.0 } else { self.prefix[lo - 1] };
        upper - lower
    }

    /// Noisy CDF (divide by public `n`).
    pub fn cdf(&self, n: f64) -> Vec<f64> {
        assert!(n > 0.0);
        self.prefix.iter().map(|&s| s / n).collect()
    }

    /// Noisy quantile: smallest index whose prefix reaches `q·n`.
    pub fn quantile(&self, q: f64, n: f64) -> usize {
        assert!((0.0..=1.0).contains(&q));
        let target = q * n;
        self.prefix
            .iter()
            .position(|&s| s >= target)
            .unwrap_or(self.prefix.len().saturating_sub(1))
    }

    /// Reconstructed per-value histogram (differences of prefix counts).
    pub fn histogram(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.prefix.len());
        let mut prev = 0.0;
        for &s in &self.prefix {
            out.push(s - prev);
            prev = s;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_domain::Histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse_cumulative(size: usize) -> CumulativeHistogram {
        // Sparse histogram: a few spikes, most zeros (p << |T|).
        let mut counts = vec![0.0; size];
        counts[2] = 40.0;
        counts[size / 2] = 25.0;
        counts[size - 3] = 35.0;
        Histogram::from_counts(counts).cumulative()
    }

    #[test]
    fn release_is_sorted_after_inference() {
        let mut rng = StdRng::seed_from_u64(21);
        let m = OrderedMechanism::with_theta(Epsilon::new(0.2).unwrap(), 4);
        let r = m.release(&sparse_cumulative(64), &mut rng).unwrap();
        assert!(r.prefixes().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nonnegativity_flag() {
        let mut rng = StdRng::seed_from_u64(22);
        let m = OrderedMechanism::line_graph(Epsilon::new(0.05).unwrap()).with_nonnegativity();
        let r = m.release(&sparse_cumulative(32), &mut rng).unwrap();
        assert!(r.prefixes().iter().all(|&s| s >= 0.0));
        let h = r.histogram();
        assert!(h.iter().all(|&c| c >= -1e-9));
    }

    #[test]
    fn range_error_within_theorem_7_1_bound() {
        // Empirical MSE of range queries under the line graph must respect
        // (up to sampling error) the 4/ε² bound — and is independent of
        // |T|.
        let eps = Epsilon::new(0.5).unwrap();
        let bound = 4.0 / (0.5 * 0.5);
        for size in [64usize, 512] {
            let cum = sparse_cumulative(size);
            // Raw mechanism (no inference) matches the analytic bound;
            // inference only helps.
            let m = OrderedMechanism::line_graph(eps).without_inference();
            let mut rng = StdRng::seed_from_u64(size as u64);
            let trials = 3000;
            let mut mse = 0.0;
            let (lo, hi) = (size / 4, 3 * size / 4);
            let truth = cum.range_count(lo, hi).unwrap();
            for _ in 0..trials {
                let r = m.release(&cum, &mut rng).unwrap();
                let e = r.range(lo, hi) - truth;
                mse += e * e;
            }
            mse /= trials as f64;
            assert!(
                mse < bound * 1.1,
                "size {size}: mse {mse} exceeds bound {bound}"
            );
            assert!(mse > bound * 0.3, "mse {mse} suspiciously small");
        }
    }

    #[test]
    fn inference_helps_on_sparse_data() {
        let eps = Epsilon::new(0.1).unwrap();
        let cum = sparse_cumulative(256);
        let with = OrderedMechanism::line_graph(eps);
        let without = with.without_inference();
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 60;
        let mut err_with = 0.0;
        let mut err_without = 0.0;
        for _ in 0..trials {
            let rw = with.release(&cum, &mut rng).unwrap();
            let ro = without.release(&cum, &mut rng).unwrap();
            for i in 0..256 {
                let t = cum.prefix(i);
                err_with += (rw.prefix(i) - t).powi(2);
                err_without += (ro.prefix(i) - t).powi(2);
            }
        }
        assert!(
            err_with < err_without * 0.8,
            "inference should help substantially on sparse data: {err_with} vs {err_without}"
        );
    }

    #[test]
    fn policy_calibration() {
        use bf_domain::Domain;
        let p = Policy::distance_threshold(Domain::line(100).unwrap(), 7);
        let m = OrderedMechanism::for_policy(&p, Epsilon::new(1.0).unwrap());
        assert_eq!(m.sensitivity, 7.0);
        assert_eq!(m.scale(), 7.0);
        assert_eq!(m.range_error_bound(), 4.0 * 49.0);
    }

    #[test]
    fn batch_answers_match_single_answers() {
        use crate::range_workload::RangeAnswerer;
        let mut rng = StdRng::seed_from_u64(33);
        let m = OrderedMechanism::line_graph(Epsilon::new(0.5).unwrap());
        let r = m.release(&sparse_cumulative(64), &mut rng).unwrap();
        let ranges = [(0, 5), (10, 20), (63, 63)];
        let batch = r.answer_batch(&ranges);
        for (i, &(lo, hi)) in ranges.iter().enumerate() {
            assert_eq!(batch[i], r.range(lo, hi));
        }
        // All-ones weights: the linear query is the total count, i.e. the
        // last prefix.
        let weights = vec![vec![1.0; 64], (0..64).map(|i| i as f64).collect()];
        let lin = r.answer_linear(&weights);
        assert!((lin[0] - r.prefix(63)).abs() < 1e-9);
        assert!(lin[1].is_finite());
    }

    #[test]
    fn quantiles_and_cdf() {
        let r = OrderedRelease::from_prefix(vec![10.0, 10.0, 50.0, 100.0]);
        assert_eq!(r.quantile(0.5, 100.0), 2);
        assert_eq!(r.quantile(0.05, 100.0), 0);
        let cdf = r.cdf(100.0);
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        assert_eq!(r.range(2, 3), 90.0);
        assert_eq!(r.range(0, 0), 10.0);
    }
}
