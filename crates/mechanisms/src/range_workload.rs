//! Range-query workloads and error evaluation (the measurements behind
//! Figure 2).

use crate::hierarchical::HierarchicalRelease;
use crate::ordered::OrderedRelease;
use crate::ordered_hierarchical::OrderedHierarchicalRelease;
use rand::Rng;

/// Anything that answers noisy range counts over an ordered domain.
pub trait RangeAnswerer {
    /// Noisy answer to `q[lo, hi]` (inclusive, 0-based).
    fn answer(&self, lo: usize, hi: usize) -> f64;

    /// Answers a whole workload from this one release. This is the batch
    /// entry point serving layers use: every answer is a post-processing
    /// read of the same released structure, so the privacy cost is the
    /// release's ε once — not ε per query (sequential composition over a
    /// single mechanism invocation).
    fn answer_batch(&self, ranges: &[(usize, usize)]) -> Vec<f64> {
        ranges.iter().map(|&(lo, hi)| self.answer(lo, hi)).collect()
    }
}

impl RangeAnswerer for HierarchicalRelease {
    fn answer(&self, lo: usize, hi: usize) -> f64 {
        self.range(lo, hi)
    }
}

impl RangeAnswerer for OrderedRelease {
    fn answer(&self, lo: usize, hi: usize) -> f64 {
        self.range(lo, hi)
    }
}

impl RangeAnswerer for OrderedHierarchicalRelease {
    fn answer(&self, lo: usize, hi: usize) -> f64 {
        self.range(lo, hi)
    }
}

/// Draws `count` uniform random ranges `[lo, hi]` (lo ≤ hi) over a domain
/// — the "10000 random range queries" workload of Section 7.3.
pub fn random_ranges(domain_size: usize, count: usize, rng: &mut impl Rng) -> Vec<(usize, usize)> {
    assert!(domain_size >= 1);
    (0..count)
        .map(|_| {
            let a = rng.random_range(0..domain_size);
            let b = rng.random_range(0..domain_size);
            (a.min(b), a.max(b))
        })
        .collect()
}

/// Mean squared error of an answerer over a workload, against exact counts
/// from the histogram.
pub fn evaluate_range_mse(
    answerer: &dyn RangeAnswerer,
    histogram: &[f64],
    workload: &[(usize, usize)],
) -> f64 {
    assert!(!workload.is_empty());
    // Prefix sums for exact answers.
    let mut prefix = vec![0.0; histogram.len() + 1];
    for (i, &c) in histogram.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let mut total = 0.0;
    for &(lo, hi) in workload {
        let truth = prefix[hi + 1] - prefix[lo];
        let err = answerer.answer(lo, hi) - truth;
        total += err * err;
    }
    total / workload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for (lo, hi) in random_ranges(100, 500, &mut rng) {
            assert!(lo <= hi && hi < 100);
        }
    }

    #[test]
    fn exact_answerer_has_zero_mse() {
        struct Exact(Vec<f64>);
        impl RangeAnswerer for Exact {
            fn answer(&self, lo: usize, hi: usize) -> f64 {
                self.0[lo..=hi].iter().sum()
            }
        }
        let h: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let w = random_ranges(50, 200, &mut rng);
        assert_eq!(evaluate_range_mse(&Exact(h.clone()), &h, &w), 0.0);
    }

    #[test]
    fn default_batch_matches_pointwise() {
        struct Exact(Vec<f64>);
        impl RangeAnswerer for Exact {
            fn answer(&self, lo: usize, hi: usize) -> f64 {
                self.0[lo..=hi].iter().sum()
            }
        }
        let a = Exact((0..20).map(|i| i as f64).collect());
        let w = vec![(0, 3), (5, 19), (7, 7)];
        let batch = a.answer_batch(&w);
        for (i, &(lo, hi)) in w.iter().enumerate() {
            assert_eq!(batch[i], a.answer(lo, hi));
        }
    }

    #[test]
    fn biased_answerer_mse_matches() {
        struct OffByTwo(Vec<f64>);
        impl RangeAnswerer for OffByTwo {
            fn answer(&self, lo: usize, hi: usize) -> f64 {
                self.0[lo..=hi].iter().sum::<f64>() + 2.0
            }
        }
        let h = vec![1.0; 10];
        let w = vec![(0, 4), (2, 9)];
        assert_eq!(evaluate_range_mse(&OffByTwo(h.clone()), &h, &w), 4.0);
    }
}
