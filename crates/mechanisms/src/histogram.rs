//! Laplace histogram release (Theorem 5.1, Sections 5 and 8).

use bf_core::sensitivity::histogram_sensitivity;
use bf_core::{CoreError, Epsilon, LaplaceMechanism, Policy};
use bf_domain::{Dataset, Histogram};
use rand::Rng;

/// Releases a complete histogram with Laplace noise calibrated to a
/// (policy-specific) sensitivity.
///
/// * Unconstrained policies: sensitivity 2 (same as differential privacy)
///   via [`HistogramMechanism::for_policy`].
/// * Constrained policies: pass the Section 8 sensitivity (e.g. a
///   `PolicyGraph::sensitivity_bound()` or a Theorem 8.4–8.6 closed form)
///   via [`HistogramMechanism::with_sensitivity`].
#[derive(Debug, Clone, Copy)]
pub struct HistogramMechanism {
    mechanism: LaplaceMechanism,
}

impl HistogramMechanism {
    /// Calibrates to the closed-form unconstrained sensitivity of the
    /// policy's secret graph.
    ///
    /// # Errors
    ///
    /// Propagates invalid-sensitivity errors (cannot occur for the closed
    /// forms, which are 0 or 2).
    pub fn for_policy(policy: &Policy, epsilon: Epsilon) -> Result<Self, CoreError> {
        let s = histogram_sensitivity(policy);
        Ok(Self {
            mechanism: LaplaceMechanism::new(epsilon, s)?,
        })
    }

    /// Calibrates to an explicitly supplied sensitivity (the constrained
    /// case).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSensitivity`] for negative or non-finite input.
    pub fn with_sensitivity(epsilon: Epsilon, sensitivity: f64) -> Result<Self, CoreError> {
        Ok(Self {
            mechanism: LaplaceMechanism::new(epsilon, sensitivity)?,
        })
    }

    /// The noise scale in use.
    pub fn scale(&self) -> f64 {
        self.mechanism.scale()
    }

    /// Expected mean squared error per cell, `2·scale²` (the paper's
    /// `8/ε²` per cell at sensitivity 2).
    pub fn per_cell_error(&self) -> f64 {
        self.mechanism.per_component_error()
    }

    /// Releases the noisy complete histogram.
    pub fn release(&self, dataset: &Dataset, rng: &mut impl Rng) -> Histogram {
        let mut h = dataset.histogram();
        self.mechanism.release_in_place(h.counts_mut(), rng);
        h
    }

    /// Releases after verifying the dataset actually satisfies the
    /// policy's public constraints — with constraints, the Blowfish
    /// guarantee is only defined over `I_Q`, so a violating dataset means
    /// the published constraint answers were wrong and the calibrated
    /// sensitivity does not apply.
    ///
    /// # Errors
    ///
    /// [`CoreError::ConstraintViolated`] naming the failing constraint.
    pub fn release_checked(
        &self,
        policy: &Policy,
        dataset: &Dataset,
        rng: &mut impl Rng,
    ) -> Result<Histogram, CoreError> {
        policy.check_constraints(dataset)?;
        Ok(self.release(dataset, rng))
    }

    /// Releases noisy counts for an arbitrary pre-computed histogram
    /// (useful when the caller already aggregated).
    pub fn release_counts(&self, counts: &[f64], rng: &mut impl Rng) -> Vec<f64> {
        self.mechanism.release(counts, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_domain::Domain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        let d = Domain::line(8).unwrap();
        Dataset::from_rows(d, vec![0, 0, 1, 5, 7, 7, 7]).unwrap()
    }

    #[test]
    fn per_cell_error_matches_paper_formula() {
        let p = Policy::differential_privacy(Domain::line(8).unwrap());
        let eps = Epsilon::new(0.5).unwrap();
        let m = HistogramMechanism::for_policy(&p, eps).unwrap();
        // 2 * (2 / 0.5)^2 = 32 = 8/eps^2.
        assert!((m.per_cell_error() - 8.0 / 0.25).abs() < 1e-12);
    }

    #[test]
    fn release_is_unbiased() {
        let p = Policy::differential_privacy(Domain::line(8).unwrap());
        let m = HistogramMechanism::for_policy(&p, Epsilon::new(1.0).unwrap()).unwrap();
        let ds = dataset();
        let truth = ds.histogram();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 3000;
        let mut acc = [0.0; 8];
        for _ in 0..trials {
            let h = m.release(&ds, &mut rng);
            for (a, &c) in acc.iter_mut().zip(h.counts()) {
                *a += c;
            }
        }
        for (i, a) in acc.iter().enumerate() {
            let mean = a / trials as f64;
            assert!(
                (mean - truth.count(i)).abs() < 0.3,
                "cell {i}: mean {mean} vs {}",
                truth.count(i)
            );
        }
    }

    #[test]
    fn zero_sensitivity_partition_policy_is_exact() {
        use bf_domain::Partition;
        let d = Domain::line(8).unwrap();
        let p = Policy::partitioned(d, Partition::singletons(8));
        let m = HistogramMechanism::for_policy(&p, Epsilon::new(1.0).unwrap()).unwrap();
        let ds = dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let h = m.release(&ds, &mut rng);
        assert_eq!(h, ds.histogram());
    }

    #[test]
    fn release_checked_rejects_constraint_violations() {
        use bf_core::{CountConstraint, Predicate};
        use bf_graph::SecretGraph;
        let d = Domain::line(4).unwrap();
        let ds = Dataset::from_rows(d.clone(), vec![0, 1]).unwrap();
        let c = CountConstraint::new(Predicate::of_values(4, &[0]), 5); // wrong answer
        let policy = Policy::with_constraints(d, SecretGraph::Full, vec![c]).unwrap();
        let m = HistogramMechanism::with_sensitivity(Epsilon::new(1.0).unwrap(), 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            m.release_checked(&policy, &ds, &mut rng),
            Err(bf_core::CoreError::ConstraintViolated { constraint: 0 })
        ));
        // And passes when the constraint holds.
        let c_ok = CountConstraint::observed(Predicate::of_values(4, &[0]), &ds);
        let policy_ok =
            Policy::with_constraints(Domain::line(4).unwrap(), SecretGraph::Full, vec![c_ok])
                .unwrap();
        assert!(m.release_checked(&policy_ok, &ds, &mut rng).is_ok());
    }

    #[test]
    fn constrained_sensitivity_scales_noise() {
        let eps = Epsilon::new(1.0).unwrap();
        let m = HistogramMechanism::with_sensitivity(eps, 8.0).unwrap();
        assert_eq!(m.scale(), 8.0);
        assert!(HistogramMechanism::with_sensitivity(eps, -2.0).is_err());
    }
}
