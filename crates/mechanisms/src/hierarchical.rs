//! The hierarchical mechanism (Hay et al. \[9\]) — the paper's differential
//! privacy baseline for range queries.
//!
//! A fanout-`f` interval tree over the ordered domain: the root covers
//! `[x_1, x_|T|]`, each node splits its interval into `f` children, leaves
//! are unit intervals. Every level is a partition of the domain, so each
//! level has histogram sensitivity 2; with the per-level budgets summing
//! to ε, each node at level `i` is released with `Lap(2/ε_i)` noise. The
//! paper evaluates uniform budgeting (`ε_i = ε/h`); geometric budgeting
//! (\[5\]) is provided as an ablation.
//!
//! Optional *consistency* (constrained inference) refines the noisy tree:
//! a bottom-up inverse-variance weighted pass followed by a top-down
//! discrepancy-distribution pass, after which parents equal the sum of
//! their children and every subtree estimate is the minimum-variance
//! linear combination of the noisy observations.

use bf_core::{sample_laplace, Epsilon};
use rand::Rng;

/// How the per-level privacy budget is assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetSplit {
    /// `ε_i = ε / h` on every level (the paper's experiments).
    Uniform,
    /// Geometric budgeting (\[5\]): `ε_i ∝ (f^{1/3})^{level}` growing toward
    /// the leaves, which equalizes a different error trade-off.
    Geometric,
}

/// One node of the interval tree.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Node {
    /// Inclusive interval `[lo, hi]` of domain indices.
    lo: usize,
    hi: usize,
    /// Child node ids (empty for leaves).
    children: Vec<usize>,
    /// Depth: root is 0.
    depth: usize,
}

/// The static tree structure over a domain of a given size.
#[derive(Debug, Clone)]
pub struct IntervalTree {
    nodes: Vec<Node>,
    size: usize,
    fanout: usize,
    /// Number of levels (root level included); `ceil(log_f size) + 1`.
    levels: usize,
}

impl IntervalTree {
    /// Builds the tree over `size` values with the given fanout.
    ///
    /// # Panics
    ///
    /// Panics for `size == 0` or `fanout < 2`.
    pub fn build(size: usize, fanout: usize) -> Self {
        assert!(size >= 1, "tree needs a non-empty domain");
        assert!(fanout >= 2, "fanout must be at least 2");
        let mut nodes = Vec::new();
        nodes.push(Node {
            lo: 0,
            hi: size - 1,
            children: Vec::new(),
            depth: 0,
        });
        let mut cursor = 0;
        while cursor < nodes.len() {
            let (lo, hi, depth) = {
                let n = &nodes[cursor];
                (n.lo, n.hi, n.depth)
            };
            let len = hi - lo + 1;
            if len > 1 {
                // Split into up to `fanout` intervals of ceiling width.
                let width = len.div_ceil(fanout);
                let mut child_ids = Vec::new();
                let mut start = lo;
                while start <= hi {
                    let end = (start + width - 1).min(hi);
                    child_ids.push(nodes.len());
                    nodes.push(Node {
                        lo: start,
                        hi: end,
                        children: Vec::new(),
                        depth: depth + 1,
                    });
                    start = end + 1;
                }
                nodes[cursor].children = child_ids;
            }
            cursor += 1;
        }
        let levels = nodes.iter().map(|n| n.depth).max().unwrap_or(0) + 1;
        Self {
            nodes,
            size,
            fanout,
            levels,
        }
    }

    /// Number of domain values covered.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The fanout `f`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of levels including the root; the height `h` of the paper is
    /// `levels − 1` (edges), with `levels = 1` for a single-leaf tree.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Exact node counts for a histogram.
    pub fn exact_counts(&self, histogram: &[f64]) -> Vec<f64> {
        assert_eq!(histogram.len(), self.size);
        // Prefix sums make each node O(1).
        let mut prefix = vec![0.0; self.size + 1];
        for (i, &c) in histogram.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c;
        }
        self.nodes
            .iter()
            .map(|n| prefix[n.hi + 1] - prefix[n.lo])
            .collect()
    }

    /// Per-node Laplace noise scale under a total budget ε and a split
    /// policy. Level sensitivity is 2 (one tuple change moves one unit of
    /// count between two nodes of the level... or within one, changing it
    /// by at most 2 in L1).
    pub fn noise_scales(&self, epsilon: Epsilon, split: BudgetSplit) -> Vec<f64> {
        let h = self.levels as f64;
        let per_level_eps: Vec<f64> = match split {
            BudgetSplit::Uniform => vec![epsilon.value() / h; self.levels],
            BudgetSplit::Geometric => {
                // ε_i ∝ r^i with r = f^{1/3}, i = depth (root 0).
                let r = (self.fanout as f64).powf(1.0 / 3.0);
                let weights: Vec<f64> = (0..self.levels).map(|i| r.powi(i as i32)).collect();
                let total: f64 = weights.iter().sum();
                weights
                    .iter()
                    .map(|w| epsilon.value() * w / total)
                    .collect()
            }
        };
        self.nodes
            .iter()
            .map(|n| 2.0 / per_level_eps[n.depth])
            .collect()
    }

    /// Decomposes `[lo, hi]` (inclusive) into a minimal set of node ids
    /// whose intervals exactly cover the range.
    pub fn decompose(&self, lo: usize, hi: usize) -> Vec<usize> {
        assert!(lo <= hi && hi < self.size, "invalid range [{lo}, {hi}]");
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id];
            if n.lo > hi || n.hi < lo {
                continue;
            }
            if lo <= n.lo && n.hi <= hi {
                out.push(id);
                continue;
            }
            stack.extend(n.children.iter().copied());
        }
        out
    }

    /// Enforces parent = Σ children consistency on noisy node values via
    /// inverse-variance weighted bottom-up refinement and top-down
    /// discrepancy distribution. `variances[i]` is the noise variance of
    /// node `i` (2·scale²).
    pub fn enforce_consistency(&self, values: &mut [f64], variances: &[f64]) {
        assert_eq!(values.len(), self.nodes.len());
        assert_eq!(variances.len(), self.nodes.len());
        let n = self.nodes.len();
        // Bottom-up pass: refined estimate z and its variance per node.
        // Nodes are stored in BFS order, so iterating in reverse visits
        // children before parents.
        let mut z = values.to_vec();
        let mut var = variances.to_vec();
        for id in (0..n).rev() {
            if self.nodes[id].children.is_empty() {
                continue;
            }
            let child_sum: f64 = self.nodes[id].children.iter().map(|&c| z[c]).sum();
            let child_var: f64 = self.nodes[id].children.iter().map(|&c| var[c]).sum();
            let own_var = variances[id];
            if own_var == 0.0 {
                // Exact own value dominates.
                continue;
            }
            if child_var == 0.0 {
                z[id] = child_sum;
                var[id] = 0.0;
                continue;
            }
            let w_own = 1.0 / own_var;
            let w_children = 1.0 / child_var;
            z[id] = (w_own * values[id] + w_children * child_sum) / (w_own + w_children);
            var[id] = 1.0 / (w_own + w_children);
        }
        // Top-down pass: parents are final; distribute each parent's
        // discrepancy over its children proportionally to child variance.
        values[0] = z[0];
        for id in 0..n {
            if self.nodes[id].children.is_empty() {
                continue;
            }
            let children = &self.nodes[id].children;
            let child_sum: f64 = children.iter().map(|&c| z[c]).sum();
            let diff = values[id] - child_sum;
            let total_var: f64 = children.iter().map(|&c| var[c]).sum();
            for &c in children {
                let share = if total_var > 0.0 {
                    var[c] / total_var
                } else {
                    1.0 / children.len() as f64
                };
                values[c] = z[c] + diff * share;
            }
        }
    }

    /// Leaf node ids in domain order.
    pub fn leaves(&self) -> Vec<usize> {
        let mut out: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect();
        out.sort_by_key(|&i| self.nodes[i].lo);
        out
    }

    /// Interval `[lo, hi]` of a node.
    pub fn interval(&self, id: usize) -> (usize, usize) {
        (self.nodes[id].lo, self.nodes[id].hi)
    }
}

/// The hierarchical mechanism: configuration for releasing a noisy tree.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalMechanism {
    /// Fanout `f`.
    pub fanout: usize,
    /// Total privacy budget.
    pub epsilon: Epsilon,
    /// Budget split across levels.
    pub split: BudgetSplit,
    /// Whether to run constrained inference after noising.
    pub consistency: bool,
}

impl HierarchicalMechanism {
    /// The paper's configuration: uniform budgeting, no consistency.
    pub fn new(fanout: usize, epsilon: Epsilon) -> Self {
        Self {
            fanout,
            epsilon,
            split: BudgetSplit::Uniform,
            consistency: false,
        }
    }

    /// Enables constrained inference.
    pub fn with_consistency(mut self) -> Self {
        self.consistency = true;
        self
    }

    /// Uses geometric budgeting.
    pub fn with_geometric_budget(mut self) -> Self {
        self.split = BudgetSplit::Geometric;
        self
    }

    /// Releases a noisy tree over the histogram.
    pub fn release(&self, histogram: &[f64], rng: &mut impl Rng) -> HierarchicalRelease {
        let tree = IntervalTree::build(histogram.len(), self.fanout);
        let mut values = tree.exact_counts(histogram);
        let scales = tree.noise_scales(self.epsilon, self.split);
        for (v, &s) in values.iter_mut().zip(&scales) {
            *v += sample_laplace(rng, s);
        }
        if self.consistency {
            let variances: Vec<f64> = scales.iter().map(|&s| 2.0 * s * s).collect();
            tree.enforce_consistency(&mut values, &variances);
        }
        let node_variances: Vec<f64> = scales.iter().map(|&s| 2.0 * s * s).collect();
        HierarchicalRelease {
            tree,
            values,
            node_variances,
        }
    }

    /// Analytic expected squared error of answering a worst-case range
    /// query without consistency: `(#levels)·nodes-per-level × 2·scale²`,
    /// approximated as `2(f−1)·h · 2·(2h/ε)²` for uniform budgeting. Used
    /// for sanity checks and budget planning, not for the figures.
    pub fn rough_range_error(&self, domain_size: usize) -> f64 {
        let tree = IntervalTree::build(domain_size, self.fanout);
        let h = tree.levels() as f64;
        let scale = 2.0 * h / self.epsilon.value();
        // A range decomposes into ≤ 2(f−1) nodes per level.
        2.0 * (self.fanout as f64 - 1.0) * h * 2.0 * scale * scale
    }
}

/// A released noisy hierarchical tree, answering arbitrary range queries.
#[derive(Debug, Clone)]
pub struct HierarchicalRelease {
    tree: IntervalTree,
    values: Vec<f64>,
    node_variances: Vec<f64>,
}

impl HierarchicalRelease {
    /// Noisy answer to the range count `q[lo, hi]` (inclusive).
    pub fn range(&self, lo: usize, hi: usize) -> f64 {
        self.tree
            .decompose(lo, hi)
            .into_iter()
            .map(|id| self.values[id])
            .sum()
    }

    /// Variance of the answer to `q[lo, hi]` (without consistency; after
    /// consistency this is an upper bound).
    pub fn range_variance(&self, lo: usize, hi: usize) -> f64 {
        self.tree
            .decompose(lo, hi)
            .into_iter()
            .map(|id| self.node_variances[id])
            .sum()
    }

    /// The underlying tree.
    pub fn tree(&self) -> &IntervalTree {
        &self.tree
    }

    /// Noisy node values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Reconstructs a per-value histogram from the leaves.
    pub fn leaf_histogram(&self) -> Vec<f64> {
        self.tree
            .leaves()
            .into_iter()
            .map(|id| self.values[id])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tree_structure_covers_domain() {
        let t = IntervalTree::build(10, 3);
        assert_eq!(t.size(), 10);
        let leaves = t.leaves();
        assert_eq!(leaves.len(), 10);
        for (i, &l) in leaves.iter().enumerate() {
            assert_eq!(t.interval(l), (i, i));
        }
    }

    #[test]
    fn levels_match_log() {
        assert_eq!(IntervalTree::build(1, 2).levels(), 1);
        assert_eq!(IntervalTree::build(16, 2).levels(), 5);
        assert_eq!(IntervalTree::build(16, 16).levels(), 2);
        assert_eq!(IntervalTree::build(17, 16).levels(), 3);
    }

    #[test]
    fn exact_counts_consistent() {
        let t = IntervalTree::build(8, 2);
        let h: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let counts = t.exact_counts(&h);
        assert_eq!(counts[0], 28.0); // root = total
                                     // Parent = sum of children everywhere.
        for id in 0..t.num_nodes() {
            let n = &t.nodes[id];
            if !n.children.is_empty() {
                let cs: f64 = n.children.iter().map(|&c| counts[c]).sum();
                assert!((counts[id] - cs).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn decompose_is_exact_cover() {
        let t = IntervalTree::build(20, 4);
        let h: Vec<f64> = (0..20).map(|i| (i * i) as f64).collect();
        let counts = t.exact_counts(&h);
        for lo in 0..20 {
            for hi in lo..20 {
                let ids = t.decompose(lo, hi);
                let sum: f64 = ids.iter().map(|&i| counts[i]).sum();
                let expect: f64 = h[lo..=hi].iter().sum();
                assert!((sum - expect).abs() < 1e-9, "range [{lo},{hi}]");
                // Cover must be disjoint and within the range.
                let mut covered = [false; 20];
                for &id in &ids {
                    let (a, b) = t.interval(id);
                    assert!(lo <= a && b <= hi);
                    for c in covered.iter_mut().take(b + 1).skip(a) {
                        assert!(!*c, "overlapping cover");
                        *c = true;
                    }
                }
            }
        }
    }

    #[test]
    fn decomposition_size_logarithmic() {
        let t = IntervalTree::build(4096, 16);
        for (lo, hi) in [(0, 4095), (1, 4094), (100, 3000), (7, 8)] {
            let ids = t.decompose(lo, hi);
            assert!(
                ids.len() <= 2 * 15 * t.levels(),
                "range [{lo},{hi}] used {} nodes",
                ids.len()
            );
        }
    }

    #[test]
    fn uniform_scales() {
        let t = IntervalTree::build(16, 4);
        let scales = t.noise_scales(Epsilon::new(1.0).unwrap(), BudgetSplit::Uniform);
        // levels = 3 → per-level ε = 1/3 → scale 6 everywhere.
        assert!(scales.iter().all(|&s| (s - 6.0).abs() < 1e-12));
    }

    #[test]
    fn geometric_scales_decrease_toward_leaves() {
        let t = IntervalTree::build(64, 4);
        let scales = t.noise_scales(Epsilon::new(1.0).unwrap(), BudgetSplit::Geometric);
        // Root (depth 0) gets the least budget → largest scale.
        let root_scale = scales[0];
        let leaf_scale = scales[*t.leaves().first().unwrap()];
        assert!(root_scale > leaf_scale);
    }

    #[test]
    fn consistency_restores_tree_invariant() {
        let t = IntervalTree::build(9, 3);
        let h = vec![1.0; 9];
        let mut values = t.exact_counts(&h);
        // Perturb deterministically.
        for (i, v) in values.iter_mut().enumerate() {
            *v += ((i * 7919) % 13) as f64 - 6.0;
        }
        let variances = vec![2.0; t.num_nodes()];
        t.enforce_consistency(&mut values, &variances);
        for id in 0..t.num_nodes() {
            let n = &t.nodes[id];
            if !n.children.is_empty() {
                let cs: f64 = n.children.iter().map(|&c| values[c]).sum();
                assert!((values[id] - cs).abs() < 1e-9, "node {id}");
            }
        }
    }

    #[test]
    fn consistency_reduces_leaf_error() {
        let mut rng = StdRng::seed_from_u64(99);
        let eps = Epsilon::new(0.5).unwrap();
        let h: Vec<f64> = (0..256).map(|i| ((i % 17) * 3) as f64).collect();
        let plain = HierarchicalMechanism::new(4, eps);
        let boosted = plain.with_consistency();
        let trials = 40;
        let mut err_plain = 0.0;
        let mut err_boost = 0.0;
        for _ in 0..trials {
            let rp = plain.release(&h, &mut rng);
            let rb = boosted.release(&h, &mut rng);
            let (lp_hist, lb_hist) = (rp.leaf_histogram(), rb.leaf_histogram());
            for ((&lp, &lb), &truth) in lp_hist.iter().zip(&lb_hist).zip(&h) {
                err_plain += (lp - truth) * (lp - truth);
                err_boost += (lb - truth) * (lb - truth);
            }
        }
        assert!(
            err_boost < err_plain,
            "consistency should reduce leaf MSE: {err_boost} vs {err_plain}"
        );
    }

    #[test]
    fn release_answers_ranges_unbiased() {
        let mut rng = StdRng::seed_from_u64(3);
        let eps = Epsilon::new(1.0).unwrap();
        let h: Vec<f64> = vec![5.0; 32];
        let m = HierarchicalMechanism::new(4, eps);
        let trials = 2000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let r = m.release(&h, &mut rng);
            acc += r.range(3, 20);
        }
        let mean = acc / trials as f64;
        let truth = 18.0 * 5.0;
        assert!((mean - truth).abs() < 2.0, "mean {mean} vs {truth}");
    }

    #[test]
    fn range_variance_positive() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = HierarchicalMechanism::new(2, Epsilon::new(1.0).unwrap());
        let r = m.release(&[1.0; 16], &mut rng);
        assert!(r.range_variance(0, 7) > 0.0);
        assert!(m.rough_range_error(16) > 0.0);
    }
}
