//! Privelet-style Haar wavelet mechanism (Xiao, Wang, Gehrke \[19\]) — an
//! additional differentially-private range-query baseline the paper
//! groups with the hierarchical methods.
//!
//! The histogram (padded to a power of two) is transformed into the
//! unnormalized Haar basis: the total `S` plus one *difference
//! coefficient* `d_v = sum(left half) − sum(right half)` per internal
//! node of the dyadic tree. Changing one tuple's value moves one unit of
//! count between two leaves, touching the total not at all and at most
//! `2h` difference coefficients by 1 each (`h = log₂ n` levels), so
//! releasing all coefficients with `Lap(2h/ε)` noise (and the total with
//! the same scale, conservatively) is ε-differentially private.
//!
//! Reconstruction halves noise contributions level by level
//! (`x_left = (parent_sum + d)/2`), so reconstructed-leaf errors are
//! correlated and partially cancel over dyadic ranges — the property that
//! gives Privelet its `O(log³|T|/ε²)` range-query error.

use bf_core::{sample_laplace, Epsilon};
use rand::Rng;

/// The Haar wavelet mechanism configuration.
#[derive(Debug, Clone, Copy)]
pub struct WaveletMechanism {
    /// Total privacy budget.
    pub epsilon: Epsilon,
}

impl WaveletMechanism {
    /// Creates the mechanism.
    pub fn new(epsilon: Epsilon) -> Self {
        Self { epsilon }
    }

    /// Releases the noisy wavelet reconstruction of the histogram.
    pub fn release(&self, histogram: &[f64], rng: &mut impl Rng) -> WaveletRelease {
        let n = histogram.len();
        assert!(n >= 1);
        let padded = n.next_power_of_two();
        let levels = padded.trailing_zeros() as usize; // h
        let mut data = histogram.to_vec();
        data.resize(padded, 0.0);

        // Forward unnormalized Haar transform: coefficients[0] = total,
        // then per level the differences (left − right) of each block
        // pair, computed from block sums.
        //
        // We store, per level l (0 = root split), the difference
        // coefficient of each of the 2^l blocks at that level.
        let mut sums = data.clone();
        let mut diffs_per_level: Vec<Vec<f64>> = Vec::with_capacity(levels);
        // Build block sums bottom-up, recording differences top-down
        // afterwards; easiest is to compute all levels of sums first.
        let mut levels_sums: Vec<Vec<f64>> = vec![sums.clone()];
        while sums.len() > 1 {
            let next: Vec<f64> = sums.chunks_exact(2).map(|p| p[0] + p[1]).collect();
            levels_sums.push(next.clone());
            sums = next;
        }
        // levels_sums[k] has padded/2^k entries; the difference at level
        // with blocks of size 2^(k+1) pairs entries of levels_sums[k].
        for k in (0..levels).rev() {
            let s = &levels_sums[k];
            let diffs: Vec<f64> = s.chunks_exact(2).map(|p| p[0] - p[1]).collect();
            diffs_per_level.push(diffs);
        }
        // diffs_per_level[0] is the root split (two halves), …, last is
        // adjacent leaves.

        // Noise scale: one tuple change affects ≤ 2 coefficients per
        // level plus (for add/remove variants) the total.
        let h = levels.max(1) as f64;
        let scale = 2.0 * h / self.epsilon.value();
        let mut total = levels_sums[levels][0];
        total += sample_laplace(rng, scale);
        for level in &mut diffs_per_level {
            for d in level.iter_mut() {
                *d += sample_laplace(rng, scale);
            }
        }

        // Reconstruct leaves top-down: block sums from (parent ± d)/2.
        let mut block_sums = vec![total];
        for level in &diffs_per_level {
            let mut next = Vec::with_capacity(block_sums.len() * 2);
            for (parent, d) in block_sums.iter().zip(level) {
                next.push((parent + d) / 2.0);
                next.push((parent - d) / 2.0);
            }
            block_sums = next;
        }
        block_sums.truncate(n);
        let mut prefix = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &v in &block_sums {
            acc += v;
            prefix.push(acc);
        }
        WaveletRelease {
            histogram: block_sums,
            prefix,
        }
    }
}

/// A released noisy wavelet reconstruction.
#[derive(Debug, Clone)]
pub struct WaveletRelease {
    histogram: Vec<f64>,
    prefix: Vec<f64>,
}

impl WaveletRelease {
    /// The reconstructed noisy histogram.
    pub fn histogram(&self) -> &[f64] {
        &self.histogram
    }

    /// Noisy range count `q[lo, hi]` (inclusive).
    pub fn range(&self, lo: usize, hi: usize) -> f64 {
        let upper = self.prefix[hi];
        let lower = if lo == 0 { 0.0 } else { self.prefix[lo - 1] };
        upper - lower
    }
}

impl crate::range_workload::RangeAnswerer for WaveletRelease {
    fn answer(&self, lo: usize, hi: usize) -> f64 {
        self.range(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hist(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 7) % 13) as f64).collect()
    }

    /// With an enormous ε the reconstruction is numerically exact —
    /// transform/inverse round-trip including non-power-of-two padding.
    #[test]
    fn reconstruction_round_trip() {
        for n in [1usize, 2, 5, 8, 13, 64, 100] {
            let h = hist(n);
            let m = WaveletMechanism::new(Epsilon::new(1e12).unwrap());
            let mut rng = StdRng::seed_from_u64(1);
            let r = m.release(&h, &mut rng);
            assert_eq!(r.histogram().len(), n);
            for (a, b) in r.histogram().iter().zip(&h) {
                assert!((a - b).abs() < 1e-6, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn ranges_unbiased() {
        let h = hist(64);
        let truth: f64 = h[10..=40].iter().sum();
        let m = WaveletMechanism::new(Epsilon::new(1.0).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 2000;
        let mut acc = 0.0;
        for _ in 0..trials {
            acc += m.release(&h, &mut rng).range(10, 40);
        }
        let mean = acc / trials as f64;
        assert!((mean - truth).abs() < 4.0, "mean {mean} vs {truth}");
    }

    /// The wavelet baseline is in the same error regime as the
    /// hierarchical mechanism (both O(log³|T|/ε²)) — within an order of
    /// magnitude on a fixed workload.
    #[test]
    fn comparable_to_hierarchical() {
        use crate::hierarchical::HierarchicalMechanism;
        use crate::range_workload::{evaluate_range_mse, random_ranges};
        let h = hist(512);
        let eps = Epsilon::new(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let workload = random_ranges(512, 300, &mut rng);
        let trials = 15;
        let wm = WaveletMechanism::new(eps);
        let hm = HierarchicalMechanism::new(2, eps);
        let mut w_mse = 0.0;
        let mut h_mse = 0.0;
        for _ in 0..trials {
            w_mse += evaluate_range_mse(&wm.release(&h, &mut rng), &h, &workload);
            h_mse += evaluate_range_mse(&hm.release(&h, &mut rng), &h, &workload);
        }
        assert!(
            w_mse < h_mse * 10.0 && h_mse < w_mse * 10.0,
            "wavelet {w_mse} vs hierarchical {h_mse}"
        );
    }

    #[test]
    fn single_cell_domain() {
        let m = WaveletMechanism::new(Epsilon::new(1.0).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        let r = m.release(&[5.0], &mut rng);
        assert!(r.range(0, 0).is_finite());
    }
}
