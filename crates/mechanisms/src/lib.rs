//! # bf-mechanisms — Blowfish-private analysis mechanisms
//!
//! The mechanisms the paper designs and evaluates:
//!
//! * [`histogram`] — Laplace histogram release calibrated to
//!   policy-specific sensitivity (Theorem 5.1), including
//!   constraint-calibrated sensitivities from Section 8,
//! * [`kmeans`] — non-private Lloyd iteration plus the SuLQ-style private
//!   k-means of Section 6, with `q_sum` sensitivity driven by the policy's
//!   secret graph (Lemma 6.1),
//! * [`isotonic`] — pool-adjacent-violators (PAVA) isotonic regression:
//!   the least-squares projection onto the ordering constraint used by
//!   constrained inference (Hay et al.),
//! * [`hierarchical`] — the fanout-`f` hierarchical interval tree
//!   (Hay et al. \[9\]) with uniform or geometric budgeting and optional
//!   consistency, the paper's differential-privacy baseline for range
//!   queries,
//! * [`ordered`] — the Ordered Mechanism of Section 7.1: noisy prefix sums
//!   with sensitivity `θ` under `G^{L1,θ}` plus ordering-constrained
//!   inference; range-query error `≤ 4/ε²` independent of `|T|` for the
//!   line graph (Theorem 7.1),
//! * [`ordered_hierarchical`] — the hybrid S-node/H-node structure of
//!   Section 7.2 with the closed-form `ε_S*` budget optimizer (Eq. 14–15),
//! * [`range_workload`] — random range-query workloads and mean-squared
//!   error evaluation (the measurements behind Figure 2).

pub mod cdf_applications;
pub mod hierarchical;
pub mod histogram;
pub mod isotonic;
pub mod kmeans;
pub mod ordered;
pub mod ordered_hierarchical;
pub mod range_workload;
pub mod wavelet;

pub use cdf_applications::{build_kdtree, equi_depth_cuts, equi_depth_histogram, KdNode};
pub use hierarchical::{BudgetSplit, HierarchicalMechanism, HierarchicalRelease};
pub use histogram::HistogramMechanism;
pub use isotonic::isotonic_regression;
pub use ordered::{OrderedMechanism, OrderedRelease};
pub use ordered_hierarchical::{OrderedHierarchicalMechanism, OrderedHierarchicalRelease};
pub use range_workload::{evaluate_range_mse, random_ranges, RangeAnswerer};
pub use wavelet::{WaveletMechanism, WaveletRelease};
