//! Applications of the released cumulative histogram (Section 7):
//! quantiles, equi-depth histograms, and k-d tree index construction.
//!
//! "Releasing the CDF has many applications including computing quantiles
//! and histograms, answering range queries and constructing indexes
//! (e.g. k-d tree)." All of them post-process one [`OrderedRelease`], so
//! they inherit its `(ε, P)`-Blowfish guarantee with *no further privacy
//! cost* — post-processing never degrades the guarantee.

use crate::ordered::OrderedRelease;
use bf_domain::grid::Rectangle;

/// Equally spaced quantiles from a noisy cumulative histogram: the
/// `k − 1` cut points splitting the data into `k` (approximately)
/// equal-mass buckets.
pub fn equi_depth_cuts(release: &OrderedRelease, k: usize, n: f64) -> Vec<usize> {
    assert!(k >= 1);
    assert!(n > 0.0);
    (1..k)
        .map(|i| release.quantile(i as f64 / k as f64, n))
        .collect()
}

/// An equi-depth histogram: bucket boundaries (inclusive index ranges)
/// and the *noisy* mass in each bucket, derived entirely from the
/// release.
pub fn equi_depth_histogram(
    release: &OrderedRelease,
    k: usize,
    n: f64,
) -> Vec<((usize, usize), f64)> {
    let size = release.prefixes().len();
    assert!(size >= 1);
    let cuts = equi_depth_cuts(release, k, n);
    let mut out = Vec::with_capacity(k);
    let mut lo = 0usize;
    for &cut in &cuts {
        // Guard against collapsed buckets on very spiky data: force at
        // least one value per bucket when possible.
        let hi = cut.max(lo).min(size - 1);
        out.push(((lo, hi), release.range(lo, hi)));
        lo = (hi + 1).min(size - 1);
    }
    out.push(((lo, size - 1), release.range(lo, size - 1)));
    out
}

/// One node of a private k-d tree over a 2-D grid.
#[derive(Debug, Clone, PartialEq)]
pub struct KdNode {
    /// The region this node covers (inclusive cell coordinates).
    pub region: Rectangle,
    /// Noisy number of points inside the region.
    pub noisy_count: f64,
    /// Children (empty for leaves).
    pub children: Vec<KdNode>,
}

impl KdNode {
    /// Total number of nodes in the subtree.
    pub fn num_nodes(&self) -> usize {
        1 + self.children.iter().map(KdNode::num_nodes).sum::<usize>()
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(KdNode::depth).max().unwrap_or(0)
    }
}

/// Builds a k-d tree over a 2-D grid from *per-axis* noisy cumulative
/// histograms: each level splits the longer axis at the region's noisy
/// median. The tree structure leaks only the noisy CDFs it was built
/// from, so the whole index is `(ε_x + ε_y, P)`-Blowfish private when the
/// two releases spent `ε_x` and `ε_y` (sequential composition).
///
/// `dims` are the grid dimensions; `levels` is the number of split
/// rounds; `region_count` answers noisy counts for a rectangle from the
/// marginal releases under an independence approximation
/// (`n · P(x-range) · P(y-range)`), the standard way a k-d index is
/// seeded from 1-D statistics.
pub fn build_kdtree(
    x_release: &OrderedRelease,
    y_release: &OrderedRelease,
    dims: (usize, usize),
    n: f64,
    levels: usize,
) -> KdNode {
    assert!(n > 0.0);
    let root_region =
        Rectangle::new(vec![0, 0], vec![dims.0 - 1, dims.1 - 1]).expect("non-empty grid");
    build_kd_recursive(x_release, y_release, root_region, n, levels)
}

fn noisy_axis_fraction(release: &OrderedRelease, lo: usize, hi: usize, n: f64) -> f64 {
    (release.range(lo, hi) / n).clamp(0.0, 1.0)
}

fn build_kd_recursive(
    x_release: &OrderedRelease,
    y_release: &OrderedRelease,
    region: Rectangle,
    n: f64,
    levels: usize,
) -> KdNode {
    let (xl, xh) = (region.lo[0], region.hi[0]);
    let (yl, yh) = (region.lo[1], region.hi[1]);
    let fx = noisy_axis_fraction(x_release, xl, xh, n);
    let fy = noisy_axis_fraction(y_release, yl, yh, n);
    let noisy_count = n * fx * fy;
    if levels == 0 || (xh == xl && yh == yl) {
        return KdNode {
            region,
            noisy_count,
            children: Vec::new(),
        };
    }
    // Split the longer axis at the noisy median *within the region*.
    let split_x = (xh - xl) >= (yh - yl) && xh > xl;
    let children = if split_x {
        // Find the in-region median via the CDF restricted to the region.
        let region_mass = x_release.range(xl, xh).max(1e-9);
        let mut cut = xl;
        for i in xl..xh {
            if x_release.range(xl, i) >= region_mass / 2.0 {
                cut = i;
                break;
            }
            cut = i;
        }
        let left = Rectangle::new(vec![xl, yl], vec![cut, yh]).expect("valid split");
        let right = Rectangle::new(vec![cut + 1, yl], vec![xh, yh]).expect("valid split");
        vec![left, right]
    } else {
        let region_mass = y_release.range(yl, yh).max(1e-9);
        let mut cut = yl;
        for i in yl..yh {
            if y_release.range(yl, i) >= region_mass / 2.0 {
                cut = i;
                break;
            }
            cut = i;
        }
        let bottom = Rectangle::new(vec![xl, yl], vec![xh, cut]).expect("valid split");
        let top = Rectangle::new(vec![xl, cut + 1], vec![xh, yh]).expect("valid split");
        vec![bottom, top]
    };
    KdNode {
        region,
        noisy_count,
        children: children
            .into_iter()
            .map(|r| build_kd_recursive(x_release, y_release, r, n, levels - 1))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordered::OrderedMechanism;
    use bf_core::Epsilon;
    use bf_domain::Histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exact_release(counts: &[f64]) -> OrderedRelease {
        OrderedRelease::from_prefix(
            Histogram::from_counts(counts.to_vec())
                .cumulative()
                .prefixes()
                .to_vec(),
        )
    }

    #[test]
    fn equi_depth_on_exact_cdf() {
        // Uniform mass over 8 values: quartile cuts at 1, 3, 5.
        let counts = vec![10.0; 8];
        let r = exact_release(&counts);
        assert_eq!(equi_depth_cuts(&r, 4, 80.0), vec![1, 3, 5]);
        let buckets = equi_depth_histogram(&r, 4, 80.0);
        assert_eq!(buckets.len(), 4);
        let total: f64 = buckets.iter().map(|(_, m)| m).sum();
        assert!((total - 80.0).abs() < 1e-9);
        for ((lo, hi), mass) in &buckets {
            assert!(lo <= hi);
            assert!((*mass - 20.0).abs() < 1e-9);
        }
    }

    #[test]
    fn equi_depth_on_noisy_cdf_is_reasonable() {
        let mut counts = vec![0.0; 64];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = if i < 32 { 10.0 } else { 30.0 };
        }
        let n: f64 = counts.iter().sum();
        let cum = Histogram::from_counts(counts.clone()).cumulative();
        let mech = OrderedMechanism::line_graph(Epsilon::new(1.0).unwrap());
        let mut rng = StdRng::seed_from_u64(9);
        let release = mech.release(&cum, &mut rng).unwrap();
        let cuts = equi_depth_cuts(&release, 2, n);
        // The true median sits at index 42 (after 320 + 10·(i−32)·30 mass…):
        // exact: 640 total? mass below 32 = 320; half = 640 → at i = 32 + ceil(320/30)-1.
        let exact_median = cum.prefixes().iter().position(|&s| s >= n / 2.0).unwrap();
        assert!(
            cuts[0].abs_diff(exact_median) <= 3,
            "noisy median {} vs exact {}",
            cuts[0],
            exact_median
        );
    }

    #[test]
    fn kdtree_structure() {
        // A 16×8 grid with uniform x mass and skewed y mass.
        let x_counts = vec![5.0; 16];
        let mut y_counts = vec![1.0; 8];
        y_counts[7] = 73.0; // total 80 on both axes
        let xr = exact_release(&x_counts);
        let yr = exact_release(&y_counts);
        let tree = build_kdtree(&xr, &yr, (16, 8), 80.0, 3);
        assert_eq!(tree.depth(), 4);
        assert_eq!(tree.num_nodes(), 1 + 2 + 4 + 8);
        // Root count is the full mass.
        assert!((tree.noisy_count - 80.0).abs() < 1e-6);
        // First split is on x (longer axis) at the median (index 7).
        assert_eq!(tree.children[0].region.hi[0], 7);
        assert_eq!(tree.children[1].region.lo[0], 8);
        // Children partition the root region.
        let child_cells: usize = tree.children.iter().map(|c| c.region.cell_count()).sum();
        assert_eq!(child_cells, tree.region.cell_count());
    }

    #[test]
    fn kdtree_levels_zero_is_leaf() {
        let r = exact_release(&[1.0, 1.0]);
        let tree = build_kdtree(&r, &r, (2, 2), 2.0, 0);
        assert!(tree.children.is_empty());
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn kdtree_on_noisy_releases_runs() {
        let counts = vec![3.0; 32];
        let n: f64 = counts.iter().sum();
        let cum = Histogram::from_counts(counts).cumulative();
        let mech = OrderedMechanism::line_graph(Epsilon::new(0.5).unwrap());
        let mut rng = StdRng::seed_from_u64(10);
        let xr = mech.release(&cum, &mut rng).unwrap();
        let yr = mech.release(&cum, &mut rng).unwrap();
        let tree = build_kdtree(&xr, &yr, (32, 32), n, 4);
        assert!(tree.num_nodes() <= 1 + 2 + 4 + 8 + 16);
        assert!(tree.noisy_count.is_finite());
    }
}
