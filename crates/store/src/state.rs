//! The materialized ledger state a WAL replays into.
//!
//! [`StoreState`] is the store's in-memory mirror of everything durable:
//! it is updated on every append, serialized wholesale into snapshot
//! files at compaction, and rebuilt at startup by loading the newest
//! snapshot and replaying the WAL segments after it. Maps are `BTreeMap`s
//! and floats are carried as bit patterns, so serializing the same state
//! twice produces byte-identical output — the property the recovery
//! tests and the restart bench pin.

use crate::record::{fnv1a, Record, RegistryKind};
use std::collections::BTreeMap;

/// One analyst's durable ledger summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionState {
    /// Total ε the session opened with.
    pub total: f64,
    /// ε spent by acknowledged charges, in WAL order.
    pub spent: f64,
    /// Charges applied (including free zero-ε ones).
    pub served: u64,
}

impl SessionState {
    /// ε still spendable.
    pub fn remaining(&self) -> f64 {
        (self.total - self.spent).max(0.0)
    }
}

/// One cached answer in the idempotency reply cache: what a retry of
/// the same `(analyst, request_id)` must be told, byte for byte,
/// without touching the ledger again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedReply {
    /// ε the original serve charged, as `f64` bits (audit trail; a
    /// replayed reply charges nothing).
    pub eps_bits: u64,
    /// The encoded answer, returned verbatim.
    pub payload: Vec<u8>,
}

/// Per-analyst bound on the reply cache. Client request ids increase
/// monotonically and a client retries only its most recent unacked
/// requests, so evicting the **smallest** ids keeps exactly the window
/// a live client could still retry. 128 comfortably exceeds any
/// client's in-flight window (the net default is 64).
pub const REPLY_CACHE_PER_ANALYST: usize = 128;

/// A replicated-log entry that is durable but not yet executed: the
/// payload of a [`Record::Replicated`] frame whose [`Record::LogApplied`]
/// mark has not been written. Recovery hands these back to the
/// replication layer (`bf-replica`) so it can finish replay exactly
/// where execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingLogEntry {
    /// The sequencing epoch the entry was stamped under.
    pub epoch: u64,
    /// The analyst the operation belongs to.
    pub analyst: String,
    /// The idempotency key execution will use.
    pub request_id: u64,
    /// The encoded log operation, opaque to the store.
    pub payload: Vec<u8>,
}

/// Everything the store knows durably.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreState {
    /// Ledger summaries by analyst.
    pub sessions: BTreeMap<String, SessionState>,
    /// Registered names and their content fingerprints.
    pub registrations: BTreeMap<(RegistryKind, String), u64>,
    /// High-water marks of release-identity noise ordinals, by identity
    /// fingerprint — written at checkpoint so a restarted engine resumes
    /// each identity's ordinal sequence. Replay keeps the maximum.
    pub release_seqs: BTreeMap<u64, u64>,
    /// The idempotency reply cache: per analyst, the most recent
    /// [`REPLY_CACHE_PER_ANALYST`] request ids and their answers.
    /// Rebuilt by replaying [`Record::Replied`] frames and persisted in
    /// snapshots, so retry safety survives compaction and restart.
    pub replies: BTreeMap<String, BTreeMap<u64, CachedReply>>,
    /// Highest sequencing epoch seen in replicated-log entries.
    pub log_epoch: u64,
    /// Durably-logged high-water mark of the replicated log (the largest
    /// [`Record::Replicated`] index on disk; 0 when unreplicated).
    pub log_index: u64,
    /// Execution high-water mark: every log entry at or below this index
    /// has been applied through the engine.
    pub log_applied: u64,
    /// Logged-but-unapplied entries by index — the replay frontier a
    /// recovering replica must execute to catch its ledger up to its log.
    pub log_pending: BTreeMap<u64, PendingLogEntry>,
}

impl StoreState {
    /// Applies one record. Replay calls this in WAL order; the live
    /// store calls it once per appended record.
    pub fn apply(&mut self, record: &Record) {
        match record {
            Record::SessionOpened {
                analyst,
                total_bits,
            } => {
                // Insert-if-absent: a duplicate open (possible when a
                // crash hit between the durable append and the in-memory
                // insert refusing a duplicate) must not reset a ledger.
                self.sessions
                    .entry(analyst.clone())
                    .or_insert(SessionState {
                        total: f64::from_bits(*total_bits),
                        spent: 0.0,
                        served: 0,
                    });
            }
            Record::Charged {
                analyst, eps_bits, ..
            } => {
                // A charge for an unknown analyst (its SessionOpened
                // lost to corruption) materializes a zero-total session:
                // the spend is remembered, nothing becomes spendable —
                // always the conservative direction.
                let s = self
                    .sessions
                    .entry(analyst.clone())
                    .or_insert(SessionState {
                        total: 0.0,
                        spent: 0.0,
                        served: 0,
                    });
                s.spent += f64::from_bits(*eps_bits);
                s.served += 1;
            }
            Record::Registered {
                kind,
                name,
                fingerprint,
            } => {
                self.registrations
                    .insert((*kind, name.clone()), *fingerprint);
            }
            Record::Deregistered { kind, name } => {
                self.registrations.remove(&(*kind, name.clone()));
            }
            Record::ReleaseSeq { fingerprint, seq } => {
                // Max, not last-writer: ordinals never move backwards,
                // and replay order across segments must not matter.
                let e = self.release_seqs.entry(*fingerprint).or_insert(0);
                *e = (*e).max(*seq);
            }
            Record::Replied {
                analyst,
                request_id,
                label: _,
                eps_bits,
                payload,
            } => {
                // The charge half: identical to `Charged` (orphans
                // materialize unspendable sessions, always the
                // conservative direction).
                let s = self
                    .sessions
                    .entry(analyst.clone())
                    .or_insert(SessionState {
                        total: 0.0,
                        spent: 0.0,
                        served: 0,
                    });
                s.spent += f64::from_bits(*eps_bits);
                s.served += 1;
                // The reply half: cache the answer under the analyst's
                // id, evicting the oldest (smallest) ids past the cap —
                // ids a client's retry window can no longer reach.
                let cache = self.replies.entry(analyst.clone()).or_default();
                cache.insert(
                    *request_id,
                    CachedReply {
                        eps_bits: *eps_bits,
                        payload: payload.clone(),
                    },
                );
                while cache.len() > REPLY_CACHE_PER_ANALYST {
                    let oldest = *cache.keys().next().expect("non-empty cache");
                    cache.remove(&oldest);
                }
            }
            Record::Replicated {
                epoch,
                index,
                analyst,
                request_id,
                payload,
            } => {
                self.log_epoch = self.log_epoch.max(*epoch);
                self.log_index = self.log_index.max(*index);
                // Entries already marked applied need no pending slot —
                // replay may revisit a Replicated frame whose LogApplied
                // mark lives in a later segment.
                if *index > self.log_applied {
                    self.log_pending.insert(
                        *index,
                        PendingLogEntry {
                            epoch: *epoch,
                            analyst: analyst.clone(),
                            request_id: *request_id,
                            payload: payload.clone(),
                        },
                    );
                }
            }
            Record::LogApplied { index } => {
                self.log_applied = self.log_applied.max(*index);
                self.log_pending = self.log_pending.split_off(&(self.log_applied + 1));
            }
            Record::LogTruncated { index } => {
                // Truncation never unwinds applied entries; a record that
                // claims to is clamped so replay cannot fork executed
                // state.
                let keep = (*index).max(self.log_applied);
                self.log_pending.split_off(&(keep + 1));
                self.log_index = self.log_index.min(keep).max(self.log_applied);
            }
        }
    }

    /// The cached answer for `(analyst, request_id)`, if the reply
    /// cache still holds it.
    pub fn cached_reply(&self, analyst: &str, request_id: u64) -> Option<&CachedReply> {
        self.replies.get(analyst)?.get(&request_id)
    }

    /// Deterministic serialization (snapshot body).
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::record::{put_str, put_u64};
        let mut out = Vec::new();
        out.extend_from_slice(&(self.sessions.len() as u32).to_le_bytes());
        for (analyst, s) in &self.sessions {
            put_str(&mut out, analyst);
            put_u64(&mut out, s.total.to_bits());
            put_u64(&mut out, s.spent.to_bits());
            put_u64(&mut out, s.served);
        }
        out.extend_from_slice(&(self.registrations.len() as u32).to_le_bytes());
        for ((kind, name), fp) in &self.registrations {
            out.push(kind.tag());
            put_str(&mut out, name);
            put_u64(&mut out, *fp);
        }
        out.extend_from_slice(&(self.release_seqs.len() as u32).to_le_bytes());
        for (fp, seq) in &self.release_seqs {
            put_u64(&mut out, *fp);
            put_u64(&mut out, *seq);
        }
        out.extend_from_slice(&(self.replies.len() as u32).to_le_bytes());
        for (analyst, cache) in &self.replies {
            put_str(&mut out, analyst);
            out.extend_from_slice(&(cache.len() as u32).to_le_bytes());
            for (rid, reply) in cache {
                put_u64(&mut out, *rid);
                put_u64(&mut out, reply.eps_bits);
                crate::record::put_bytes(&mut out, &reply.payload);
            }
        }
        put_u64(&mut out, self.log_epoch);
        put_u64(&mut out, self.log_index);
        put_u64(&mut out, self.log_applied);
        out.extend_from_slice(&(self.log_pending.len() as u32).to_le_bytes());
        for (index, e) in &self.log_pending {
            put_u64(&mut out, *index);
            put_u64(&mut out, e.epoch);
            put_str(&mut out, &e.analyst);
            put_u64(&mut out, e.request_id);
            crate::record::put_bytes(&mut out, &e.payload);
        }
        out
    }

    /// Parses [`StoreState::to_bytes`] output. `None` on any structural
    /// damage (the snapshot loader reports that as a corrupt snapshot).
    pub fn from_bytes(bytes: &[u8]) -> Option<StoreState> {
        let mut r = crate::record::Reader::new(bytes);
        let mut state = StoreState::default();
        let n_sessions = r.u32()?;
        for _ in 0..n_sessions {
            let analyst = r.str()?;
            let total = f64::from_bits(r.u64()?);
            let spent = f64::from_bits(r.u64()?);
            let served = r.u64()?;
            state.sessions.insert(
                analyst,
                SessionState {
                    total,
                    spent,
                    served,
                },
            );
        }
        let n_regs = r.u32()?;
        for _ in 0..n_regs {
            let kind = RegistryKind::from_tag(r.u8()?)?;
            let name = r.str()?;
            let fp = r.u64()?;
            state.registrations.insert((kind, name), fp);
        }
        // Snapshots written before release ordinals were durable end
        // here; treat the missing section as empty rather than corrupt.
        if r.done() {
            return Some(state);
        }
        let n_seqs = r.u32()?;
        for _ in 0..n_seqs {
            let fp = r.u64()?;
            let seq = r.u64()?;
            state.release_seqs.insert(fp, seq);
        }
        // Snapshots written before the reply cache was durable end
        // here; treat the missing section as empty rather than corrupt.
        if r.done() {
            return Some(state);
        }
        let n_analysts = r.u32()?;
        for _ in 0..n_analysts {
            let analyst = r.str()?;
            let n_replies = r.u32()?;
            let mut cache = BTreeMap::new();
            for _ in 0..n_replies {
                let rid = r.u64()?;
                let eps_bits = r.u64()?;
                let payload = r.bytes()?;
                cache.insert(rid, CachedReply { eps_bits, payload });
            }
            state.replies.insert(analyst, cache);
        }
        // Snapshots written before replication was durable end here;
        // treat the missing section as an empty, unreplicated log.
        if r.done() {
            return Some(state);
        }
        state.log_epoch = r.u64()?;
        state.log_index = r.u64()?;
        state.log_applied = r.u64()?;
        let n_pending = r.u32()?;
        for _ in 0..n_pending {
            let index = r.u64()?;
            let epoch = r.u64()?;
            let analyst = r.str()?;
            let request_id = r.u64()?;
            let payload = r.bytes()?;
            state.log_pending.insert(
                index,
                PendingLogEntry {
                    epoch,
                    analyst,
                    request_id,
                    payload,
                },
            );
        }
        r.done().then_some(state)
    }

    /// FNV-1a digest of the serialized state — a cheap equality witness
    /// for "recovering twice yields the identical ledger".
    pub fn digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_accumulates_and_roundtrips() {
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("alice", 1.0));
        s.apply(&Record::charged("alice", "q1", 0.25));
        s.apply(&Record::charged("alice", "q2", 0.0));
        s.apply(&Record::Registered {
            kind: RegistryKind::Policy,
            name: "pol".into(),
            fingerprint: 7,
        });
        let a = &s.sessions["alice"];
        assert_eq!(a.total, 1.0);
        assert_eq!(a.spent, 0.25);
        assert_eq!(a.served, 2);
        assert!((a.remaining() - 0.75).abs() < 1e-15);
        let bytes = s.to_bytes();
        assert_eq!(StoreState::from_bytes(&bytes), Some(s.clone()));
        assert_eq!(s.digest(), StoreState::from_bytes(&bytes).unwrap().digest());
        assert_eq!(StoreState::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn release_seqs_keep_the_maximum_and_roundtrip() {
        let mut s = StoreState::default();
        s.apply(&Record::ReleaseSeq {
            fingerprint: 7,
            seq: 3,
        });
        s.apply(&Record::ReleaseSeq {
            fingerprint: 7,
            seq: 2,
        });
        s.apply(&Record::ReleaseSeq {
            fingerprint: 9,
            seq: 1,
        });
        assert_eq!(s.release_seqs[&7], 3, "replay keeps the high-water mark");
        assert_eq!(s.release_seqs[&9], 1);
        let bytes = s.to_bytes();
        assert_eq!(StoreState::from_bytes(&bytes), Some(s.clone()));
        assert_eq!(StoreState::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn snapshots_without_a_release_seq_section_still_load() {
        // A pre-ordinal snapshot body: sessions + registrations only
        // (no release_seqs, no replies).
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("alice", 1.0));
        let mut old = s.to_bytes();
        // Drop every trailing section added since: empty release_seqs
        // (4) + empty replies (4) + empty log section (3 u64 + count).
        old.truncate(old.len() - 8 - 28);
        let loaded = StoreState::from_bytes(&old).expect("old snapshot loads");
        assert_eq!(loaded.sessions, s.sessions);
        assert!(loaded.release_seqs.is_empty());
        assert!(loaded.replies.is_empty());
        assert_eq!(loaded.log_index, 0);
    }

    #[test]
    fn replied_charges_once_and_caches_the_answer() {
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("alice", 1.0));
        s.apply(&Record::replied(
            "alice",
            7,
            "range@pol/ds",
            0.25,
            vec![1, 2, 3],
        ));
        let a = &s.sessions["alice"];
        assert_eq!(a.spent, 0.25, "the Replied frame IS the charge");
        assert_eq!(a.served, 1);
        let cached = s.cached_reply("alice", 7).expect("cached");
        assert_eq!(cached.payload, vec![1, 2, 3]);
        assert_eq!(cached.eps_bits, 0.25f64.to_bits());
        assert_eq!(s.cached_reply("alice", 8), None);
        assert_eq!(s.cached_reply("bob", 7), None);
        // Roundtrip carries the cache.
        let bytes = s.to_bytes();
        let loaded = StoreState::from_bytes(&bytes).unwrap();
        assert_eq!(loaded, s);
        assert_eq!(StoreState::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn reply_cache_evicts_smallest_ids_past_the_cap() {
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("a", 1e9));
        let n = REPLY_CACHE_PER_ANALYST as u64 + 10;
        for rid in 1..=n {
            s.apply(&Record::replied("a", rid, "q", 0.001, vec![rid as u8]));
        }
        assert_eq!(s.replies["a"].len(), REPLY_CACHE_PER_ANALYST);
        assert_eq!(s.cached_reply("a", 1), None, "oldest evicted");
        assert_eq!(s.cached_reply("a", 10), None);
        assert!(s.cached_reply("a", 11).is_some(), "window retained");
        assert!(s.cached_reply("a", n).is_some());
        // The *charges* all survive eviction — only answers age out.
        assert_eq!(s.sessions["a"].served, n);
        assert!((s.sessions["a"].spent - n as f64 * 0.001).abs() < 1e-9);
    }

    #[test]
    fn snapshots_without_a_reply_section_still_load() {
        // A PR6-era snapshot body ends after release_seqs.
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("alice", 1.0));
        s.apply(&Record::ReleaseSeq {
            fingerprint: 7,
            seq: 3,
        });
        let mut old = s.to_bytes();
        // Drop the empty replies section (4) + the empty log section (28).
        old.truncate(old.len() - 4 - 28);
        let loaded = StoreState::from_bytes(&old).expect("old snapshot loads");
        assert_eq!(loaded.sessions, s.sessions);
        assert_eq!(loaded.release_seqs, s.release_seqs);
        assert!(loaded.replies.is_empty());
        assert_eq!(loaded.log_index, 0);
    }

    #[test]
    fn snapshots_without_a_log_section_still_load() {
        // A PR8-era snapshot body ends after the reply cache.
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("alice", 1.0));
        s.apply(&Record::replied("alice", 1, "q", 0.1, vec![9]));
        let mut old = s.to_bytes();
        old.truncate(old.len() - 28); // drop the empty log section
        let loaded = StoreState::from_bytes(&old).expect("old snapshot loads");
        assert_eq!(loaded, s);
        assert_eq!(loaded.log_epoch, 0);
        assert_eq!(loaded.log_applied, 0);
        assert!(loaded.log_pending.is_empty());
    }

    #[test]
    fn replicated_log_tracks_pending_and_applied() {
        let mut s = StoreState::default();
        let entry = |epoch: u64, index: u64| Record::Replicated {
            epoch,
            index,
            analyst: "alice".into(),
            request_id: 100 + index,
            payload: vec![index as u8],
        };
        s.apply(&entry(1, 1));
        s.apply(&entry(1, 2));
        s.apply(&entry(2, 3));
        assert_eq!(s.log_epoch, 2);
        assert_eq!(s.log_index, 3);
        assert_eq!(s.log_applied, 0);
        assert_eq!(s.log_pending.len(), 3);
        s.apply(&Record::LogApplied { index: 2 });
        assert_eq!(s.log_applied, 2);
        assert_eq!(
            s.log_pending.keys().copied().collect::<Vec<_>>(),
            vec![3],
            "applied entries leave the pending frontier"
        );
        // An already-applied entry replayed from an earlier segment does
        // not reopen the frontier.
        s.apply(&entry(1, 2));
        assert!(!s.log_pending.contains_key(&2));
        // A stale LogApplied mark never moves the high-water back.
        s.apply(&Record::LogApplied { index: 1 });
        assert_eq!(s.log_applied, 2);
        // Roundtrip carries the whole log section.
        let bytes = s.to_bytes();
        assert_eq!(StoreState::from_bytes(&bytes), Some(s.clone()));
        assert_eq!(StoreState::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn log_truncation_discards_the_unapplied_tail_only() {
        let mut s = StoreState::default();
        let entry = |epoch: u64, index: u64| Record::Replicated {
            epoch,
            index,
            analyst: "alice".into(),
            request_id: 100 + index,
            payload: vec![index as u8],
        };
        for i in 1..=5 {
            s.apply(&entry(0, i));
        }
        s.apply(&Record::LogApplied { index: 2 });
        s.apply(&Record::LogTruncated { index: 3 });
        assert_eq!(s.log_index, 3, "the tail above 3 is gone");
        assert_eq!(
            s.log_pending.keys().copied().collect::<Vec<_>>(),
            vec![3],
            "only the surviving pending entry remains"
        );
        // Truncation claiming to unwind applied entries is clamped.
        s.apply(&Record::LogTruncated { index: 1 });
        assert_eq!(s.log_applied, 2);
        assert_eq!(s.log_index, 2);
        assert!(s.log_pending.is_empty());
        // Re-replication after truncation overwrites the old position.
        s.apply(&entry(1, 3));
        assert_eq!(s.log_index, 3);
        assert_eq!(s.log_pending[&3].epoch, 1);
        // The truncated shape survives a snapshot round-trip.
        let bytes = s.to_bytes();
        assert_eq!(StoreState::from_bytes(&bytes), Some(s));
    }

    #[test]
    fn duplicate_open_does_not_reset_a_ledger() {
        let mut s = StoreState::default();
        s.apply(&Record::session_opened("alice", 1.0));
        s.apply(&Record::charged("alice", "q", 0.4));
        s.apply(&Record::session_opened("alice", 99.0));
        assert_eq!(s.sessions["alice"].total, 1.0);
        assert_eq!(s.sessions["alice"].spent, 0.4);
    }

    #[test]
    fn orphan_charges_materialize_unspendable_sessions() {
        let mut s = StoreState::default();
        s.apply(&Record::charged("ghost", "q", 0.3));
        assert_eq!(s.sessions["ghost"].total, 0.0);
        assert_eq!(s.sessions["ghost"].spent, 0.3);
        assert_eq!(s.sessions["ghost"].remaining(), 0.0);
    }

    #[test]
    fn deregistration_removes_the_entry() {
        let mut s = StoreState::default();
        s.apply(&Record::Registered {
            kind: RegistryKind::Dataset,
            name: "ds".into(),
            fingerprint: 1,
        });
        s.apply(&Record::Deregistered {
            kind: RegistryKind::Dataset,
            name: "ds".into(),
        });
        assert!(s.registrations.is_empty());
    }
}
