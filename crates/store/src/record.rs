//! The WAL record vocabulary and its wire encoding.
//!
//! Every durable event is one [`Record`]. On disk a record is framed as
//!
//! ```text
//! ┌───────────┬───────────────┬──────────────┐
//! │ len: u32  │ checksum: u64 │ payload      │   all little-endian
//! └───────────┴───────────────┴──────────────┘
//! ```
//!
//! where `checksum` is FNV-1a over the payload bytes. The frame is what
//! makes recovery safe against torn writes: a crash mid-append leaves
//! either a short header, a short payload, or a payload whose checksum
//! does not match — all three are detected and replay stops *before*
//! applying the damaged suffix, so a partially written charge is never
//! half-applied.
//!
//! ε values and session totals are carried as `f64` bit patterns, so a
//! replayed ledger reproduces the in-memory floating-point state
//! **exactly** — same bits, same sums, same refusal decisions.

/// Maximum payload size the decoder will believe. Real records are tens
/// of bytes; a length beyond this is a corrupt frame, not a huge record,
/// and replay must stop rather than attempt a gigabyte allocation.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// Bytes of framing before the payload (`u32` length + `u64` checksum).
pub const FRAME_HEADER_LEN: usize = 4 + 8;

/// Which registry a [`Record::Registered`] entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegistryKind {
    /// A named policy.
    Policy,
    /// A named tabular dataset.
    Dataset,
    /// A named point set (k-means input).
    Points,
}

impl RegistryKind {
    /// The human-readable kind name (also used in error messages).
    pub fn as_str(self) -> &'static str {
        match self {
            RegistryKind::Policy => "policy",
            RegistryKind::Dataset => "dataset",
            RegistryKind::Points => "points",
        }
    }

    pub(crate) fn tag(self) -> u8 {
        match self {
            RegistryKind::Policy => 0,
            RegistryKind::Dataset => 1,
            RegistryKind::Points => 2,
        }
    }

    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(RegistryKind::Policy),
            1 => Some(RegistryKind::Dataset),
            2 => Some(RegistryKind::Points),
            _ => None,
        }
    }
}

impl std::fmt::Display for RegistryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One durable event in the ε-budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// An analyst opened a session with a total budget.
    SessionOpened {
        /// The analyst's name.
        analyst: String,
        /// Total ε as `f64` bits.
        total_bits: u64,
    },
    /// A charge was drawn from an analyst's ledger. Free
    /// (zero-sensitivity) releases are logged with `eps_bits` of `0.0`
    /// so the served counter survives recovery too.
    Charged {
        /// The analyst who paid.
        analyst: String,
        /// The ledger label of the release.
        label: String,
        /// ε spent as `f64` bits.
        eps_bits: u64,
    },
    /// A named object was registered. The fingerprint binds the name to
    /// the object's content so a recovered engine can refuse a swapped
    /// policy or dataset inheriting the original's spent ledgers.
    Registered {
        /// Which registry.
        kind: RegistryKind,
        /// The registered name.
        name: String,
        /// Content fingerprint (FNV-1a of the object's identity).
        fingerprint: u64,
    },
    /// A named object was deregistered; recovery must not resurrect it.
    Deregistered {
        /// Which registry.
        kind: RegistryKind,
        /// The deregistered name.
        name: String,
    },
    /// High-water mark of a release identity's noise ordinal, written at
    /// checkpoint so a restarted engine resumes each identity's ordinal
    /// sequence instead of replaying earlier releases' exact noise.
    /// Replay keeps the **maximum** seen per fingerprint — ordinals must
    /// never move backwards.
    ReleaseSeq {
        /// FNV-1a fingerprint of the release identity
        /// `(policy, data, ε, query class)`.
        fingerprint: u64,
        /// Releases performed under this identity so far (the next
        /// ordinal to assign).
        seq: u64,
    },
    /// A charge **and** its answer in one frame — the idempotency
    /// record behind exactly-once retries. The charge and the cached
    /// reply must be atomic with respect to recovery: two separate
    /// records could be cut apart by a torn tail, leaving a durable
    /// charge whose answer is lost (a retry would then double-charge).
    /// One frame is indivisible, so either the retry finds the cached
    /// answer (charged once, answered identically) or the whole event
    /// never happened (the retry re-executes and charges once).
    Replied {
        /// The analyst who paid.
        analyst: String,
        /// The client-chosen idempotency key, unique per analyst.
        request_id: u64,
        /// The ledger label of the release.
        label: String,
        /// ε spent as `f64` bits (0.0 for a coalesced duplicate whose
        /// charge rode an earlier record).
        eps_bits: u64,
        /// The encoded answer bytes returned to the analyst (the
        /// engine's `Response` wire encoding), replayed verbatim on
        /// retry.
        payload: Vec<u8>,
    },
    /// A replicated-log entry made durable *before* its acknowledgement
    /// counts toward a quorum (`bf-replica`). The payload is the opaque
    /// encoded log operation (an `OpenSession` or a `Submit`); the store
    /// only tracks its `(epoch, index)` position so recovery knows the
    /// logged high-water mark and which entries still await execution.
    Replicated {
        /// The sequencing epoch the entry was stamped under.
        epoch: u64,
        /// The entry's monotone position in the replicated log (1-based).
        index: u64,
        /// The analyst the operation belongs to.
        analyst: String,
        /// The idempotency key execution will use (`Record::Replied`).
        request_id: u64,
        /// The encoded log operation, replayed verbatim on recovery.
        payload: Vec<u8>,
    },
    /// Execution high-water mark of the replicated log: every entry at
    /// or below `index` has been applied through the engine. Written
    /// after each applied entry so recovery resumes execution exactly
    /// where it stopped; a crash between an entry's `Replied` record and
    /// its `LogApplied` record is harmless — re-execution hits the reply
    /// cache at zero ε and re-writes the mark.
    LogApplied {
        /// Highest applied log index.
        index: u64,
    },
    /// The replicated log was truncated back to `index`: every logged
    /// entry **above** it is discarded as if never written. A follower
    /// writes this when the cluster's new leader proves the follower's
    /// un-applied tail belongs to a deposed epoch (log reconciliation
    /// after failover). Truncation never reaches applied entries — the
    /// replication layer halts instead of unwinding executed state.
    LogTruncated {
        /// Highest surviving log index.
        index: u64,
    },
}

const TAG_SESSION_OPENED: u8 = 1;
const TAG_CHARGED: u8 = 2;
const TAG_REGISTERED: u8 = 3;
const TAG_DEREGISTERED: u8 = 4;
const TAG_RELEASE_SEQ: u8 = 5;
const TAG_REPLIED: u8 = 6;
const TAG_REPLICATED: u8 = 7;
const TAG_LOG_APPLIED: u8 = 8;
const TAG_LOG_TRUNCATED: u8 = 9;

/// FNV-1a over a byte slice — the same stable hash the engine's shard
/// router uses, here guarding frame integrity.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Frames an arbitrary payload exactly the way [`Record::frame`] does:
/// `len: u32 | fnv1a(payload): u64 | payload`, all little-endian. This
/// is the record-framing discipline shared by the WAL and the network
/// wire protocol (`bf-net`), exposed so every length-prefixed,
/// checksummed byte stream in the workspace parses — and fails — the
/// same way.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// How one attempt to take a frame off the front of a byte buffer went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// An intact frame: its payload, plus the total number of bytes the
    /// frame occupied (consume `consumed` bytes before reading again).
    Complete {
        /// The checksum-verified payload.
        payload: &'a [u8],
        /// Frame header + payload length.
        consumed: usize,
    },
    /// Not enough bytes yet — read more and retry.
    Incomplete,
    /// The header or checksum is wrong; the stream cannot be trusted
    /// past this point.
    Corrupt,
}

/// Attempts to read one [`frame_bytes`]-framed payload from the front of
/// `buf` without consuming it. A length beyond [`MAX_RECORD_LEN`] or a
/// checksum mismatch is [`FrameRead::Corrupt`] — a framing error is
/// never reported as "wait for more bytes", so a corrupted stream fails
/// fast instead of hanging a reader forever.
pub fn read_frame(buf: &[u8]) -> FrameRead<'_> {
    if buf.len() < FRAME_HEADER_LEN {
        return FrameRead::Incomplete;
    }
    let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return FrameRead::Corrupt;
    }
    let end = FRAME_HEADER_LEN + len as usize;
    if buf.len() < end {
        return FrameRead::Incomplete;
    }
    let checksum = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let payload = &buf[FRAME_HEADER_LEN..end];
    if fnv1a(payload) != checksum {
        return FrameRead::Corrupt;
    }
    FrameRead::Complete {
        payload,
        consumed: end,
    }
}

/// Appends a length-prefixed UTF-8 string to a wire payload (the
/// encoding [`Reader::str`] reverses).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends a little-endian `u64` to a wire payload.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed byte slice to a wire payload (the encoding
/// [`Reader::bytes`] reverses).
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Cursor over the little-endian wire encoding, shared by record,
/// snapshot and network-message decoding. Every read is bounds-checked;
/// `None` means the bytes are not what the writer produced.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a [`put_str`]-encoded string.
    pub fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let s = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        String::from_utf8(s.to_vec()).ok()
    }

    /// Reads a [`put_bytes`]-encoded byte slice.
    pub fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        let b = self.buf.get(self.pos..self.pos + len)?;
        self.pos += len;
        Some(b.to_vec())
    }

    /// Whether the cursor consumed the buffer exactly — decoders require
    /// this so trailing garbage is rejected, not ignored.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl Record {
    /// The payload bytes (no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Record::SessionOpened {
                analyst,
                total_bits,
            } => {
                out.push(TAG_SESSION_OPENED);
                put_str(&mut out, analyst);
                put_u64(&mut out, *total_bits);
            }
            Record::Charged {
                analyst,
                label,
                eps_bits,
            } => {
                out.push(TAG_CHARGED);
                put_str(&mut out, analyst);
                put_str(&mut out, label);
                put_u64(&mut out, *eps_bits);
            }
            Record::Registered {
                kind,
                name,
                fingerprint,
            } => {
                out.push(TAG_REGISTERED);
                out.push(kind.tag());
                put_str(&mut out, name);
                put_u64(&mut out, *fingerprint);
            }
            Record::Deregistered { kind, name } => {
                out.push(TAG_DEREGISTERED);
                out.push(kind.tag());
                put_str(&mut out, name);
            }
            Record::ReleaseSeq { fingerprint, seq } => {
                out.push(TAG_RELEASE_SEQ);
                put_u64(&mut out, *fingerprint);
                put_u64(&mut out, *seq);
            }
            Record::Replied {
                analyst,
                request_id,
                label,
                eps_bits,
                payload,
            } => {
                out.push(TAG_REPLIED);
                put_str(&mut out, analyst);
                put_u64(&mut out, *request_id);
                put_str(&mut out, label);
                put_u64(&mut out, *eps_bits);
                put_bytes(&mut out, payload);
            }
            Record::Replicated {
                epoch,
                index,
                analyst,
                request_id,
                payload,
            } => {
                out.push(TAG_REPLICATED);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *index);
                put_str(&mut out, analyst);
                put_u64(&mut out, *request_id);
                put_bytes(&mut out, payload);
            }
            Record::LogApplied { index } => {
                out.push(TAG_LOG_APPLIED);
                put_u64(&mut out, *index);
            }
            Record::LogTruncated { index } => {
                out.push(TAG_LOG_TRUNCATED);
                put_u64(&mut out, *index);
            }
        }
        out
    }

    /// Decodes a payload produced by [`Record::encode`]. `None` when the
    /// bytes are not a well-formed record (recovery treats this like a
    /// checksum failure: stop, do not guess).
    pub fn decode(payload: &[u8]) -> Option<Record> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            TAG_SESSION_OPENED => Record::SessionOpened {
                analyst: r.str()?,
                total_bits: r.u64()?,
            },
            TAG_CHARGED => Record::Charged {
                analyst: r.str()?,
                label: r.str()?,
                eps_bits: r.u64()?,
            },
            TAG_REGISTERED => Record::Registered {
                kind: RegistryKind::from_tag(r.u8()?)?,
                name: r.str()?,
                fingerprint: r.u64()?,
            },
            TAG_DEREGISTERED => Record::Deregistered {
                kind: RegistryKind::from_tag(r.u8()?)?,
                name: r.str()?,
            },
            TAG_RELEASE_SEQ => Record::ReleaseSeq {
                fingerprint: r.u64()?,
                seq: r.u64()?,
            },
            TAG_REPLIED => Record::Replied {
                analyst: r.str()?,
                request_id: r.u64()?,
                label: r.str()?,
                eps_bits: r.u64()?,
                payload: r.bytes()?,
            },
            TAG_REPLICATED => Record::Replicated {
                epoch: r.u64()?,
                index: r.u64()?,
                analyst: r.str()?,
                request_id: r.u64()?,
                payload: r.bytes()?,
            },
            TAG_LOG_APPLIED => Record::LogApplied { index: r.u64()? },
            TAG_LOG_TRUNCATED => Record::LogTruncated { index: r.u64()? },
            _ => return None,
        };
        r.done().then_some(record)
    }

    /// Frames the payload for appending: `len | fnv1a | payload`.
    pub fn frame(&self) -> Vec<u8> {
        frame_bytes(&self.encode())
    }

    /// Convenience constructor for a charge record.
    pub fn charged(analyst: &str, label: &str, epsilon: f64) -> Record {
        Record::Charged {
            analyst: analyst.to_owned(),
            label: label.to_owned(),
            eps_bits: epsilon.to_bits(),
        }
    }

    /// Convenience constructor for a session-open record.
    pub fn session_opened(analyst: &str, total: f64) -> Record {
        Record::SessionOpened {
            analyst: analyst.to_owned(),
            total_bits: total.to_bits(),
        }
    }

    /// Convenience constructor for an atomic charge + cached-reply
    /// record.
    pub fn replied(
        analyst: &str,
        request_id: u64,
        label: &str,
        epsilon: f64,
        payload: Vec<u8>,
    ) -> Record {
        Record::Replied {
            analyst: analyst.to_owned(),
            request_id,
            label: label.to_owned(),
            eps_bits: epsilon.to_bits(),
            payload,
        }
    }
}

/// Why a segment scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// The segment ended exactly on a frame boundary.
    Clean,
    /// The tail held fewer bytes than the frame promised — the classic
    /// torn write of a crash mid-append.
    TornTail,
    /// A complete frame failed its checksum or would not decode.
    Corrupt,
}

/// Walks the framed records in `bytes`, calling `apply` for each intact
/// record in order, and reports how the scan ended plus the byte offset
/// of the first non-applied frame.
pub fn scan_frames(bytes: &[u8], mut apply: impl FnMut(Record)) -> (ScanEnd, usize) {
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return (ScanEnd::Clean, pos);
        }
        if remaining < FRAME_HEADER_LEN {
            return (ScanEnd::TornTail, pos);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return (ScanEnd::Corrupt, pos);
        }
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let start = pos + FRAME_HEADER_LEN;
        let end = start + len as usize;
        if end > bytes.len() {
            return (ScanEnd::TornTail, pos);
        }
        let payload = &bytes[start..end];
        if fnv1a(payload) != checksum {
            return (ScanEnd::Corrupt, pos);
        }
        let Some(record) = Record::decode(payload) else {
            return (ScanEnd::Corrupt, pos);
        };
        apply(record);
        pos = end;
    }
}

/// Whether any byte offset in `bytes[from..]` starts an intact frame
/// (sane length, matching checksum, decodable payload).
///
/// Recovery uses this to tell a *tear* from *bit rot* when a segment's
/// scan stops on a corrupt frame: group commit fsyncs batch N before
/// batch N+1 is written, so an intact frame **after** the damage proves
/// the damaged region was once durable — acknowledged charges would be
/// silently dropped by skipping it, and recovery must refuse instead.
/// (A genuine crash tear has only never-synced garbage after it; a
/// false positive here costs an operator intervention, never ε.)
pub fn has_intact_frame_after(bytes: &[u8], from: usize) -> bool {
    let mut pos = from;
    while pos + FRAME_HEADER_LEN <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len <= MAX_RECORD_LEN {
            let start = pos + FRAME_HEADER_LEN;
            if let Some(payload) = bytes.get(start..start + len as usize) {
                let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
                if fnv1a(payload) == checksum && Record::decode(payload).is_some() {
                    return true;
                }
            }
        }
        pos += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::session_opened("alice", 1.5),
            Record::charged("alice", "range@pol/ds", 0.25),
            Record::Registered {
                kind: RegistryKind::Dataset,
                name: "ds".into(),
                fingerprint: 0xDEAD_BEEF,
            },
            Record::Deregistered {
                kind: RegistryKind::Policy,
                name: "pol".into(),
            },
            Record::ReleaseSeq {
                fingerprint: 0x1234_5678_9ABC_DEF0,
                seq: 42,
            },
            Record::replied("alice", 7, "range@pol/ds", 0.25, vec![3, 0, 0, 0, 1, 2, 3]),
            Record::Replicated {
                epoch: 2,
                index: 19,
                analyst: "alice".into(),
                request_id: 7,
                payload: vec![2, 9, 9, 9],
            },
            Record::LogApplied { index: 19 },
            Record::LogTruncated { index: 21 },
        ]
    }

    #[test]
    fn read_frame_roundtrips_and_detects_damage() {
        let payload = b"arbitrary net payload";
        let framed = frame_bytes(payload);
        match read_frame(&framed) {
            FrameRead::Complete {
                payload: p,
                consumed,
            } => {
                assert_eq!(p, payload);
                assert_eq!(consumed, framed.len());
            }
            other => panic!("expected complete frame, got {other:?}"),
        }
        // Every strict prefix is incomplete, never corrupt: a partial
        // TCP read must wait, not kill the connection.
        for cut in 0..framed.len() {
            assert_eq!(read_frame(&framed[..cut]), FrameRead::Incomplete, "{cut}");
        }
        // A flipped payload byte is corrupt once the frame is whole.
        let mut bad = framed.clone();
        bad[FRAME_HEADER_LEN + 3] ^= 0x40;
        assert_eq!(read_frame(&bad), FrameRead::Corrupt);
        // An absurd length field is corrupt, not an allocation attempt.
        let mut huge = framed;
        huge[0..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        assert_eq!(read_frame(&huge), FrameRead::Corrupt);
        // Record::frame and frame_bytes agree bit for bit.
        let r = Record::charged("a", "l", 0.5);
        assert_eq!(r.frame(), frame_bytes(&r.encode()));
    }

    #[test]
    fn roundtrip_every_variant() {
        for r in samples() {
            assert_eq!(Record::decode(&r.encode()), Some(r.clone()));
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = Record::charged("a", "l", 0.1).encode();
        payload.push(0);
        assert_eq!(Record::decode(&payload), None);
        assert_eq!(Record::decode(&[]), None);
        assert_eq!(Record::decode(&[99]), None);
    }

    #[test]
    fn scan_applies_in_order_and_stops_clean() {
        let mut bytes = Vec::new();
        for r in samples() {
            bytes.extend_from_slice(&r.frame());
        }
        let mut seen = Vec::new();
        let (end, pos) = scan_frames(&bytes, |r| seen.push(r));
        assert_eq!(end, ScanEnd::Clean);
        assert_eq!(pos, bytes.len());
        assert_eq!(seen, samples());
    }

    #[test]
    fn torn_tail_is_detected_at_every_cut() {
        let mut bytes = Vec::new();
        for r in samples() {
            bytes.extend_from_slice(&r.frame());
        }
        let boundaries: Vec<usize> = {
            let mut b = vec![0];
            let mut seen = 0;
            scan_frames(&bytes, |_| seen += 1);
            assert_eq!(seen, samples().len());
            let mut pos = 0;
            while pos < bytes.len() {
                let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += FRAME_HEADER_LEN + len;
                b.push(pos);
            }
            b
        };
        for cut in 0..bytes.len() {
            let mut applied = 0;
            let (end, stop) = scan_frames(&bytes[..cut], |_| applied += 1);
            // Exactly the records wholly before the cut are applied …
            let expected = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(applied, expected, "cut at {cut}");
            // … and the scan stops at the last boundary, never clean
            // unless the cut IS a boundary.
            assert_eq!(stop, boundaries[expected]);
            if boundaries.contains(&cut) {
                assert_eq!(end, ScanEnd::Clean);
            } else {
                assert_eq!(end, ScanEnd::TornTail);
            }
        }
    }

    #[test]
    fn corrupt_frames_stop_the_scan() {
        let mut bytes = Vec::new();
        for r in samples() {
            bytes.extend_from_slice(&r.frame());
        }
        // Flip one payload byte in the second record.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let second_start = FRAME_HEADER_LEN + first_len;
        let mut corrupt = bytes.clone();
        corrupt[second_start + FRAME_HEADER_LEN + 2] ^= 0xFF;
        let mut applied = 0;
        let (end, stop) = scan_frames(&corrupt, |_| applied += 1);
        assert_eq!(end, ScanEnd::Corrupt);
        assert_eq!(applied, 1, "only the intact prefix applies");
        assert_eq!(stop, second_start);
        // An absurd length is corrupt, not an allocation attempt.
        let mut huge = bytes;
        huge[0..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        let (end, _) = scan_frames(&huge, |_| {});
        assert_eq!(end, ScanEnd::Corrupt);
    }
}
