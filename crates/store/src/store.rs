//! The store: group-committed WAL appends, snapshot compaction,
//! startup recovery.
//!
//! ## On-disk layout
//!
//! A store directory holds numbered WAL segments and at most one live
//! snapshot:
//!
//! ```text
//! wal-0000000000000000.log      ← appended records, framed + checksummed
//! wal-0000000000000001.log      ← one segment per process generation / compaction
//! snapshot-0000000000000001.snap← full StoreState; covers segments < 1
//! ```
//!
//! The invariant is **snapshot `N` covers exactly the records in
//! segments `< N`**; recovery loads the newest snapshot and replays the
//! segments `≥ N` in order. Compaction preserves the invariant by
//! rotating to segment `N` *before* writing `snapshot-N`, so a crash
//! between the two steps merely leaves an extra segment to replay —
//! never a record covered twice or not at all.
//!
//! ## Group commit
//!
//! [`Store::commit`] appends records and returns only once they are
//! fsync-durable — but concurrent committers share fsyncs: every caller
//! stacks its frames into a pending buffer, one caller becomes the
//! *leader*, writes the whole buffer and fsyncs once, and every caller
//! whose records rode along returns. Under N concurrent charges the
//! store performs ~1 fsync for the batch instead of N
//! ([`StoreStats::amortization`]).

use crate::error::StoreError;
use crate::record::{fnv1a, scan_frames, Record, ScanEnd};
use crate::state::StoreState;
use bf_obs::{Counter, Gauge, Histogram, Registry, Stage, TraceContext, TraceTimer};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Tuning knobs for a [`Store`].
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Compaction normally deletes the WAL segments (and superseded
    /// snapshots) a fresh snapshot covers. With this set they are moved
    /// to an `archive/` subdirectory of the store instead, preserving
    /// the full record-by-record ε-ledger history for point-in-time
    /// audit and off-box backup. Archived files never participate in
    /// recovery — only top-level segments do — so the flag changes
    /// retention, never the recovered state.
    pub archive_replayed_segments: bool,
    /// Fault-injection plan consulted before every WAL write+fsync
    /// (group-commit batches and compaction flushes alike). `None` —
    /// the production default — writes straight through. See
    /// [`bf_chaos::StorePlan`] for what can be injected; any injected
    /// failure poisons the store exactly like a real disk error.
    pub fault_plan: Option<Arc<bf_chaos::StorePlan>>,
}

/// How recovery went: what was loaded, what was replayed, what was
/// tolerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Segment number of the snapshot loaded, if any.
    pub snapshot_segment: Option<u64>,
    /// WAL segments replayed after the snapshot.
    pub segments_replayed: u64,
    /// Records applied from those segments.
    pub records_applied: u64,
    /// Whether a torn or damaged tail was skipped (the crash signature:
    /// an append that never finished and was never acknowledged).
    pub tail_skipped: bool,
}

/// The store's registry-backed counters. [`StoreStats`] is a thin
/// snapshot of these handles, so bench greps and tests keep their
/// numbers while dashboards read the same values off the registry.
#[derive(Debug, Clone)]
struct Counters {
    appended: Counter,
    commits: Counter,
    syncs: Counter,
    compactions: Counter,
    /// Store-layer faults actually injected by the configured
    /// [`StoreConfig::fault_plan`] (0 in production).
    faults_injected: Counter,
    /// Distinct release identities carrying an ordinal high-water mark
    /// in the ledger — the cardinality the snapshot's `release_seqs`
    /// section is bounded by.
    release_seq_identities: Gauge,
    /// Top-level `wal-*.log` segments (the ones recovery would replay).
    live_wal_segments: Gauge,
    /// Segments preserved under `archive/` by
    /// [`StoreConfig::archive_replayed_segments`].
    archived_wal_segments: Gauge,
}

impl Counters {
    fn new(obs: &Registry) -> Self {
        Self {
            appended: obs.counter("store_appended_records_total"),
            commits: obs.counter("store_commits_total"),
            syncs: obs.counter("store_syncs_total"),
            compactions: obs.counter("store_compactions_total"),
            faults_injected: obs.counter("faults_injected{layer=\"store\"}"),
            release_seq_identities: obs.gauge("store_release_seq_identities"),
            live_wal_segments: obs.gauge("store_live_wal_segments"),
            archived_wal_segments: obs.gauge("store_archived_wal_segments"),
        }
    }

    /// Recounts the segment gauges from what is actually on disk, so
    /// compaction behavior is observable without shelling into the
    /// data directory.
    fn refresh_segment_gauges(&self, dir: &Path) {
        self.live_wal_segments.set(count_wal_segments(dir));
        self.archived_wal_segments
            .set(count_wal_segments(&dir.join("archive")));
    }
}

/// One ε charge distilled from the WAL total order — the unit of the
/// audit API. `seq` is the record's 0-based position in the full
/// replayed order (archived segments first, then live ones), so two
/// audits over the same history agree on positions bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntry {
    /// Position in the WAL total order (counting every record kind,
    /// not just charges — positions are stable under filtering).
    pub seq: u64,
    /// The exact ε charged, as IEEE-754 bits (lossless round-trip).
    pub eps_bits: u64,
    /// The ledger label the charge was booked under (the release key).
    pub label: String,
    /// FNV-1a fingerprint of the label bytes — a content-derived
    /// release identity any reader of the same WAL recomputes
    /// identically (the on-disk records carry no fingerprint, so the
    /// binding cannot drift between writer and auditor).
    pub fingerprint: u64,
}

impl LedgerEntry {
    /// The charge as an `f64`.
    pub fn epsilon(&self) -> f64 {
        f64::from_bits(self.eps_bits)
    }
}

/// Counter snapshot for benches and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Records appended since open.
    pub appended_records: u64,
    /// `commit` calls since open.
    pub commits: u64,
    /// fsyncs performed since open.
    pub syncs: u64,
    /// Compactions since open.
    pub compactions: u64,
    /// The segment currently appended to.
    pub segment: u64,
}

impl StoreStats {
    /// Records made durable per fsync — the group-commit batching win
    /// (1.0 means every commit paid its own sync).
    pub fn amortization(&self) -> f64 {
        if self.syncs == 0 {
            0.0
        } else {
            self.appended_records as f64 / self.syncs as f64
        }
    }
}

struct Inner {
    file: Arc<File>,
    segment: u64,
    /// Live mirror of everything appended (not necessarily durable yet;
    /// snapshots are only written after a flush, and a poisoned store
    /// refuses to snapshot).
    state: StoreState,
    /// Encoded frames appended but not yet written + fsynced.
    pending: Vec<u8>,
    /// How many records those frames carry (for the per-fsync batch
    /// size histogram).
    pending_records: u64,
    /// Sequence number the next `commit` call will take.
    next_seq: u64,
    /// Highest sequence number known durable.
    durable_seq: u64,
    /// Whether a leader is currently inside write+fsync.
    syncing: bool,
    counters: Counters,
    poisoned: Option<String>,
}

/// A durable ε-budget ledger: WAL + snapshots in one directory.
///
/// All methods take `&self`; the store is meant to be shared behind an
/// `Arc` by every thread that charges budgets.
pub struct Store {
    dir: PathBuf,
    config: StoreConfig,
    inner: Mutex<Inner>,
    commit_cv: Condvar,
    recovered: StoreState,
    report: RecoveryReport,
    /// The store's own metric registry (`store_*` names). A store can
    /// outlive or predate any engine, so it does not share the engine's
    /// registry; exposition merges the two snapshot sets.
    obs: Arc<Registry>,
    /// Wall time of each leader write + `fsync` pair.
    fsync_ns: Histogram,
    /// Records made durable by each fsync (the group-commit batch size).
    records_per_fsync: Histogram,
    /// Advisory exclusive lock on `LOCK` in the store directory, held
    /// for the store's lifetime: two live stores appending to one
    /// directory would interleave frames and diverge their mirrors, so
    /// the second open fails fast instead. Released by the OS on drop
    /// *or* process death — a crash never wedges the directory.
    _dir_lock: File,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

fn segment_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("wal-{n:016x}.log"))
}

fn snapshot_path(dir: &Path, n: u64) -> PathBuf {
    dir.join(format!("snapshot-{n:016x}.snap"))
}

/// Parses `prefix-XXXXXXXXXXXXXXXX.suffix` names back to numbers.
fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    (rest.len() == 16)
        .then(|| u64::from_str_radix(rest, 16).ok())
        .flatten()
}

/// Counts `wal-*.log` segments in `dir` (0 when the directory does not
/// exist — e.g. `archive/` before the first archiving compaction).
fn count_wal_segments(dir: &Path) -> f64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0.0;
    };
    entries
        .flatten()
        .filter(|e| {
            e.file_name()
                .to_str()
                .and_then(|n| parse_numbered(n, "wal-", ".log"))
                .is_some()
        })
        .count() as f64
}

/// Numerically-sorted `wal-*.log` paths in `dir` (empty when the
/// directory does not exist).
fn sorted_wal_segments(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut segs: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            let n = parse_numbered(name.to_str()?, "wal-", ".log")?;
            Some((n, e.path()))
        })
        .collect();
    segs.sort();
    segs
}

/// Best-effort directory fsync so file creations and renames survive a
/// crash (no-op on platforms where directories cannot be opened).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// The single choke point every WAL byte passes through: write the
/// batch, then fsync — with the fault plan consulted first, so injected
/// failures exercise exactly the code paths a real ENOSPC or dying disk
/// would. A torn write persists (and syncs) half the batch before
/// failing, which is the crash signature recovery's torn-tail logic
/// must absorb.
fn write_and_sync(
    file: &File,
    batch: &[u8],
    plan: Option<&bf_chaos::StorePlan>,
    faults: &Counter,
) -> std::io::Result<()> {
    use bf_chaos::StoreFault;
    let injected = |what: &str| std::io::Error::other(format!("injected: {what}"));
    if let Some(plan) = plan {
        match plan.next() {
            Some(StoreFault::FailWrite) => {
                faults.inc();
                return Err(injected("write failure before any byte reached disk"));
            }
            Some(StoreFault::TornWrite) => {
                faults.inc();
                let torn = batch.len() / 2;
                (&*file).write_all(&batch[..torn])?;
                let _ = file.sync_data();
                return Err(injected("torn write (half the batch persisted)"));
            }
            Some(StoreFault::FailSync) => {
                faults.inc();
                (&*file).write_all(batch)?;
                return Err(injected("fsync failure after a complete write"));
            }
            None => {}
        }
    }
    (&*file).write_all(batch).and_then(|()| file.sync_data())
}

impl Store {
    /// Opens (and recovers) the store at `dir`, creating it when absent.
    ///
    /// Recovery loads the newest snapshot, replays every later WAL
    /// segment record-by-record, tolerates a torn or damaged tail in the
    /// final segment (a crash mid-append — by construction nothing after
    /// the tear was ever acknowledged), and then starts a **fresh**
    /// segment for this process generation, so damaged tails are never
    /// appended after.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] (op `"lock dir"`) when another live store
    /// holds the directory;
    /// [`StoreError::CorruptSnapshot`] when the newest snapshot fails
    /// its checksum (starting empty instead would resurrect spent ε), or
    /// when mid-history corruption is followed by intact frames (skipping
    /// it would silently drop acknowledged charges);
    /// [`StoreError::Io`] when a segment cannot be read mid-stream or
    /// the new segment cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// [`Store::open`] with explicit [`StoreConfig`] knobs.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open_with(dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io("create dir", &e))?;
        let dir_lock = File::options()
            .create(true)
            .truncate(false)
            .write(true)
            .open(dir.join("LOCK"))
            .map_err(|e| StoreError::io("lock dir", &e))?;
        dir_lock.try_lock().map_err(|e| StoreError::Io {
            op: "lock dir".into(),
            message: format!("{} (another store holds this directory)", e),
        })?;

        let mut segments: BTreeMap<u64, PathBuf> = BTreeMap::new();
        let mut snapshots: BTreeMap<u64, PathBuf> = BTreeMap::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| StoreError::io("read dir", &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io("read dir", &e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = parse_numbered(name, "wal-", ".log") {
                segments.insert(n, entry.path());
            } else if let Some(n) = parse_numbered(name, "snapshot-", ".snap") {
                snapshots.insert(n, entry.path());
            }
        }

        let mut report = RecoveryReport::default();
        let mut state = StoreState::default();
        let mut base = 0u64;
        if let Some((&n, path)) = snapshots.last_key_value() {
            let bytes = std::fs::read(path).map_err(|e| StoreError::io("read snapshot", &e))?;
            state = load_snapshot(path, &bytes)?;
            base = n;
            report.snapshot_segment = Some(n);
        }

        let obs = Arc::new(Registry::new());
        let replay_started = Instant::now();
        let replay: Vec<(u64, &PathBuf)> = segments.range(base..).map(|(&n, p)| (n, p)).collect();
        for (n, path) in replay.iter() {
            let bytes = std::fs::read(path).map_err(|e| StoreError::io("read segment", &e))?;
            let mut applied = 0u64;
            let (end, offset) = scan_frames(&bytes, |r| {
                state.apply(&r);
                applied += 1;
            });
            report.segments_replayed += 1;
            report.records_applied += applied;
            match end {
                ScanEnd::Clean => {}
                // A stop before the end of the bytes is either a crash
                // tear (torn header/payload, or a checksum mismatch on
                // never-synced garbage) — in which case nothing past it
                // was ever acknowledged and skipping is sound — or
                // damage *inside* durable history. The two are told
                // apart by what follows: group commit fsyncs batch N
                // before batch N+1 is written, so an **intact frame
                // after the stop** proves the stopped-on region was once
                // durable (a corrupted length field can even fabricate a
                // fake "torn tail" that swallows acknowledged records).
                // Skipping would silently drop acknowledged charges —
                // refuse and make the operator decide.
                ScanEnd::TornTail | ScanEnd::Corrupt => {
                    if crate::record::has_intact_frame_after(&bytes, offset) {
                        return Err(StoreError::CorruptSnapshot {
                            path: path.display().to_string(),
                            detail: format!(
                                "damaged record at byte {offset} of segment {n:#x} \
                                 with durable records after it"
                            ),
                        });
                    }
                    report.tail_skipped = true;
                }
            }
        }

        let replay_elapsed = replay_started.elapsed();
        obs.counter("store_replay_records_total")
            .add(report.records_applied);
        obs.counter("store_replay_ns_total")
            .add(replay_elapsed.as_nanos().min(u64::MAX as u128) as u64);
        let rps = if replay_elapsed.as_secs_f64() > 0.0 {
            report.records_applied as f64 / replay_elapsed.as_secs_f64()
        } else {
            0.0
        };
        obs.gauge("store_replay_records_per_sec").set(rps);

        let next = segments.keys().next_back().map_or(base, |&m| m + 1);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&dir, next))
            .map_err(|e| StoreError::io("create segment", &e))?;
        sync_dir(&dir);

        let counters = Counters::new(&obs);
        counters
            .release_seq_identities
            .set(state.release_seqs.len() as f64);
        counters.refresh_segment_gauges(&dir);

        Ok(Store {
            dir,
            config,
            _dir_lock: dir_lock,
            inner: Mutex::new(Inner {
                file: Arc::new(file),
                segment: next,
                state: state.clone(),
                pending: Vec::new(),
                pending_records: 0,
                next_seq: 1,
                durable_seq: 0,
                syncing: false,
                counters,
                poisoned: None,
            }),
            commit_cv: Condvar::new(),
            recovered: state,
            report,
            fsync_ns: obs.histogram("store_fsync_ns"),
            records_per_fsync: obs.histogram("store_records_per_fsync"),
            obs,
        })
    }

    /// The store's metric registry (`store_*` metrics: appends, syncs,
    /// fsync latency, replay throughput).
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// The ledger state recovered at open (frozen; the live mirror moves
    /// on with every commit).
    pub fn recovered_state(&self) -> &StoreState {
        &self.recovered
    }

    /// How recovery went at open.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// A clone of the live mirror (recovered state + every committed
    /// record since open).
    pub fn current_state(&self) -> StoreState {
        self.inner
            .lock()
            .expect("store lock poisoned")
            .state
            .clone()
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether a write failure has poisoned the store (every further
    /// commit and compaction refuses with [`StoreError::Poisoned`]).
    /// A poisoned store's durable state is whatever reached disk before
    /// the failure; reopen the directory in a fresh process to recover.
    pub fn is_poisoned(&self) -> bool {
        self.poison_reason().is_some()
    }

    /// The message of the write failure that poisoned the store, if
    /// any.
    pub fn poison_reason(&self) -> Option<String> {
        self.inner
            .lock()
            .expect("store lock poisoned")
            .poisoned
            .clone()
    }

    /// Appends `records` and returns once they are fsync-durable.
    ///
    /// Concurrent callers share fsyncs (group commit): one leader writes
    /// and syncs the whole pending batch, everyone whose records rode
    /// along returns without issuing their own sync. Records from one
    /// call are made durable **atomically with respect to recovery** in
    /// the sense that they are applied to the mirror and written in call
    /// order; a crash can cut the suffix but never reorder.
    ///
    /// # Errors
    ///
    /// [`StoreError::Poisoned`] after any earlier write failure (the
    /// store stops acknowledging rather than risk acknowledging an
    /// un-durable charge); [`StoreError::Io`] for the failure itself.
    pub fn commit(&self, records: &[Record]) -> Result<(), StoreError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut g = self.inner.lock().expect("store lock poisoned");
        if let Some(msg) = &g.poisoned {
            return Err(StoreError::Poisoned(msg.clone()));
        }
        for r in records {
            g.state.apply(r);
            let frame = r.frame();
            g.pending.extend_from_slice(&frame);
        }
        g.pending_records += records.len() as u64;
        g.counters.appended.add(records.len() as u64);
        g.counters.commits.inc();
        g.counters
            .release_seq_identities
            .set(g.state.release_seqs.len() as f64);
        let my_seq = g.next_seq;
        g.next_seq += 1;

        loop {
            if g.durable_seq >= my_seq {
                return Ok(());
            }
            if let Some(msg) = &g.poisoned {
                // The batch carrying our records failed to reach disk.
                return Err(StoreError::Poisoned(msg.clone()));
            }
            if g.syncing {
                g = self.commit_cv.wait(g).expect("store lock poisoned");
                continue;
            }
            // Become the leader: take everything pending (ours and any
            // frames stacked since the last sync), write + fsync outside
            // the lock so followers can keep stacking.
            g.syncing = true;
            let batch = std::mem::take(&mut g.pending);
            let batch_records = std::mem::take(&mut g.pending_records);
            let high = g.next_seq - 1;
            let file = Arc::clone(&g.file);
            let faults = g.counters.faults_injected.clone();
            drop(g);
            let sw = self.fsync_ns.start();
            let result = write_and_sync(&file, &batch, self.config.fault_plan.as_deref(), &faults);
            self.fsync_ns.observe(sw);
            g = self.inner.lock().expect("store lock poisoned");
            g.syncing = false;
            match result {
                Ok(()) => {
                    g.durable_seq = g.durable_seq.max(high);
                    g.counters.syncs.inc();
                    self.records_per_fsync.record(batch_records);
                }
                Err(e) => {
                    g.poisoned = Some(e.to_string());
                }
            }
            self.commit_cv.notify_all();
        }
    }

    /// Compacts the log: flushes anything pending, rotates to a fresh
    /// segment, writes a snapshot of the mirror covering everything
    /// before the rotation, and prunes the old segments and snapshots.
    ///
    /// Appends block for the duration (the snapshot must capture a
    /// consistent cut). Crash-safe at every step: the segment rotates
    /// *before* the snapshot is written, so an ill-timed crash leaves at
    /// worst an extra segment to replay, never a covered-twice record.
    ///
    /// # Errors
    ///
    /// [`StoreError::Poisoned`] / [`StoreError::Io`] as for
    /// [`Store::commit`].
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut g = self.inner.lock().expect("store lock poisoned");
        while g.syncing {
            g = self.commit_cv.wait(g).expect("store lock poisoned");
        }
        if let Some(msg) = &g.poisoned {
            return Err(StoreError::Poisoned(msg.clone()));
        }
        // Flush any frames stacked since the last sync.
        if !g.pending.is_empty() {
            let batch = std::mem::take(&mut g.pending);
            let batch_records = std::mem::take(&mut g.pending_records);
            let high = g.next_seq - 1;
            let sw = self.fsync_ns.start();
            if let Err(e) = write_and_sync(
                &g.file,
                &batch,
                self.config.fault_plan.as_deref(),
                &g.counters.faults_injected,
            ) {
                g.poisoned = Some(e.to_string());
                self.commit_cv.notify_all();
                return Err(StoreError::io("flush", &e));
            }
            self.fsync_ns.observe(sw);
            g.durable_seq = g.durable_seq.max(high);
            g.counters.syncs.inc();
            self.records_per_fsync.record(batch_records);
            self.commit_cv.notify_all();
        }

        // Rotate first: from here on new appends land in segment `next`,
        // which the snapshot (covering `< next`) does not claim. A
        // failed rotation poisons: the mirror may already disagree with
        // what a future append could make durable, and serving on is
        // exactly the ambiguity poisoning exists to refuse.
        let next = g.segment + 1;
        let file = match OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, next))
        {
            Ok(f) => f,
            Err(e) => {
                g.poisoned = Some(format!("segment rotation failed: {e}"));
                self.commit_cv.notify_all();
                return Err(StoreError::io("rotate", &e));
            }
        };
        sync_dir(&self.dir);
        g.file = Arc::new(file);
        let old_segment = g.segment;
        g.segment = next;

        // Snapshot the mirror (== all records in segments < next).
        let body = g.state.to_bytes();
        let mut bytes = Vec::with_capacity(8 + body.len());
        bytes.extend_from_slice(&crate::record::fnv1a(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        let tmp = self.dir.join("snapshot.tmp");
        let write = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, snapshot_path(&self.dir, next))?;
            Ok(())
        };
        if let Err(e) = write() {
            // The rotation above already happened: recovery would
            // replay the old segments (no snapshot claims them), so
            // nothing is lost — but this store's view of "which files
            // exist" is now unreliable, and pruning below could delete
            // history no snapshot covers. Fail stop.
            g.poisoned = Some(format!("snapshot write failed: {e}"));
            self.commit_cv.notify_all();
            return Err(StoreError::io("write snapshot", &e));
        }
        sync_dir(&self.dir);
        g.counters.compactions.inc();

        // Prune everything the snapshot covers — by listing what
        // actually exists, not by counting segment numbers since 0
        // (which would cost O(lifetime compactions) of ENOENT unlinks
        // under the store lock). With
        // [`StoreConfig::archive_replayed_segments`] the covered files
        // move to `archive/` instead of being unlinked: the snapshot
        // makes them redundant for recovery, but their record-by-record
        // history stays auditable (and a rename is as cheap as an
        // unlink). Archived files sit in a subdirectory, which the
        // top-level scan in [`Store::open_with`] never visits.
        let archive = self.dir.join("archive");
        if self.config.archive_replayed_segments {
            let _ = std::fs::create_dir_all(&archive);
        }
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let covered = parse_numbered(name, "wal-", ".log")
                    .is_some_and(|m| m <= old_segment)
                    || parse_numbered(name, "snapshot-", ".snap").is_some_and(|m| m <= old_segment);
                if covered {
                    if self.config.archive_replayed_segments {
                        let _ = std::fs::rename(entry.path(), archive.join(name));
                    } else {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        if self.config.archive_replayed_segments {
            sync_dir(&archive);
        }
        sync_dir(&self.dir);
        g.counters.refresh_segment_gauges(&self.dir);
        Ok(())
    }

    /// [`Store::commit`] with request-trace attribution: the whole
    /// durability wait — group-commit queueing, the leader's write and
    /// its fsync — is recorded as one `WalCommit` span into every
    /// active trace in `traces`. With no active trace the clock is
    /// never read; tracing cannot alter commit behavior either way.
    ///
    /// # Errors
    ///
    /// As for [`Store::commit`].
    pub fn commit_traced(
        &self,
        records: &[Record],
        traces: &[&TraceContext],
    ) -> Result<(), StoreError> {
        let timer = TraceTimer::any(traces.iter().copied());
        let result = self.commit(records);
        if timer.is_running() {
            let outcome = if result.is_ok() { "durable" } else { "failed" };
            for t in traces {
                t.record(Stage::WalCommit, &timer, outcome);
            }
        }
        result
    }

    /// The ε-provenance audit API: every `Charged` and `Replied` record
    /// booked for `analyst`, in WAL total order, with the release
    /// fingerprint each charge is bound to. Archived segments (see
    /// [`StoreConfig::archive_replayed_segments`]) are read first, then
    /// the live top-level segments, so with archiving enabled the
    /// result is the complete record-by-record charge history since the
    /// directory was created — bit-for-bit reproducible across calls
    /// and across processes reading the same files.
    ///
    /// Without archiving, charges whose segments a compaction has
    /// already deleted are absent (their *sums* survive in the
    /// snapshot, but per-charge provenance is gone — that is exactly
    /// the retention trade the flag exists for).
    ///
    /// The store lock is held for the duration so compaction cannot
    /// rename segments mid-scan; only acknowledged (durable) records
    /// are ever visible since unflushed frames live in memory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when a segment cannot be read;
    /// [`StoreError::CorruptSnapshot`] when damage is followed by
    /// intact frames (the same refuse-to-guess rule recovery applies —
    /// a plain torn tail ends only that segment's scan and the audit
    /// continues with the next segment, exactly like recovery, so a
    /// crash-torn mid-history segment never hides later charges).
    pub fn ledger_history(&self, analyst: &str) -> Result<Vec<LedgerEntry>, StoreError> {
        let _g = self.inner.lock().expect("store lock poisoned");
        let mut paths = sorted_wal_segments(&self.dir.join("archive"));
        paths.extend(sorted_wal_segments(&self.dir));
        let mut out = Vec::new();
        let mut seq = 0u64;
        for (n, path) in paths {
            let bytes = std::fs::read(&path).map_err(|e| StoreError::io("read segment", &e))?;
            let (end, offset) = scan_frames(&bytes, |r| {
                match &r {
                    Record::Charged {
                        analyst: a,
                        label,
                        eps_bits,
                    }
                    | Record::Replied {
                        analyst: a,
                        label,
                        eps_bits,
                        ..
                    } if a == analyst => {
                        out.push(LedgerEntry {
                            seq,
                            eps_bits: *eps_bits,
                            label: label.clone(),
                            fingerprint: fnv1a(label.as_bytes()),
                        });
                    }
                    _ => {}
                }
                seq += 1;
            });
            if !matches!(end, ScanEnd::Clean) {
                if crate::record::has_intact_frame_after(&bytes, offset) {
                    return Err(StoreError::CorruptSnapshot {
                        path: path.display().to_string(),
                        detail: format!(
                            "damaged record at byte {offset} of segment {n:#x} \
                             with durable records after it"
                        ),
                    });
                }
                // A torn tail was never acknowledged; the audit skips
                // it and keeps scanning later segments exactly like
                // recovery does — post-crash stores rotate to a fresh
                // segment, and every durable charge booked there must
                // still appear in the report.
                continue;
            }
        }
        Ok(out)
    }

    /// Counter snapshot — a thin shim over the registry handles, kept
    /// for existing tests and bench greps.
    pub fn stats(&self) -> StoreStats {
        let g = self.inner.lock().expect("store lock poisoned");
        StoreStats {
            appended_records: g.counters.appended.get(),
            commits: g.counters.commits.get(),
            syncs: g.counters.syncs.get(),
            compactions: g.counters.compactions.get(),
            segment: g.segment,
        }
    }
}

fn load_snapshot(path: &Path, bytes: &[u8]) -> Result<StoreState, StoreError> {
    let corrupt = |detail: &str| StoreError::CorruptSnapshot {
        path: path.display().to_string(),
        detail: detail.to_owned(),
    };
    if bytes.len() < 8 {
        return Err(corrupt("shorter than its checksum"));
    }
    let checksum = u64::from_le_bytes(bytes[..8].try_into().unwrap());
    let body = &bytes[8..];
    if crate::record::fnv1a(body) != checksum {
        return Err(corrupt("checksum mismatch"));
    }
    StoreState::from_bytes(body).ok_or_else(|| corrupt("undecodable state"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RegistryKind, FRAME_HEADER_LEN};
    use crate::scratch_dir;

    #[test]
    fn fresh_open_commit_reopen_recovers() {
        let dir = scratch_dir("fresh");
        {
            let store = Store::open(&dir).unwrap();
            assert!(store.recovered_state().sessions.is_empty());
            store
                .commit(&[
                    Record::session_opened("alice", 1.0),
                    Record::charged("alice", "q1", 0.25),
                ])
                .unwrap();
            store
                .commit(&[Record::charged("alice", "q2", 0.5)])
                .unwrap();
        } // dropped without compaction: the crash case
        let store = Store::open(&dir).unwrap();
        let s = &store.recovered_state().sessions["alice"];
        assert_eq!(s.total, 1.0);
        assert_eq!(s.spent, 0.75);
        assert_eq!(s.served, 2);
        let report = store.recovery_report();
        assert_eq!(report.records_applied, 3);
        assert!(!report.tail_skipped);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_prunes_and_preserves_state() {
        let dir = scratch_dir("compact");
        {
            let store = Store::open(&dir).unwrap();
            store
                .commit(&[
                    Record::session_opened("a", 2.0),
                    Record::charged("a", "q", 0.5),
                    Record::Registered {
                        kind: RegistryKind::Policy,
                        name: "pol".into(),
                        fingerprint: 42,
                    },
                ])
                .unwrap();
            store.compact().unwrap();
            // Post-compaction commits land in the new segment.
            store.commit(&[Record::charged("a", "q2", 0.25)]).unwrap();
            let stats = store.stats();
            assert_eq!(stats.compactions, 1);
            assert_eq!(stats.segment, 1);
        }
        // Only the new segment and the snapshot remain.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(names.iter().any(|n| n.starts_with("snapshot-")));
        assert!(!names.contains(&"wal-0000000000000000.log".to_owned()));

        let store = Store::open(&dir).unwrap();
        let report = store.recovery_report();
        assert_eq!(report.snapshot_segment, Some(1));
        assert_eq!(report.records_applied, 1, "only the post-snapshot charge");
        let s = &store.recovered_state().sessions["a"];
        assert_eq!(s.spent, 0.75);
        assert_eq!(s.served, 2);
        assert_eq!(
            store.recovered_state().registrations[&(RegistryKind::Policy, "pol".into())],
            42
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = scratch_dir("torn");
        {
            let store = Store::open(&dir).unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            store.commit(&[Record::charged("a", "q", 0.5)]).unwrap();
        }
        // Tear the last 3 bytes off the only segment.
        let seg = segment_path(&dir, 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.recovery_report().tail_skipped);
        let s = &store.recovered_state().sessions["a"];
        assert_eq!(s.spent, 0.0, "the torn charge was never acknowledged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_live_open_is_refused_by_the_directory_lock() {
        let dir = scratch_dir("dirlock");
        let store = Store::open(&dir).unwrap();
        match Store::open(&dir) {
            Err(StoreError::Io { op, .. }) => assert_eq!(op, "lock dir"),
            other => panic!("expected lock refusal, got {other:?}"),
        }
        drop(store);
        Store::open(&dir).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_before_intact_frames_refuses_recovery() {
        let dir = scratch_dir("midrot");
        {
            let store = Store::open(&dir).unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            store.commit(&[Record::charged("a", "q1", 0.25)]).unwrap();
            store.commit(&[Record::charged("a", "q2", 0.25)]).unwrap();
        }
        // Flip one byte inside the FIRST record: the two charges after
        // it are intact and were acknowledged, so skipping the damage
        // would resurrect 0.5 ε — recovery must refuse instead.
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[FRAME_HEADER_LEN + 2] ^= 0xFF;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::CorruptSnapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_refuses_to_open() {
        let dir = scratch_dir("corrupt-snap");
        {
            let store = Store::open(&dir).unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            store.compact().unwrap();
        }
        let snap = snapshot_path(&dir, 1);
        let mut bytes = std::fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::CorruptSnapshot { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_commits_share_syncs_and_account_exactly() {
        let dir = scratch_dir("group");
        let store = std::sync::Arc::new(Store::open(&dir).unwrap());
        store.commit(&[Record::session_opened("a", 1e6)]).unwrap();
        let threads = 8;
        let per_thread = 32;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = std::sync::Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        store
                            .commit(&[Record::charged("a", &format!("t{t}i{i}"), 0.001)])
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.appended_records, 1 + threads * per_thread);
        assert_eq!(stats.commits, 1 + threads * per_thread);
        // Reopen: every acknowledged charge is there.
        drop(store);
        let store = Store::open(&dir).unwrap();
        let s = &store.recovered_state().sessions["a"];
        assert_eq!(s.served, threads * per_thread);
        assert!((s.spent - threads as f64 * per_thread as f64 * 0.001).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_recovery_is_byte_identical() {
        let dir = scratch_dir("digest");
        {
            let store = Store::open(&dir).unwrap();
            for i in 0..10 {
                store
                    .commit(&[Record::session_opened(&format!("a{i}"), 1.0)])
                    .unwrap();
                store
                    .commit(&[Record::charged(&format!("a{i}"), "q", 0.125 * (i as f64))])
                    .unwrap();
            }
        }
        let a = Store::open(&dir).unwrap().recovered_state().digest();
        let b = Store::open(&dir).unwrap().recovered_state().digest();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn archive_flag_moves_replayed_segments_instead_of_deleting() {
        let dir = scratch_dir("archive");
        {
            let store = Store::open_with(
                &dir,
                StoreConfig {
                    archive_replayed_segments: true,
                    ..StoreConfig::default()
                },
            )
            .unwrap();
            store
                .commit(&[
                    Record::session_opened("a", 2.0),
                    Record::charged("a", "q1", 0.5),
                ])
                .unwrap();
            store.compact().unwrap();
            store.commit(&[Record::charged("a", "q2", 0.25)]).unwrap();
            store.compact().unwrap();
        }
        // Every pre-compaction segment survives under archive/ …
        let archived: Vec<String> = std::fs::read_dir(dir.join("archive"))
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        assert!(
            archived.contains(&"wal-0000000000000000.log".to_owned()),
            "first segment archived, got {archived:?}"
        );
        assert!(
            archived.contains(&"wal-0000000000000001.log".to_owned()),
            "second segment archived, got {archived:?}"
        );
        // … and replaying the archived segments record-by-record
        // reconstructs the full pre-snapshot ledger history (the
        // point-in-time-audit use case).
        let mut state = crate::state::StoreState::default();
        let mut records = 0;
        for seg in ["wal-0000000000000000.log", "wal-0000000000000001.log"] {
            let bytes = std::fs::read(dir.join("archive").join(seg)).unwrap();
            let (end, _) = scan_frames(&bytes, |r| {
                state.apply(&r);
                records += 1;
            });
            assert_eq!(end, ScanEnd::Clean);
        }
        assert_eq!(records, 3);
        assert_eq!(state.sessions["a"].spent, 0.75);
        // Recovery itself is unaffected: archived files are invisible.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovered_state().sessions["a"].spent, 0.75);
        assert_eq!(store.recovery_report().snapshot_segment, Some(2));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn release_seq_cardinality_gauge_tracks_ledger_and_survives_reopen() {
        let dir = scratch_dir("seq-gauge");
        {
            let store = Store::open(&dir).unwrap();
            assert_eq!(store.obs().gauge("store_release_seq_identities").get(), 0.0);
            store
                .commit(&[
                    Record::ReleaseSeq {
                        fingerprint: 7,
                        seq: 3,
                    },
                    Record::ReleaseSeq {
                        fingerprint: 9,
                        seq: 1,
                    },
                    // A later ordinal for a known identity raises the
                    // high-water mark, not the cardinality.
                    Record::ReleaseSeq {
                        fingerprint: 7,
                        seq: 5,
                    },
                ])
                .unwrap();
            assert_eq!(store.obs().gauge("store_release_seq_identities").get(), 2.0);
        }
        // Reopen replays the WAL; the gauge is seeded from recovery.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.obs().gauge("store_release_seq_identities").get(), 2.0);
        assert_eq!(store.recovered_state().release_seqs[&7], 5);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_config_still_deletes_covered_segments() {
        let dir = scratch_dir("no-archive");
        {
            let store = Store::open(&dir).unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            store.compact().unwrap();
        }
        assert!(!dir.join("archive").exists());
        assert!(!segment_path(&dir, 0).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn chaos_config(plan: bf_chaos::StorePlan) -> StoreConfig {
        StoreConfig {
            fault_plan: Some(Arc::new(plan)),
            ..StoreConfig::default()
        }
    }

    #[test]
    fn injected_write_failure_poisons_and_recovery_keeps_the_prefix() {
        use bf_chaos::{StoreFault, StorePlan};
        let dir = scratch_dir("chaos-failwrite");
        {
            let store = Store::open_with(
                &dir,
                chaos_config(StorePlan::scripted([(2, StoreFault::FailWrite)])),
            )
            .unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            // The second write+fsync fails before any byte lands.
            let err = store.commit(&[Record::charged("a", "q", 0.5)]).unwrap_err();
            assert!(matches!(err, StoreError::Poisoned(_)), "got {err:?}");
            assert!(store.is_poisoned());
            assert!(store.poison_reason().unwrap().contains("injected"));
            // Every further commit AND compaction refuses fail-stop.
            assert!(matches!(
                store.commit(&[Record::charged("a", "q2", 0.1)]),
                Err(StoreError::Poisoned(_))
            ));
            assert!(matches!(store.compact(), Err(StoreError::Poisoned(_))));
            assert_eq!(
                store
                    .obs()
                    .counter("faults_injected{layer=\"store\"}")
                    .get(),
                1
            );
        }
        // A fresh process recovers exactly the acknowledged prefix.
        let store = Store::open(&dir).unwrap();
        let s = &store.recovered_state().sessions["a"];
        assert_eq!(s.total, 1.0);
        assert_eq!(s.spent, 0.0, "the failed charge was never acknowledged");
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_torn_write_leaves_a_recoverable_torn_tail() {
        use bf_chaos::{StoreFault, StorePlan};
        let dir = scratch_dir("chaos-torn");
        {
            let store = Store::open_with(
                &dir,
                chaos_config(StorePlan::scripted([(2, StoreFault::TornWrite)])),
            )
            .unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            // One batch of three charges: half the bytes persist.
            assert!(matches!(
                store.commit(&[
                    Record::charged("a", "q1", 0.125),
                    Record::charged("a", "q2", 0.125),
                    Record::charged("a", "q3", 0.125),
                ]),
                Err(StoreError::Poisoned(_))
            ));
            assert!(store.is_poisoned());
        }
        // Recovery treats the half-written batch as the torn tail it
        // is: intact prefix applied, tear skipped, nothing refused —
        // and none of the torn charges were ever acknowledged.
        let store = Store::open(&dir).unwrap();
        assert!(store.recovery_report().tail_skipped);
        let s = &store.recovered_state().sessions["a"];
        assert_eq!(s.total, 1.0);
        assert!(
            s.spent < 0.375,
            "at least the final torn charge must be missing, got {}",
            s.spent
        );
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_fsync_failure_poisons_even_though_bytes_reached_disk() {
        use bf_chaos::{StoreFault, StorePlan};
        let dir = scratch_dir("chaos-failsync");
        {
            let store = Store::open_with(
                &dir,
                chaos_config(StorePlan::scripted([(2, StoreFault::FailSync)])),
            )
            .unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            // The write completes, the fsync "fails": durability is
            // unknown, so the store must NOT acknowledge.
            assert!(matches!(
                store.commit(&[Record::charged("a", "q", 0.5)]),
                Err(StoreError::Poisoned(_))
            ));
        }
        // Here the bytes did survive — an unacknowledged-but-durable
        // charge. That is the conservative direction: budget can be
        // lost to a failed ack, never resurrected.
        let store = Store::open(&dir).unwrap();
        let s = &store.recovered_state().sessions["a"];
        assert_eq!(s.spent, 0.5);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replied_records_commit_recover_and_compact() {
        let dir = scratch_dir("replied");
        {
            let store = Store::open(&dir).unwrap();
            store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
            store
                .commit(&[Record::replied("a", 1, "q", 0.25, vec![9, 9])])
                .unwrap();
            store.compact().unwrap();
            store
                .commit(&[Record::replied("a", 2, "q", 0.25, vec![8])])
                .unwrap();
        }
        // Recovery sees both replies: one through the snapshot, one
        // through post-snapshot replay.
        let store = Store::open(&dir).unwrap();
        let state = store.recovered_state();
        assert_eq!(state.sessions["a"].spent, 0.5);
        assert_eq!(state.sessions["a"].served, 2);
        assert_eq!(state.cached_reply("a", 1).unwrap().payload, vec![9, 9]);
        assert_eq!(state.cached_reply("a", 2).unwrap().payload, vec![8]);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_history_spans_archived_and_live_segments_in_order() {
        let dir = scratch_dir("ledger-history");
        let config = StoreConfig {
            archive_replayed_segments: true,
            ..StoreConfig::default()
        };
        {
            let store = Store::open_with(&dir, config.clone()).unwrap();
            store
                .commit(&[
                    Record::session_opened("a", 2.0),
                    Record::charged("a", "q1", 0.5),
                    Record::session_opened("b", 1.0),
                    Record::charged("b", "q1", 0.25),
                ])
                .unwrap();
            store.compact().unwrap();
            store
                .commit(&[Record::replied("a", 7, "q2", 0.125, vec![3])])
                .unwrap();

            let hist = store.ledger_history("a").unwrap();
            assert_eq!(hist.len(), 2);
            // seq counts every record in total order: a's charge is the
            // second record overall, the reply the fifth.
            assert_eq!(hist[0].seq, 1);
            assert_eq!(hist[0].label, "q1");
            assert_eq!(hist[0].epsilon(), 0.5);
            assert_eq!(hist[0].fingerprint, fnv1a(b"q1"));
            assert_eq!(hist[1].seq, 4);
            assert_eq!(hist[1].label, "q2");
            assert_eq!(hist[1].eps_bits, 0.125f64.to_bits());
            // b sees only its own charge; a stranger sees nothing.
            assert_eq!(store.ledger_history("b").unwrap().len(), 1);
            assert!(store.ledger_history("nobody").unwrap().is_empty());
        }
        // A fresh process reads the identical history off the same
        // files — the bit-for-bit reproducibility the audit API
        // promises.
        let store = Store::open_with(&dir, config).unwrap();
        let again = store.ledger_history("a").unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again[0].seq, 1);
        assert_eq!(again[1].eps_bits, 0.125f64.to_bits());
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_history_without_archiving_loses_compacted_charges() {
        let dir = scratch_dir("ledger-noarch");
        let store = Store::open(&dir).unwrap();
        store
            .commit(&[
                Record::session_opened("a", 1.0),
                Record::charged("a", "old", 0.5),
            ])
            .unwrap();
        store.compact().unwrap();
        store.commit(&[Record::charged("a", "new", 0.25)]).unwrap();
        let hist = store.ledger_history("a").unwrap();
        assert_eq!(hist.len(), 1, "the compacted charge is gone");
        assert_eq!(hist[0].label, "new");
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_history_scans_past_a_torn_mid_history_segment() {
        let dir = scratch_dir("ledger-torn-mid");
        {
            let store = Store::open(&dir).unwrap();
            store
                .commit(&[
                    Record::session_opened("a", 2.0),
                    Record::charged("a", "before", 0.5),
                ])
                .unwrap();
            store.commit(&[Record::charged("a", "torn", 0.25)]).unwrap();
        }
        // Tear the last 3 bytes off segment 0 — the crash signature.
        let seg = segment_path(&dir, 0);
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        // The post-crash process tolerates the tear and books new
        // durable charges into the fresh segment recovery rotated to.
        let store = Store::open(&dir).unwrap();
        assert!(store.recovery_report().tail_skipped);
        store
            .commit(&[Record::charged("a", "after", 0.125)])
            .unwrap();
        // The audit must skip the torn tail and keep scanning: every
        // durable charge before AND after the tear appears; only the
        // never-acknowledged torn charge is absent.
        let hist = store.ledger_history("a").unwrap();
        let labels: Vec<&str> = hist.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, ["before", "after"]);
        // Damage *inside* durable history is still refused outright.
        let bytes = std::fs::read(&seg).unwrap();
        let mut flipped = bytes.clone();
        flipped[FRAME_HEADER_LEN] ^= 0xFF;
        std::fs::write(&seg, &flipped).unwrap();
        assert!(matches!(
            store.ledger_history("a"),
            Err(StoreError::CorruptSnapshot { .. })
        ));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_gauges_track_compaction_and_archiving() {
        let dir = scratch_dir("seg-gauges");
        let store = Store::open_with(
            &dir,
            StoreConfig {
                archive_replayed_segments: true,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let live = || store.obs().gauge("store_live_wal_segments").get();
        let archived = || store.obs().gauge("store_archived_wal_segments").get();
        assert_eq!(live(), 1.0);
        assert_eq!(archived(), 0.0);
        store.commit(&[Record::session_opened("a", 1.0)]).unwrap();
        store.compact().unwrap();
        assert_eq!(live(), 1.0, "old segment rotated out, new one in");
        assert_eq!(archived(), 1.0);
        store.commit(&[Record::charged("a", "q", 0.5)]).unwrap();
        store.compact().unwrap();
        assert_eq!(archived(), 2.0);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_traced_records_wal_commit_spans_for_active_traces() {
        let dir = scratch_dir("commit-traced");
        let store = Store::open(&dir).unwrap();
        let buf = bf_obs::TraceBuffer::detached(4);
        let live = buf.begin(bf_obs::TraceId(1), "a");
        let inert = TraceContext::inert();
        store
            .commit_traced(&[Record::session_opened("a", 1.0)], &[&live, &inert])
            .unwrap();
        live.finish("ok");
        let tree = buf.find(bf_obs::TraceId(1)).unwrap();
        assert_eq!(tree.spans.len(), 1);
        assert_eq!(tree.spans[0].stage, Stage::WalCommit);
        assert_eq!(tree.spans[0].outcome, "durable");
        // Inert traces cost nothing and record nothing — and commit
        // semantics are identical either way.
        store
            .commit_traced(&[Record::charged("a", "q", 0.5)], &[&inert])
            .unwrap();
        assert_eq!(store.current_state().sessions["a"].spent, 0.5);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn numbered_name_parsing() {
        assert_eq!(
            parse_numbered("wal-0000000000000003.log", "wal-", ".log"),
            Some(3)
        );
        assert_eq!(parse_numbered("wal-3.log", "wal-", ".log"), None);
        assert_eq!(
            parse_numbered("snapshot-00000000000000ff.snap", "snapshot-", ".snap"),
            Some(255)
        );
        assert_eq!(parse_numbered("other.txt", "wal-", ".log"), None);
    }
}
