//! Typed errors for the persistence layer.
//!
//! Everything is `Clone + PartialEq` (I/O errors are captured as
//! strings) so store failures can ride inside `EngineError` and come
//! back through ticket futures unchanged.

use std::fmt;

/// Errors raised by opening, writing or recovering a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed. `op` names what the store was doing
    /// (e.g. `"append"`, `"fsync"`, `"rotate"`).
    Io {
        /// The operation that failed.
        op: String,
        /// The underlying error, stringified.
        message: String,
    },
    /// A snapshot file exists but fails its checksum or cannot be
    /// parsed. Recovery refuses to guess: the operator must remove or
    /// restore the snapshot (the WAL segments it compacted are gone, so
    /// silently starting empty would resurrect spent budget).
    CorruptSnapshot {
        /// Path of the offending snapshot.
        path: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A previous write or fsync failed; the log refuses further
    /// appends so an un-durable suffix can never be acknowledged.
    Poisoned(String),
}

impl StoreError {
    pub(crate) fn io(op: &str, e: &std::io::Error) -> Self {
        StoreError::Io {
            op: op.to_owned(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, message } => write!(f, "store i/o error during {op}: {message}"),
            StoreError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {path}: {detail}")
            }
            StoreError::Poisoned(msg) => {
                write!(f, "store poisoned by earlier write failure: {msg}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_operation() {
        let e = StoreError::io("fsync", &std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("fsync"));
        assert!(e.to_string().contains("disk gone"));
        let c = StoreError::CorruptSnapshot {
            path: "snap".into(),
            detail: "bad checksum".into(),
        };
        assert!(c.to_string().contains("snap"));
        assert!(StoreError::Poisoned("x".into()).to_string().contains("x"));
    }
}
