//! # bf-store — a durable ε-budget ledger
//!
//! Blowfish's `(ε, P)` guarantee is an accounting claim: whatever an
//! analyst learns across all their queries costs at most their ledger's
//! total ε. That claim dies with the process unless the ledger does not
//! — a crash that forgets spent budget lets an analyst re-spend it and
//! breaks the guarantee outright. This crate is the persistence layer
//! that makes budgets survive anything short of disk loss, built on
//! `std::fs`/`std::io` alone:
//!
//! * **[`Record`]** — the durable event vocabulary: sessions opened,
//!   charges drawn (ε as exact `f64` bits), registrations with content
//!   fingerprints, deregistrations.
//! * **[`Store`]** — an append-only WAL of checksummed, length-prefixed
//!   frames with **group commit**: concurrent charges stack their
//!   frames and share one fsync ([`StoreStats::amortization`]).
//!   Periodic [`Store::compact`] folds the log into a snapshot and
//!   prunes replayed segments.
//! * **Recovery** — [`Store::open`] loads the newest snapshot, replays
//!   later segments, tolerates the torn tail of a crash mid-append
//!   (those records were never acknowledged), and refuses checksummed
//!   damage anywhere it could resurrect spent budget.
//!
//! The engine integration (in `bf-engine`) is
//! **acknowledge-after-durable**: a charge is committed here *before*
//! the mechanism release executes, so every answer an analyst ever saw
//! is covered by a durable ledger entry — recovered spent is always ≥
//! acknowledged spent, never less.

mod error;
mod record;
mod state;
mod store;

pub use error::StoreError;
pub use record::{
    fnv1a, frame_bytes, has_intact_frame_after, put_bytes, put_str, put_u64, read_frame,
    scan_frames, FrameRead, Reader, Record, RegistryKind, ScanEnd, FRAME_HEADER_LEN,
    MAX_RECORD_LEN,
};
pub use state::{CachedReply, PendingLogEntry, SessionState, StoreState, REPLY_CACHE_PER_ANALYST};
pub use store::{LedgerEntry, RecoveryReport, Store, StoreConfig, StoreStats};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory under the system temp dir — for tests,
/// benches and examples that need a throwaway store. The caller removes
/// it (or leaves it to the OS).
pub fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("bf-store-{tag}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}
