//! The policy graph `G_P` (Definition 8.3) and the Theorem 8.2 sensitivity
//! bound.
//!
//! Vertices are the count queries of `Q` plus two specials `v⁺` and `v⁻`.
//! For every secret-graph edge `(x, y)` (analyzed as the directed change
//! `x → y`; the reverse direction contributes the reversed arcs):
//!
//! * if the change lifts `q'` and lowers `q`, add arc `q → q'`,
//! * if it lifts `q` without lowering anything, add arc `v⁺ → q`,
//! * if it lowers `q` without lifting anything, add arc `q → v⁻`,
//! * and `v⁺ → v⁻` is always present.
//!
//! Theorem 8.2: for sparse `Q`,
//! `S(h, P) ≤ 2·max{α(G_P), ξ(G_P)}` where `α` is the longest simple
//! cycle length and `ξ` the longest simple `v⁺ → v⁻` path length; the
//! bound is tight in the structured scenarios of Section 8.2.

use crate::error::ConstraintError;
use crate::sparse::{check_sparse, LiftLower};
use bf_core::Predicate;
use bf_domain::Domain;
use bf_graph::{DiGraph, SecretGraph};

/// The directed policy graph `G_P = (Q ∪ {v⁺, v⁻}, E_P)`.
///
/// # Examples
///
/// Example 8.2 / Figure 3 — the {A1, A2} marginal over `T = 2×2×3` with
/// full-domain secrets yields α = 4, ξ = 1 and `S(h, P) = 8`:
///
/// ```
/// use bf_constraints::marginal::Marginal;
/// use bf_constraints::policy_graph::PolicyGraph;
/// use bf_constraints::sparse::DEFAULT_SCAN_CAP;
/// use bf_domain::Domain;
/// use bf_graph::SecretGraph;
///
/// let domain = Domain::from_cardinalities(&[2, 2, 3]).unwrap();
/// let marginal = Marginal::new(vec![0, 1]);
/// let gp = PolicyGraph::build(
///     &domain,
///     &SecretGraph::Full,
///     &marginal.queries(&domain),
///     DEFAULT_SCAN_CAP,
/// ).unwrap();
/// assert_eq!((gp.alpha(), gp.xi()), (4, 1));
/// assert_eq!(gp.sensitivity_bound(), 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct PolicyGraph {
    digraph: DiGraph,
    num_queries: usize,
}

impl PolicyGraph {
    /// Builds `G_P` by scanning every edge of the secret graph. Requires
    /// the constraints to be sparse (Definition 8.2); edges are
    /// enumerated structurally so the scan is `O(|E|·|Q|)`, within the
    /// same caps as [`check_sparse`].
    ///
    /// # Errors
    ///
    /// Propagates [`check_sparse`] errors: size mismatches, over-cap
    /// scans and non-sparse constraint sets.
    pub fn build(
        domain: &Domain,
        graph: &SecretGraph,
        queries: &[Predicate],
        scan_cap: usize,
    ) -> Result<Self, ConstraintError> {
        check_sparse(domain, graph, queries, scan_cap)?;
        let p = queries.len();
        let v_plus = p;
        let v_minus = p + 1;
        let mut digraph = DiGraph::new(p + 2);
        digraph.add_edge(v_plus, v_minus); // rule (iv)
        graph.for_each_edge(domain, |x, y| {
            // Each undirected edge contributes both directed changes.
            for (a, b) in [(x, y), (y, x)] {
                let ll = LiftLower::analyze(queries, a, b);
                match (ll.lowered.first(), ll.lifted.first()) {
                    (Some(&ql), Some(&qf)) => digraph.add_edge(ql, qf),
                    (None, Some(&qf)) => digraph.add_edge(v_plus, qf),
                    (Some(&ql), None) => digraph.add_edge(ql, v_minus),
                    (None, None) => {}
                }
            }
        });
        Ok(Self {
            digraph,
            num_queries: p,
        })
    }

    /// Number of count-query vertices `|Q|`.
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Vertex id of `v⁺`.
    pub fn v_plus(&self) -> usize {
        self.num_queries
    }

    /// Vertex id of `v⁻`.
    pub fn v_minus(&self) -> usize {
        self.num_queries + 1
    }

    /// The underlying digraph (query vertices `0..p`, then `v⁺`, `v⁻`).
    pub fn digraph(&self) -> &DiGraph {
        &self.digraph
    }

    /// `α(G_P)`: length of the longest simple directed cycle (0 if
    /// acyclic).
    pub fn alpha(&self) -> usize {
        self.digraph.longest_simple_cycle()
    }

    /// `ξ(G_P)`: length of the longest simple `v⁺ → v⁻` path. At least 1
    /// because `v⁺ → v⁻` is always an arc.
    pub fn xi(&self) -> usize {
        self.digraph
            .longest_simple_path(self.v_plus(), self.v_minus())
            .expect("v+ -> v- arc always exists")
    }

    /// The Theorem 8.2 sensitivity bound `2·max{α, ξ}` for the complete
    /// histogram.
    pub fn sensitivity_bound(&self) -> f64 {
        2.0 * self.alpha().max(self.xi()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::DEFAULT_SCAN_CAP;

    fn abc_domain() -> Domain {
        Domain::from_cardinalities(&[2, 2, 3]).unwrap()
    }

    fn marginal_queries(domain: &Domain) -> Vec<Predicate> {
        let mut out = Vec::new();
        for a1 in 0..2u32 {
            for a2 in 0..2u32 {
                out.push(Predicate::from_fn(domain.size(), |x| {
                    domain.attribute_value(x, 0) == a1 && domain.attribute_value(x, 1) == a2
                }));
            }
        }
        out
    }

    /// Example 8.2 / Figure 3(b): the policy graph of the {A1, A2}
    /// marginal with full-domain secrets has α = 4 and ξ = 1.
    #[test]
    fn example_8_2_policy_graph() {
        let d = abc_domain();
        let qs = marginal_queries(&d);
        let gp = PolicyGraph::build(&d, &SecretGraph::Full, &qs, DEFAULT_SCAN_CAP).unwrap();
        assert_eq!(gp.num_queries(), 4);
        assert_eq!(gp.alpha(), 4);
        assert_eq!(gp.xi(), 1);
        // Example 8.3: S(h, P) = 8.
        assert_eq!(gp.sensitivity_bound(), 8.0);
        // Every ordered query pair is an arc (complete digraph on Q).
        for u in 0..4 {
            for v in 0..4 {
                if u != v {
                    assert!(gp.digraph().has_edge(u, v), "missing arc {u}->{v}");
                }
            }
        }
        // No arcs into v- or out of v+ except (v+, v-).
        assert!(gp.digraph().has_edge(gp.v_plus(), gp.v_minus()));
        assert_eq!(gp.digraph().successors(gp.v_plus()).len(), 1);
    }

    /// A single count query with full-domain secrets: the change can lift
    /// without lowering (and vice versa), so v⁺ → q → v⁻ gives ξ = 2 and
    /// S(h, P) ≤ 4 — matching the unconstrained histogram sensitivity 2
    /// only through the tighter neighbor analysis; the theorem's bound is
    /// 2·max{0, 2} = 4.
    #[test]
    fn single_query_bound() {
        let d = Domain::line(4).unwrap();
        let q = Predicate::of_values(4, &[0, 1]);
        let gp = PolicyGraph::build(&d, &SecretGraph::Full, &[q], DEFAULT_SCAN_CAP).unwrap();
        assert_eq!(gp.alpha(), 0);
        assert_eq!(gp.xi(), 2); // v+ -> q -> v-
        assert_eq!(gp.sensitivity_bound(), 4.0);
    }

    /// Corollary 8.3: the bound never exceeds `2·max{|Q|, 1}` (cycles and
    /// v⁺→v⁻ paths visit each query vertex at most once).
    #[test]
    fn corollary_8_3_bound() {
        let d = abc_domain();
        let qs = marginal_queries(&d);
        let gp = PolicyGraph::build(&d, &SecretGraph::Full, &qs, DEFAULT_SCAN_CAP).unwrap();
        assert!(gp.sensitivity_bound() <= 2.0 * (qs.len().max(1)) as f64);
    }

    /// With partitioned secrets aligned to the constrained counts, no edge
    /// lifts or lowers anything: the policy graph has only the (v⁺, v⁻)
    /// arc, α = 0, ξ = 1, bound 2.
    #[test]
    fn aligned_partition_gives_minimal_graph() {
        let d = Domain::line(6).unwrap();
        let part = bf_domain::Partition::intervals(6, 3);
        let graph = SecretGraph::Partition(part);
        let q1 = Predicate::of_values(6, &[0, 1, 2]);
        let q2 = Predicate::of_values(6, &[3, 4, 5]);
        let gp = PolicyGraph::build(&d, &graph, &[q1, q2], DEFAULT_SCAN_CAP).unwrap();
        assert_eq!(gp.alpha(), 0);
        assert_eq!(gp.xi(), 1);
        assert_eq!(gp.sensitivity_bound(), 2.0);
    }

    /// Line-graph secrets with contiguous interval constraints: each unit
    /// move crosses at most one boundary, arcs chain the intervals, and the
    /// longest cycle alternates between adjacent intervals (length 2).
    #[test]
    fn interval_constraints_on_line_graph() {
        let d = Domain::line(6).unwrap();
        let q1 = Predicate::of_values(6, &[0, 1]);
        let q2 = Predicate::of_values(6, &[2, 3]);
        let q3 = Predicate::of_values(6, &[4, 5]);
        let gp =
            PolicyGraph::build(&d, &SecretGraph::line(), &[q1, q2, q3], DEFAULT_SCAN_CAP).unwrap();
        // Moves 1<->2 swap q1/q2; moves 3<->4 swap q2/q3. All moves lift
        // one and lower one, so no v+/v- arcs beyond the default.
        assert_eq!(gp.alpha(), 2);
        assert_eq!(gp.xi(), 1);
        assert_eq!(gp.sensitivity_bound(), 4.0);
    }

    #[test]
    fn not_sparse_propagates() {
        let d = Domain::line(4).unwrap();
        let q1 = Predicate::of_values(4, &[0, 1]);
        let q2 = Predicate::of_values(4, &[0, 1, 2]);
        assert!(matches!(
            PolicyGraph::build(&d, &SecretGraph::Full, &[q1, q2], DEFAULT_SCAN_CAP),
            Err(ConstraintError::NotSparse { .. })
        ));
    }
}
