//! Marginals (cuboids) as constraint sets, and Theorems 8.4 / 8.5.
//!
//! A marginal `C` projects the database onto attributes `[C]` and publishes
//! every group-by count (Definition 8.4). As a constraint set it is one
//! count query per cell of `×_{A ∈ [C]} A`, so `size(C) = ∏_{A∈[C]} |A|`.

use crate::error::ConstraintError;
use bf_core::{CountConstraint, Predicate};
use bf_domain::{Dataset, Domain};

/// A marginal: a subset of attribute positions `[C]`.
///
/// # Examples
///
/// ```
/// use bf_constraints::Marginal;
/// use bf_domain::Domain;
///
/// let domain = Domain::from_cardinalities(&[2, 4, 5]).unwrap();
/// let m = Marginal::new(vec![0, 1]); // project onto (A1, A2)
/// assert_eq!(m.size(&domain), 8);    // 8 group-by cells
/// assert!(m.is_proper(&domain));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marginal {
    attrs: Vec<usize>,
}

impl Marginal {
    /// Creates a marginal over the given attribute positions (sorted,
    /// deduplicated).
    pub fn new(mut attrs: Vec<usize>) -> Self {
        attrs.sort_unstable();
        attrs.dedup();
        Self { attrs }
    }

    /// The projected attribute positions `[C]`.
    pub fn attrs(&self) -> &[usize] {
        &self.attrs
    }

    /// `size(C) = ∏_{A ∈ [C]} |A|`: the number of cells (count queries).
    pub fn size(&self, domain: &Domain) -> usize {
        self.attrs
            .iter()
            .map(|&a| domain.attribute(a).cardinality())
            .product()
    }

    /// Whether `[C] ⊊ A` (a *proper* subset of all attributes) — required
    /// by Theorems 8.4/8.5.
    pub fn is_proper(&self, domain: &Domain) -> bool {
        self.attrs.len() < domain.arity()
    }

    /// Whether two marginals project onto disjoint attribute sets.
    pub fn disjoint_from(&self, other: &Marginal) -> bool {
        self.attrs.iter().all(|a| !other.attrs.contains(a))
    }

    /// The marginal's count queries `C^q`: one predicate per cell, in
    /// odometer order over the projected attributes.
    pub fn queries(&self, domain: &Domain) -> Vec<Predicate> {
        let cards: Vec<usize> = self
            .attrs
            .iter()
            .map(|&a| domain.attribute(a).cardinality())
            .collect();
        let cells = cards.iter().product::<usize>();
        let mut out = Vec::with_capacity(cells);
        let mut cursor = vec![0u32; self.attrs.len()];
        for _ in 0..cells {
            let fixed: Vec<(usize, u32)> = self
                .attrs
                .iter()
                .zip(&cursor)
                .map(|(&a, &v)| (a, v))
                .collect();
            out.push(Predicate::from_fn(domain.size(), move |x| {
                fixed
                    .iter()
                    .all(|&(a, v)| domain_attr_value(x, a, domain) == v)
            }));
            // Odometer increment over the projected attributes.
            for i in (0..cursor.len()).rev() {
                cursor[i] += 1;
                if (cursor[i] as usize) < cards[i] {
                    break;
                }
                cursor[i] = 0;
            }
        }
        out
    }

    /// The marginal as observed constraints on a dataset: count queries
    /// paired with their public answers.
    pub fn constraints(&self, dataset: &Dataset) -> Vec<CountConstraint> {
        self.queries(dataset.domain())
            .into_iter()
            .map(|q| CountConstraint::observed(q, dataset))
            .collect()
    }
}

fn domain_attr_value(x: usize, attr: usize, domain: &Domain) -> u32 {
    domain.attribute_value(x, attr)
}

/// Theorem 8.4: for a policy `(T, G^full, I_Q(C))` with one marginal
/// `[C] ⊊ A` known, the histogram sensitivity is exactly
/// `S(h, P) = 2·size(C)`.
///
/// # Errors
///
/// [`ConstraintError::MarginalNotProper`] when `[C] = A` (the theorem's
/// construction of matching neighbors needs a free attribute).
pub fn thm_8_4_sensitivity(domain: &Domain, marginal: &Marginal) -> Result<f64, ConstraintError> {
    if !marginal.is_proper(domain) {
        return Err(ConstraintError::MarginalNotProper);
    }
    Ok(2.0 * marginal.size(domain) as f64)
}

/// Theorem 8.5: for a policy `(T, G^attr, I_Q(C1,…,Cp))` with
/// pairwise-disjoint proper marginals, the histogram sensitivity is
/// exactly `S(h, P) = 2·max_i size(C_i)`.
///
/// # Errors
///
/// * [`ConstraintError::MarginalNotProper`] when some `[C_i] = A`,
/// * [`ConstraintError::MarginalsOverlap`] when two marginals share an
///   attribute.
pub fn thm_8_5_sensitivity(
    domain: &Domain,
    marginals: &[Marginal],
) -> Result<f64, ConstraintError> {
    for (i, m) in marginals.iter().enumerate() {
        if !m.is_proper(domain) {
            return Err(ConstraintError::MarginalNotProper);
        }
        for (j, other) in marginals.iter().enumerate().skip(i + 1) {
            if !m.disjoint_from(other) {
                return Err(ConstraintError::MarginalsOverlap {
                    first: i,
                    second: j,
                });
            }
        }
    }
    let max = marginals.iter().map(|m| m.size(domain)).max().unwrap_or(0);
    Ok(2.0 * max as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy_graph::PolicyGraph;
    use crate::sparse::DEFAULT_SCAN_CAP;
    use bf_graph::SecretGraph;

    fn abc_domain() -> Domain {
        Domain::from_cardinalities(&[2, 2, 3]).unwrap()
    }

    #[test]
    fn marginal_size_and_queries() {
        let d = abc_domain();
        let m = Marginal::new(vec![0, 1]);
        assert_eq!(m.size(&d), 4);
        assert!(m.is_proper(&d));
        let qs = m.queries(&d);
        assert_eq!(qs.len(), 4);
        // Each domain value satisfies exactly one cell.
        for x in d.indices() {
            assert_eq!(qs.iter().filter(|q| q.eval(x)).count(), 1);
        }
        // Each cell has |A3| = 3 values.
        for q in &qs {
            assert_eq!(q.support_size(), 3);
        }
    }

    #[test]
    fn marginal_constraints_observed() {
        let d = abc_domain();
        let ds = Dataset::from_rows(d.clone(), vec![0, 1, 6, 11]).unwrap();
        let m = Marginal::new(vec![0]);
        let cs = m.constraints(&ds);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].answer(), 2); // a1: rows 0, 1
        assert_eq!(cs[1].answer(), 2); // a2: rows 6, 11
    }

    #[test]
    fn thm_8_4_matches_policy_graph() {
        // Example 8.3: S(h, P) = 2·size(C) = 8 for the {A1,A2} marginal.
        let d = abc_domain();
        let m = Marginal::new(vec![0, 1]);
        let closed = thm_8_4_sensitivity(&d, &m).unwrap();
        let gp =
            PolicyGraph::build(&d, &SecretGraph::Full, &m.queries(&d), DEFAULT_SCAN_CAP).unwrap();
        assert_eq!(closed, gp.sensitivity_bound());
        assert_eq!(closed, 8.0);
    }

    #[test]
    fn thm_8_4_rejects_full_marginal() {
        let d = abc_domain();
        let m = Marginal::new(vec![0, 1, 2]);
        assert!(matches!(
            thm_8_4_sensitivity(&d, &m),
            Err(ConstraintError::MarginalNotProper)
        ));
    }

    #[test]
    fn thm_8_5_matches_policy_graph() {
        // Disjoint marginals {A1} and {A3} with attribute secrets: the
        // policy graph is a union of cliques; S = 2·max(2, 3) = 6.
        let d = abc_domain();
        let m1 = Marginal::new(vec![0]);
        let m2 = Marginal::new(vec![2]);
        let closed = thm_8_5_sensitivity(&d, &[m1.clone(), m2.clone()]).unwrap();
        assert_eq!(closed, 6.0);
        let mut queries = m1.queries(&d);
        queries.extend(m2.queries(&d));
        let gp =
            PolicyGraph::build(&d, &SecretGraph::Attribute, &queries, DEFAULT_SCAN_CAP).unwrap();
        assert_eq!(gp.sensitivity_bound(), closed);
    }

    #[test]
    fn thm_8_5_rejects_overlap() {
        let d = abc_domain();
        let m1 = Marginal::new(vec![0, 1]);
        let m2 = Marginal::new(vec![1]);
        assert!(matches!(
            thm_8_5_sensitivity(&d, &[m1, m2]),
            Err(ConstraintError::MarginalsOverlap { .. })
        ));
    }

    #[test]
    fn marginals_not_sparse_under_full_secrets_when_multiple() {
        // Two disjoint marginals are NOT sparse w.r.t. the full graph: a
        // change can lower one query in each marginal. That is why Theorem
        // 8.5 uses attribute secrets.
        let d = abc_domain();
        let m1 = Marginal::new(vec![0]);
        let m2 = Marginal::new(vec![2]);
        let mut queries = m1.queries(&d);
        queries.extend(m2.queries(&d));
        assert!(matches!(
            PolicyGraph::build(&d, &SecretGraph::Full, &queries, DEFAULT_SCAN_CAP),
            Err(ConstraintError::NotSparse { .. })
        ));
    }

    #[test]
    fn dedup_and_sort() {
        let m = Marginal::new(vec![2, 0, 2]);
        assert_eq!(m.attrs(), &[0, 2]);
    }
}
