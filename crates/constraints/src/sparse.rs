//! Lift/lower analysis and the sparsity check (Definitions 8.1, 8.2).
//!
//! For a directed tuple change `x → y` and a count query `q_φ`, exactly one
//! of three cases holds: the count *lifts* (`¬φ(x) ∧ φ(y)`), *lowers*
//! (`φ(x) ∧ ¬φ(y)`), or stays put. Constraints `Q` are **sparse** w.r.t.
//! the secret graph `G` when every edge lifts at most one query in `Q` and
//! lowers at most one query in `Q` — the condition under which the policy
//! graph of Definition 8.3 captures the full structure of `S(h, P)`.

use crate::error::ConstraintError;
use bf_core::Predicate;
use bf_domain::Domain;
use bf_graph::SecretGraph;

/// The effect of a directed change `x → y` on a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftLower {
    /// Indices of queries lifted by the change.
    pub lifted: Vec<usize>,
    /// Indices of queries lowered by the change.
    pub lowered: Vec<usize>,
}

impl LiftLower {
    /// Analyzes the change `x → y` against every query.
    pub fn analyze(queries: &[Predicate], x: usize, y: usize) -> Self {
        let mut lifted = Vec::new();
        let mut lowered = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let fx = q.eval(x);
            let fy = q.eval(y);
            if !fx && fy {
                lifted.push(i);
            } else if fx && !fy {
                lowered.push(i);
            }
        }
        Self { lifted, lowered }
    }

    /// Whether this single change respects sparsity (≤1 lift, ≤1 lower).
    pub fn is_sparse(&self) -> bool {
        self.lifted.len() <= 1 && self.lowered.len() <= 1
    }
}

/// Default cap on `|T|` for scanning the **complete** secret graph (whose
/// edge set is genuinely `Θ(|T|²)`). Structured graphs are capped on the
/// number of *actual* edges instead — see [`check_sparse`].
pub const DEFAULT_SCAN_CAP: usize = 4096;

/// Validates sizes and checks Definition 8.2 sparsity of `queries` w.r.t.
/// the secret graph by scanning every edge of `G`.
///
/// Edges are enumerated structurally (`bf_graph::enumerate`), so the scan
/// costs `O(|E| · |Q|)` — for an `L1Threshold` or `Attribute` graph that
/// is near-linear in `|T|`, and domains far beyond the old all-pairs cap
/// are accepted. The work bound is expressed as an **edge budget** of
/// `scan_cap²` (the same worst-case work the old `|T| ≤ scan_cap` rule
/// permitted): the complete graph keeps the legacy `|T|` cap, every other
/// variant is rejected only when its actual edge count exceeds the
/// budget.
///
/// # Errors
///
/// * [`ConstraintError::PredicateSizeMismatch`] for mis-sized predicates,
/// * [`ConstraintError::DomainTooLargeForScan`] for a complete graph past
///   the `|T|` cap,
/// * [`ConstraintError::TooManyEdgesForScan`] for a structured graph past
///   the edge budget,
/// * [`ConstraintError::NotSparse`] naming the first offending edge.
pub fn check_sparse(
    domain: &Domain,
    graph: &SecretGraph,
    queries: &[Predicate],
    scan_cap: usize,
) -> Result<(), ConstraintError> {
    for q in queries {
        if q.domain_size() != domain.size() {
            return Err(ConstraintError::PredicateSizeMismatch {
                expected: domain.size(),
                got: q.domain_size(),
            });
        }
    }
    match graph {
        SecretGraph::Full => {
            if domain.size() > scan_cap {
                return Err(ConstraintError::DomainTooLargeForScan {
                    size: domain.size(),
                    cap: scan_cap,
                });
            }
        }
        _ => {
            let budget = (scan_cap as u64).saturating_mul(scan_cap as u64);
            // Capped counting: stops at budget + 1, so rejecting an
            // over-budget graph never costs more than the budget itself.
            let edges = graph.edge_count_capped(domain, budget);
            if edges > budget {
                return Err(ConstraintError::TooManyEdgesForScan { edges, cap: budget });
            }
        }
    }
    // Sparsity is symmetric: x→y lifts what y→x lowers. One direction
    // suffices, so scanning each undirected edge once is enough.
    if let Some((x, y)) = graph.find_edge(domain, |x, y| {
        !LiftLower::analyze(queries, x, y).is_sparse()
    }) {
        let ll = LiftLower::analyze(queries, x, y);
        return Err(ConstraintError::NotSparse {
            x,
            y,
            lifted: ll.lifted,
            lowered: ll.lowered,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_domain() -> Domain {
        // Section 8's running example: A1={a1,a2}, A2={b1,b2}, A3={c1..c3}.
        Domain::from_cardinalities(&[2, 2, 3]).unwrap()
    }

    /// The four marginal queries of Figure 3(a): q_i fixes (A1, A2).
    fn marginal_queries(domain: &Domain) -> Vec<Predicate> {
        let mut out = Vec::new();
        for a1 in 0..2u32 {
            for a2 in 0..2u32 {
                out.push(Predicate::from_fn(domain.size(), |x| {
                    domain.attribute_value(x, 0) == a1 && domain.attribute_value(x, 1) == a2
                }));
            }
        }
        out
    }

    #[test]
    fn example_8_1_is_sparse() {
        let d = abc_domain();
        let qs = marginal_queries(&d);
        assert!(check_sparse(&d, &SecretGraph::Full, &qs, DEFAULT_SCAN_CAP).is_ok());
    }

    #[test]
    fn example_8_1_lift_lower_cases() {
        let d = abc_domain();
        let qs = marginal_queries(&d);
        // (a1,b1,c1) -> (a2,b2,c2): lifts q4 (index 3), lowers q1 (index 0).
        let x = d.encode(&[0, 0, 0]).unwrap();
        let y = d.encode(&[1, 1, 1]).unwrap();
        let ll = LiftLower::analyze(&qs, x, y);
        assert_eq!(ll.lifted, vec![3]);
        assert_eq!(ll.lowered, vec![0]);
        // (a1,b2,c1) -> (a1,b2,c2): neither lifts nor lowers.
        let x = d.encode(&[0, 1, 0]).unwrap();
        let y = d.encode(&[0, 1, 1]).unwrap();
        let ll = LiftLower::analyze(&qs, x, y);
        assert!(ll.lifted.is_empty() && ll.lowered.is_empty());
    }

    #[test]
    fn overlapping_queries_not_sparse() {
        let d = Domain::line(4).unwrap();
        // Two overlapping prefix queries: moving 3 -> 0 lifts both.
        let q1 = Predicate::of_values(4, &[0, 1]);
        let q2 = Predicate::of_values(4, &[0, 1, 2]);
        let err = check_sparse(&d, &SecretGraph::Full, &[q1, q2], DEFAULT_SCAN_CAP).unwrap_err();
        assert!(matches!(err, ConstraintError::NotSparse { .. }));
    }

    #[test]
    fn narrow_graph_can_restore_sparsity() {
        // The same overlapping queries are sparse w.r.t. the line graph:
        // adjacent moves cross at most one query boundary.
        let d = Domain::line(4).unwrap();
        let q1 = Predicate::of_values(4, &[0, 1]);
        let q2 = Predicate::of_values(4, &[0, 1, 2]);
        assert!(check_sparse(&d, &SecretGraph::line(), &[q1, q2], DEFAULT_SCAN_CAP).is_ok());
    }

    #[test]
    fn size_mismatch_and_cap() {
        let d = Domain::line(4).unwrap();
        let bad = Predicate::of_values(5, &[0]);
        assert!(matches!(
            check_sparse(&d, &SecretGraph::Full, &[bad], DEFAULT_SCAN_CAP),
            Err(ConstraintError::PredicateSizeMismatch { .. })
        ));
        let big = Domain::line(100).unwrap();
        let q = Predicate::of_values(100, &[0]);
        assert!(matches!(
            check_sparse(&big, &SecretGraph::Full, &[q], 10),
            Err(ConstraintError::DomainTooLargeForScan { .. })
        ));
    }

    #[test]
    fn structured_graphs_scan_past_the_old_domain_cap() {
        // 16384 cells is 4× the old all-pairs cap; the θ=2 line graph has
        // only ~2·|T| edges, so the structured scan accepts it.
        let n = 16_384;
        let d = Domain::line(n).unwrap();
        let queries: Vec<Predicate> = (0..4)
            .map(|i| Predicate::from_fn(n, move |x| x / (n / 4) == i))
            .collect();
        let g = SecretGraph::L1Threshold { theta: 2 };
        assert!(check_sparse(&d, &g, &queries, DEFAULT_SCAN_CAP).is_ok());
        // The complete graph on the same domain is still refused: its
        // edge set genuinely is Θ(|T|²).
        assert!(matches!(
            check_sparse(&d, &SecretGraph::Full, &queries, DEFAULT_SCAN_CAP),
            Err(ConstraintError::DomainTooLargeForScan { .. })
        ));
    }

    #[test]
    fn edge_budget_rejects_effectively_dense_structured_graphs() {
        // A single partition block over 8192 values is a clique of ~33.5M
        // edges — past the 4096² ≈ 16.8M edge budget.
        use bf_domain::Partition;
        let n = 8192;
        let d = Domain::line(n).unwrap();
        let g = SecretGraph::Partition(Partition::single_block(n));
        let q = Predicate::of_values(n, &[0]);
        assert!(matches!(
            check_sparse(&d, &g, &[q], DEFAULT_SCAN_CAP),
            Err(ConstraintError::TooManyEdgesForScan { .. })
        ));
    }

    /// The pre-enumeration all-pairs sparsity verdict, kept as the oracle
    /// the structured scan is property-tested against.
    fn sparse_verdict_all_pairs(
        domain: &Domain,
        graph: &SecretGraph,
        queries: &[Predicate],
    ) -> bool {
        for x in domain.indices() {
            for y in (x + 1)..domain.size() {
                if graph.is_edge(domain, x, y) && !LiftLower::analyze(queries, x, y).is_sparse() {
                    return false;
                }
            }
        }
        true
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// On random domains, secret graphs, and query sets, the
        /// structured `check_sparse` verdict exactly equals the all-pairs
        /// reference verdict.
        #[test]
        fn check_sparse_matches_all_pairs_oracle(
            cards in proptest::collection::vec(1usize..5, 1..4),
            theta in 1u64..5,
            width in 1usize..5,
            qseed in proptest::collection::vec(0usize..10_000, 2..10),
        ) {
            use bf_domain::Partition;
            use proptest::prop_assert_eq;
            let domain = Domain::from_cardinalities(&cards).unwrap();
            let n = domain.size();
            // A couple of random overlapping membership queries.
            let queries: Vec<Predicate> = qseed
                .chunks(3)
                .map(|chunk| {
                    let values: Vec<usize> = chunk.iter().map(|s| s % n).collect();
                    Predicate::of_values(n, &values)
                })
                .collect();
            for graph in [
                SecretGraph::Full,
                SecretGraph::Attribute,
                SecretGraph::L1Threshold { theta },
                SecretGraph::Partition(Partition::intervals(n, width)),
            ] {
                let got = check_sparse(&domain, &graph, &queries, DEFAULT_SCAN_CAP);
                let want = sparse_verdict_all_pairs(&domain, &graph, &queries);
                prop_assert_eq!(
                    got.is_ok(),
                    want,
                    "{}: got {:?}",
                    graph.label(),
                    got
                );
            }
        }
    }
}
