//! Lift/lower analysis and the sparsity check (Definitions 8.1, 8.2).
//!
//! For a directed tuple change `x → y` and a count query `q_φ`, exactly one
//! of three cases holds: the count *lifts* (`¬φ(x) ∧ φ(y)`), *lowers*
//! (`φ(x) ∧ ¬φ(y)`), or stays put. Constraints `Q` are **sparse** w.r.t.
//! the secret graph `G` when every edge lifts at most one query in `Q` and
//! lowers at most one query in `Q` — the condition under which the policy
//! graph of Definition 8.3 captures the full structure of `S(h, P)`.

use crate::error::ConstraintError;
use bf_core::Predicate;
use bf_domain::Domain;
use bf_graph::SecretGraph;

/// The effect of a directed change `x → y` on a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiftLower {
    /// Indices of queries lifted by the change.
    pub lifted: Vec<usize>,
    /// Indices of queries lowered by the change.
    pub lowered: Vec<usize>,
}

impl LiftLower {
    /// Analyzes the change `x → y` against every query.
    pub fn analyze(queries: &[Predicate], x: usize, y: usize) -> Self {
        let mut lifted = Vec::new();
        let mut lowered = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let fx = q.eval(x);
            let fy = q.eval(y);
            if !fx && fy {
                lifted.push(i);
            } else if fx && !fy {
                lowered.push(i);
            }
        }
        Self { lifted, lowered }
    }

    /// Whether this single change respects sparsity (≤1 lift, ≤1 lower).
    pub fn is_sparse(&self) -> bool {
        self.lifted.len() <= 1 && self.lowered.len() <= 1
    }
}

/// Default cap on `|T|` for the exhaustive pairwise edge scan.
pub const DEFAULT_SCAN_CAP: usize = 4096;

/// Validates sizes and checks Definition 8.2 sparsity of `queries` w.r.t.
/// the secret graph by scanning every edge of `G`.
///
/// The scan is `O(|T|² · |Q|)`; domains larger than `scan_cap` are
/// rejected (use the closed-form theorems for the structured scenarios of
/// Section 8.2 instead).
///
/// # Errors
///
/// * [`ConstraintError::PredicateSizeMismatch`] for mis-sized predicates,
/// * [`ConstraintError::DomainTooLargeForScan`] past the cap,
/// * [`ConstraintError::NotSparse`] naming the first offending edge.
pub fn check_sparse(
    domain: &Domain,
    graph: &SecretGraph,
    queries: &[Predicate],
    scan_cap: usize,
) -> Result<(), ConstraintError> {
    for q in queries {
        if q.domain_size() != domain.size() {
            return Err(ConstraintError::PredicateSizeMismatch {
                expected: domain.size(),
                got: q.domain_size(),
            });
        }
    }
    if domain.size() > scan_cap {
        return Err(ConstraintError::DomainTooLargeForScan {
            size: domain.size(),
            cap: scan_cap,
        });
    }
    for x in domain.indices() {
        for y in (x + 1)..domain.size() {
            if !graph.is_edge(domain, x, y) {
                continue;
            }
            // Sparsity is symmetric: x→y lifts what y→x lowers. One
            // direction suffices.
            let ll = LiftLower::analyze(queries, x, y);
            if !ll.is_sparse() {
                return Err(ConstraintError::NotSparse {
                    x,
                    y,
                    lifted: ll.lifted,
                    lowered: ll.lowered,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_domain() -> Domain {
        // Section 8's running example: A1={a1,a2}, A2={b1,b2}, A3={c1..c3}.
        Domain::from_cardinalities(&[2, 2, 3]).unwrap()
    }

    /// The four marginal queries of Figure 3(a): q_i fixes (A1, A2).
    fn marginal_queries(domain: &Domain) -> Vec<Predicate> {
        let mut out = Vec::new();
        for a1 in 0..2u32 {
            for a2 in 0..2u32 {
                out.push(Predicate::from_fn(domain.size(), |x| {
                    domain.attribute_value(x, 0) == a1 && domain.attribute_value(x, 1) == a2
                }));
            }
        }
        out
    }

    #[test]
    fn example_8_1_is_sparse() {
        let d = abc_domain();
        let qs = marginal_queries(&d);
        assert!(check_sparse(&d, &SecretGraph::Full, &qs, DEFAULT_SCAN_CAP).is_ok());
    }

    #[test]
    fn example_8_1_lift_lower_cases() {
        let d = abc_domain();
        let qs = marginal_queries(&d);
        // (a1,b1,c1) -> (a2,b2,c2): lifts q4 (index 3), lowers q1 (index 0).
        let x = d.encode(&[0, 0, 0]).unwrap();
        let y = d.encode(&[1, 1, 1]).unwrap();
        let ll = LiftLower::analyze(&qs, x, y);
        assert_eq!(ll.lifted, vec![3]);
        assert_eq!(ll.lowered, vec![0]);
        // (a1,b2,c1) -> (a1,b2,c2): neither lifts nor lowers.
        let x = d.encode(&[0, 1, 0]).unwrap();
        let y = d.encode(&[0, 1, 1]).unwrap();
        let ll = LiftLower::analyze(&qs, x, y);
        assert!(ll.lifted.is_empty() && ll.lowered.is_empty());
    }

    #[test]
    fn overlapping_queries_not_sparse() {
        let d = Domain::line(4).unwrap();
        // Two overlapping prefix queries: moving 3 -> 0 lifts both.
        let q1 = Predicate::of_values(4, &[0, 1]);
        let q2 = Predicate::of_values(4, &[0, 1, 2]);
        let err = check_sparse(&d, &SecretGraph::Full, &[q1, q2], DEFAULT_SCAN_CAP).unwrap_err();
        assert!(matches!(err, ConstraintError::NotSparse { .. }));
    }

    #[test]
    fn narrow_graph_can_restore_sparsity() {
        // The same overlapping queries are sparse w.r.t. the line graph:
        // adjacent moves cross at most one query boundary.
        let d = Domain::line(4).unwrap();
        let q1 = Predicate::of_values(4, &[0, 1]);
        let q2 = Predicate::of_values(4, &[0, 1, 2]);
        assert!(check_sparse(&d, &SecretGraph::line(), &[q1, q2], DEFAULT_SCAN_CAP).is_ok());
    }

    #[test]
    fn size_mismatch_and_cap() {
        let d = Domain::line(4).unwrap();
        let bad = Predicate::of_values(5, &[0]);
        assert!(matches!(
            check_sparse(&d, &SecretGraph::Full, &[bad], DEFAULT_SCAN_CAP),
            Err(ConstraintError::PredicateSizeMismatch { .. })
        ));
        let big = Domain::line(100).unwrap();
        let q = Predicate::of_values(100, &[0]);
        assert!(matches!(
            check_sparse(&big, &SecretGraph::Full, &[q], 10),
            Err(ConstraintError::DomainTooLargeForScan { .. })
        ));
    }
}
