//! Range-count constraints on grid domains and Theorem 8.6.
//!
//! Section 8.2.3: the domain is a grid `T = [m]^k`, the adversary knows
//! the answers to `p` *disjoint* range count queries (rectangles), and the
//! policy protects distance-threshold secrets `S^{d,θ}_pairs`. Build the
//! rectangle graph `G_R(Q)` — vertices are the rectangles, an edge joins
//! `R_i, R_j` iff `d(R_i, R_j) ≤ θ` — and let `maxcomp(Q)` be the size of
//! its largest connected component. Then
//! `S(h, P) ≤ 2·(maxcomp(Q) + 1)`, with equality when no constraint is a
//! point query.

use crate::error::ConstraintError;
use bf_core::Predicate;
use bf_domain::grid::Rectangle;
use bf_domain::GridDomain;
use bf_graph::Graph;

/// Validates disjointness and builds the rectangle graph `G_R(Q)`:
/// vertices are rectangles, edges join rectangles at L1 gap ≤ θ.
///
/// # Errors
///
/// [`ConstraintError::RectanglesOverlap`] when two rectangles intersect.
pub fn rectangle_graph(rects: &[Rectangle], theta: u64) -> Result<Graph, ConstraintError> {
    for (i, r) in rects.iter().enumerate() {
        for (j, s) in rects.iter().enumerate().skip(i + 1) {
            if r.intersects(s) {
                return Err(ConstraintError::RectanglesOverlap {
                    first: i,
                    second: j,
                });
            }
        }
    }
    let mut g = Graph::new(rects.len());
    for (i, r) in rects.iter().enumerate() {
        for (j, s) in rects.iter().enumerate().skip(i + 1) {
            if r.l1_gap(s) <= theta {
                g.add_edge(i, j);
            }
        }
    }
    Ok(g)
}

/// Sizes of the connected components of `G_R(Q)`.
///
/// # Errors
///
/// Propagates [`rectangle_graph`] errors.
pub fn rectangle_graph_components(
    rects: &[Rectangle],
    theta: u64,
) -> Result<Vec<usize>, ConstraintError> {
    let g = rectangle_graph(rects, theta)?;
    let comp = g.components();
    let n = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; n];
    for c in comp {
        sizes[c] += 1;
    }
    Ok(sizes)
}

/// Theorem 8.6: `S(h, P) = 2·(maxcomp(Q) + 1)` for disjoint range-count
/// constraints with distance-threshold secrets (equality requires no point
/// queries; with point queries the value is an upper bound).
///
/// Returns `(sensitivity, is_exact)`.
///
/// # Errors
///
/// Propagates [`rectangle_graph`] errors.
pub fn thm_8_6_sensitivity(
    grid: &GridDomain,
    rects: &[Rectangle],
    theta: u64,
) -> Result<(f64, bool), ConstraintError> {
    assert!(theta > 0, "theorem requires θ > 0");
    for r in rects {
        grid.check_rectangle(r)
            .unwrap_or_else(|e| panic!("rectangle outside grid: {e}"));
    }
    let sizes = rectangle_graph_components(rects, theta)?;
    let maxcomp = sizes.iter().copied().max().unwrap_or(0);
    let exact = rects.iter().all(|r| !r.is_point());
    Ok((2.0 * (maxcomp as f64 + 1.0), exact))
}

/// The rectangles as count-query predicates over the grid (used to wire
/// range constraints into policies and the generic policy-graph checker).
pub fn rectangle_predicates(grid: &GridDomain, rects: &[Rectangle]) -> Vec<Predicate> {
    rects
        .iter()
        .map(|r| Predicate::from_fn(grid.size(), |x| r.contains(&grid.coords(x))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: Vec<usize>, hi: Vec<usize>) -> Rectangle {
        Rectangle::new(lo, hi).unwrap()
    }

    #[test]
    fn overlap_rejected() {
        let rects = vec![rect(vec![0, 0], vec![2, 2]), rect(vec![2, 2], vec![3, 3])];
        assert!(matches!(
            rectangle_graph(&rects, 1),
            Err(ConstraintError::RectanglesOverlap {
                first: 0,
                second: 1
            })
        ));
    }

    #[test]
    fn components_depend_on_theta() {
        // Three rectangles in a row with gaps 2 and 4.
        let rects = vec![
            rect(vec![0, 0], vec![1, 9]),
            rect(vec![3, 0], vec![4, 9]),
            rect(vec![8, 0], vec![9, 9]),
        ];
        // θ=1: all isolated.
        assert_eq!(
            rectangle_graph_components(&rects, 1).unwrap(),
            vec![1, 1, 1]
        );
        // θ=2: first two join.
        let mut sizes = rectangle_graph_components(&rects, 2).unwrap();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2]);
        // θ=4: all chained.
        assert_eq!(rectangle_graph_components(&rects, 4).unwrap(), vec![3]);
    }

    #[test]
    fn thm_8_6_values() {
        let grid = GridDomain::new(vec![10, 10]).unwrap();
        let rects = vec![
            rect(vec![0, 0], vec![1, 9]),
            rect(vec![3, 0], vec![4, 9]),
            rect(vec![8, 0], vec![9, 9]),
        ];
        let (s, exact) = thm_8_6_sensitivity(&grid, &rects, 1).unwrap();
        assert_eq!(s, 4.0); // maxcomp 1
        assert!(exact);
        let (s, _) = thm_8_6_sensitivity(&grid, &rects, 4).unwrap();
        assert_eq!(s, 8.0); // maxcomp 3
    }

    #[test]
    fn point_queries_flagged_inexact() {
        let grid = GridDomain::new(vec![5, 5]).unwrap();
        let rects = vec![rect(vec![0, 0], vec![0, 0])];
        let (s, exact) = thm_8_6_sensitivity(&grid, &rects, 1).unwrap();
        assert_eq!(s, 4.0);
        assert!(!exact);
    }

    #[test]
    fn predicates_match_rectangles() {
        let grid = GridDomain::new(vec![4, 4]).unwrap();
        let rects = vec![rect(vec![0, 0], vec![1, 1]), rect(vec![2, 2], vec![3, 3])];
        let preds = rectangle_predicates(&grid, &rects);
        assert_eq!(preds[0].support_size(), 4);
        assert!(preds[0].disjoint_from(&preds[1]));
        assert!(preds[0].eval(grid.index_of(&[1, 1]).unwrap()));
        assert!(!preds[0].eval(grid.index_of(&[2, 0]).unwrap()));
    }

    #[test]
    fn empty_constraint_set() {
        let grid = GridDomain::new(vec![4, 4]).unwrap();
        let (s, exact) = thm_8_6_sensitivity(&grid, &[], 1).unwrap();
        // maxcomp = 0: a single move still changes 2 histogram cells.
        assert_eq!(s, 2.0);
        assert!(exact);
    }
}
