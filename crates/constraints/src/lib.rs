//! # bf-constraints — histograms under count constraints (Section 8)
//!
//! When the policy carries publicly known count-query constraints
//! `Q = {q_φ1, …, q_φp}`, neighboring databases can differ in many tuples
//! and computing the policy-specific sensitivity `S(h, P)` of the complete
//! histogram is NP-hard in general (Theorem 8.1). This crate implements
//! the paper's tractable machinery for the *sparse* case:
//!
//! * [`sparse`] — Definition 8.1 lift/lower analysis and the Definition 8.2
//!   sparsity check (every secret-graph edge lifts at most one query and
//!   lowers at most one query),
//! * [`policy_graph`] — the Definition 8.3 directed policy graph
//!   `G_P = (Q ∪ {v⁺, v⁻}, E_P)` with `α(G_P)` (longest simple cycle) and
//!   `ξ(G_P)` (longest simple `v⁺ → v⁻` path), giving the Theorem 8.2
//!   bound `S(h, P) ≤ 2·max{α, ξ}`,
//! * [`marginal`] — marginals/cuboids as sets of count queries
//!   (Definition 8.4) and the closed forms of Theorem 8.4 (one marginal +
//!   full-domain secrets: `S = 2·size(C)`) and Theorem 8.5 (disjoint
//!   marginals + attribute secrets: `S = 2·maxᵢ size(Cᵢ)`),
//! * [`grid_constraints`] — disjoint range-count constraints on grid
//!   domains with distance-threshold secrets and the Theorem 8.6 closed
//!   form `S = 2·(maxcomp(Q) + 1)`.

pub mod error;
pub mod grid_constraints;
pub mod marginal;
pub mod policy_graph;
pub mod sparse;

pub use error::ConstraintError;
pub use grid_constraints::{rectangle_graph_components, thm_8_6_sensitivity};
pub use marginal::{thm_8_4_sensitivity, thm_8_5_sensitivity, Marginal};
pub use policy_graph::PolicyGraph;
pub use sparse::{check_sparse, LiftLower};
