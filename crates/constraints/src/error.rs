//! Errors for the constraint-analysis layer.

use std::fmt;

/// Errors raised by sparsity checking and policy-graph construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// The constraint set is not sparse w.r.t. the secret graph
    /// (Definition 8.2): some edge lifts or lowers more than one query.
    NotSparse {
        /// Offending edge endpoint `x`.
        x: usize,
        /// Offending edge endpoint `y`.
        y: usize,
        /// Queries lifted by `x → y`.
        lifted: Vec<usize>,
        /// Queries lowered by `x → y`.
        lowered: Vec<usize>,
    },
    /// A predicate covered the wrong domain size.
    PredicateSizeMismatch {
        /// Expected (domain) size.
        expected: usize,
        /// Got (predicate) size.
        got: usize,
    },
    /// Marginal attribute sets must be proper subsets of all attributes
    /// (`[C] ⊊ A` in Theorems 8.4/8.5).
    MarginalNotProper,
    /// Theorem 8.5 requires pairwise-disjoint marginal attribute sets.
    MarginalsOverlap {
        /// Indices of two overlapping marginals.
        first: usize,
        /// Second overlapping marginal.
        second: usize,
    },
    /// Theorem 8.6 requires pairwise-disjoint rectangles.
    RectanglesOverlap {
        /// Indices of two intersecting rectangles.
        first: usize,
        /// Second intersecting rectangle.
        second: usize,
    },
    /// The exhaustive edge scan would be too expensive; use a closed-form
    /// theorem instead.
    DomainTooLargeForScan {
        /// Domain size.
        size: usize,
        /// Configured cap on `|T|`.
        cap: usize,
    },
    /// A structured secret graph carries more actual edges than the scan's
    /// edge budget allows; use a closed-form theorem instead.
    TooManyEdgesForScan {
        /// Edge count at the point counting stopped (`cap + 1` when the
        /// exact count was cut short by the budget check).
        edges: u64,
        /// Edge budget (`scan_cap²`).
        cap: u64,
    },
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::NotSparse { x, y, lifted, lowered } => write!(
                f,
                "constraints are not sparse: edge ({x}, {y}) lifts {lifted:?} and lowers {lowered:?}"
            ),
            ConstraintError::PredicateSizeMismatch { expected, got } => {
                write!(f, "predicate covers {got} values, domain has {expected}")
            }
            ConstraintError::MarginalNotProper => {
                write!(f, "marginal must project onto a proper subset of attributes")
            }
            ConstraintError::MarginalsOverlap { first, second } => {
                write!(f, "marginals {first} and {second} share attributes")
            }
            ConstraintError::RectanglesOverlap { first, second } => {
                write!(f, "rectangles {first} and {second} intersect")
            }
            ConstraintError::DomainTooLargeForScan { size, cap } => write!(
                f,
                "domain size {size} exceeds the exhaustive-scan cap {cap}; use a closed-form theorem"
            ),
            ConstraintError::TooManyEdgesForScan { edges, cap } => write!(
                f,
                "secret graph has ≥ {edges} edges, over the scan budget {cap}; use a closed-form theorem"
            ),
        }
    }
}

impl std::error::Error for ConstraintError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = ConstraintError::NotSparse {
            x: 1,
            y: 2,
            lifted: vec![0, 3],
            lowered: vec![],
        };
        assert!(e.to_string().contains("not sparse"));
        assert!(ConstraintError::MarginalNotProper
            .to_string()
            .contains("proper subset"));
    }
}
