//! The client library: connection handling, pipelining, reconnect.

use crate::error::NetError;
use crate::proto::{
    ClientMessage, ServerMessage, WireError, WireMetric, WireRequest, PROTOCOL_VERSION,
};
use bf_engine::{Request, Response};
use bf_store::{frame_bytes, read_frame, FrameRead};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// An analyst's ledger as reported by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSnapshot {
    /// Total ε the session opened with.
    pub total: f64,
    /// ε spent so far (durable when the server has a store).
    pub spent: f64,
    /// ε remaining.
    pub remaining: f64,
    /// Requests served.
    pub served: u64,
}

/// A blocking, pipelining client for one serving process.
///
/// One `Client` owns one TCP connection. Requests are **pipelined**:
/// [`Client::submit`] sends a frame and returns its correlation id
/// immediately, so any number of requests can be outstanding;
/// [`Client::wait`] blocks for one specific answer, buffering any other
/// replies that arrive first. [`Client::call`] is the serial
/// convenience (submit + wait).
///
/// ## Reconnect and reattach
///
/// The client remembers every session it opened. After a connection
/// failure ([`NetError::Io`] / [`NetError::ConnectionLost`]),
/// [`Client::reconnect`] dials again, re-runs the handshake, and
/// reopens each remembered session through the server's recovery path
/// (`Engine::attach_session`): whether the serving process restarted
/// from its WAL or only the connection dropped, the analyst lands on
/// the same durable ledger, spent ε intact. Requests that were in
/// flight at the failure are reported lost, **not** resubmitted —
/// whether they were served (and charged) is unknowable from the
/// client, so the honest move is to surface the ids and let the caller
/// check [`Client::budget`] before retrying.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
    /// Correlation ids sent and not yet answered.
    pending: HashSet<u64>,
    /// Replies that arrived while waiting for a different id.
    ready: HashMap<u64, ServerMessage>,
    /// Sessions opened through this client: analyst → total ε bits
    /// (BTreeMap so reattach order is deterministic).
    sessions: BTreeMap<String, u64>,
}

impl Client {
    /// Connects and runs the version handshake.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the dial fails, [`NetError::Protocol`] /
    /// [`NetError::Remote`] when the handshake is refused.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Protocol("address resolved to nothing".into()))?;
        let stream = Self::dial(addr)?;
        let mut client = Client {
            addr,
            stream,
            buf: Vec::new(),
            next_id: 1,
            pending: HashSet::new(),
            ready: HashMap::new(),
            sessions: BTreeMap::new(),
        };
        client.handshake()?;
        Ok(client)
    }

    fn dial(addr: SocketAddr) -> Result<TcpStream, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn handshake(&mut self) -> Result<(), NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Hello {
            id,
            version: PROTOCOL_VERSION,
        })?;
        match self.recv_for(id)? {
            ServerMessage::Welcome { version, .. } if version == PROTOCOL_VERSION => Ok(()),
            ServerMessage::Welcome { version, .. } => Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            }),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Correlation ids currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send(&mut self, msg: &ClientMessage) -> Result<(), NetError> {
        self.stream.write_all(&frame_bytes(&msg.encode()))?;
        self.pending.insert(msg.id());
        Ok(())
    }

    /// Reads one message off the wire (blocking).
    fn recv_message(&mut self) -> Result<ServerMessage, NetError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match read_frame(&self.buf) {
                FrameRead::Complete { payload, consumed } => {
                    let msg = ServerMessage::decode(payload)
                        .ok_or_else(|| NetError::Protocol("undecodable server message".into()))?;
                    self.buf.drain(..consumed);
                    return Ok(msg);
                }
                FrameRead::Corrupt => {
                    return Err(NetError::Protocol("corrupt frame from server".into()))
                }
                FrameRead::Incomplete => {}
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                let mut in_flight: Vec<u64> = self.pending.drain().collect();
                in_flight.sort_unstable();
                return Err(NetError::ConnectionLost { in_flight });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Blocks until the reply for `id` arrives, buffering other replies.
    fn recv_for(&mut self, id: u64) -> Result<ServerMessage, NetError> {
        loop {
            if let Some(msg) = self.ready.remove(&id) {
                self.pending.remove(&id);
                return Ok(msg);
            }
            let msg = self.recv_message()?;
            if msg.id() == id {
                self.pending.remove(&id);
                return Ok(msg);
            }
            if self.pending.contains(&msg.id()) {
                self.ready.insert(msg.id(), msg);
            } else {
                return Err(NetError::Protocol(format!(
                    "reply for unknown correlation id {}",
                    msg.id()
                )));
            }
        }
    }

    /// Opens (or reattaches) a session for `analyst` with a total ε
    /// budget, returning the remaining ε — equal to `total` for a fresh
    /// session, less for a reattached one whose ledger already spent.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal (total mismatch on
    /// reattach, invalid ε), transport errors otherwise.
    pub fn open_session(&mut self, analyst: &str, total: f64) -> Result<f64, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::OpenSession {
            id,
            analyst: analyst.to_owned(),
            total_bits: total.to_bits(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::SessionAttached { remaining_bits, .. } => {
                self.sessions.insert(analyst.to_owned(), total.to_bits());
                Ok(f64::from_bits(remaining_bits))
            }
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected SessionAttached, got {other:?}"
            ))),
        }
    }

    /// Pipelines one request: sends it and returns the correlation id
    /// without waiting. Collect the answer later with [`Client::wait`].
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the send fails (reconnect to recover).
    pub fn submit(&mut self, analyst: &str, request: &Request) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Submit {
            id,
            analyst: analyst.to_owned(),
            request: WireRequest::from_request(request),
        })?;
        Ok(id)
    }

    /// Blocks for the answer to a pipelined submission.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal, transport errors
    /// otherwise.
    pub fn wait(&mut self, id: u64) -> Result<Response, NetError> {
        match self.recv_for(id)? {
            ServerMessage::Answer { response, .. } => Ok(response.to_response()),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected Answer, got {other:?}"
            ))),
        }
    }

    /// Serial convenience: submit one request and wait for its answer.
    ///
    /// # Errors
    ///
    /// As for [`Client::submit`] and [`Client::wait`].
    pub fn call(&mut self, analyst: &str, request: &Request) -> Result<Response, NetError> {
        let id = self.submit(analyst, request)?;
        self.wait(id)
    }

    /// Submits a batch answered as one correlated reply; compatible
    /// members (e.g. ranges sharing `(policy, data, ε)`) are folded into
    /// shared releases by the server's coalescing window.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors; per-member refusals come back in
    /// the slots.
    pub fn call_batch(
        &mut self,
        analyst: &str,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, WireError>>, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::SubmitBatch {
            id,
            analyst: analyst.to_owned(),
            requests: requests.iter().map(WireRequest::from_request).collect(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::BatchAnswer { slots, .. } => Ok(slots
                .into_iter()
                .map(|slot| slot.map(|resp| resp.to_response()))
                .collect()),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected BatchAnswer, got {other:?}"
            ))),
        }
    }

    /// Fetches an analyst's ledger snapshot.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] when the session is unknown or evicted.
    pub fn budget(&mut self, analyst: &str) -> Result<BudgetSnapshot, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Budget {
            id,
            analyst: analyst.to_owned(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::BudgetReport {
                total_bits,
                spent_bits,
                remaining_bits,
                served,
                ..
            } => Ok(BudgetSnapshot {
                total: f64::from_bits(total_bits),
                spent: f64::from_bits(spent_bits),
                remaining: f64::from_bits(remaining_bits),
                served,
            }),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected BudgetReport, got {other:?}"
            ))),
        }
    }

    /// Fetches the serving process's full metrics snapshot — every
    /// counter, gauge and histogram summary across the engine, store,
    /// scheduler and TCP layers, sorted by name. Render it with
    /// `bf_obs::render_prometheus` after converting each sample via
    /// [`WireMetric::to_snapshot`].
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal, transport errors
    /// otherwise.
    pub fn stats(&mut self) -> Result<Vec<WireMetric>, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Stats { id })?;
        match self.recv_for(id)? {
            ServerMessage::StatsReport { metrics, .. } => Ok(metrics),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected StatsReport, got {other:?}"
            ))),
        }
    }

    /// Re-dials after a connection failure, re-runs the handshake, and
    /// reopens every session this client had opened — the
    /// reconnect-and-reattach path. Returns `(analyst, remaining ε)` for
    /// each reattached session. Replies that were in flight at the
    /// failure are gone; ask [`Client::budget`] what was charged before
    /// resubmitting.
    ///
    /// # Errors
    ///
    /// Transport/handshake errors; [`NetError::Remote`] when a session
    /// no longer reattaches (e.g. total mismatch).
    pub fn reconnect(&mut self) -> Result<Vec<(String, f64)>, NetError> {
        self.stream = Self::dial(self.addr)?;
        self.buf.clear();
        self.pending.clear();
        self.ready.clear();
        self.handshake()?;
        let sessions: Vec<(String, u64)> =
            self.sessions.iter().map(|(a, &t)| (a.clone(), t)).collect();
        let mut reattached = Vec::with_capacity(sessions.len());
        for (analyst, total_bits) in sessions {
            let remaining = self.open_session(&analyst, f64::from_bits(total_bits))?;
            reattached.push((analyst, remaining));
        }
        Ok(reattached)
    }

    /// Orderly close: the server drains anything still in flight for
    /// this connection, acknowledges, and the socket shuts down.
    ///
    /// # Errors
    ///
    /// Transport errors; the connection is gone either way.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Goodbye { id })?;
        match self.recv_for(id)? {
            ServerMessage::Farewell { .. } => Ok(()),
            other => Err(NetError::Protocol(format!(
                "expected Farewell, got {other:?}"
            ))),
        }
    }
}
