//! The client library: connection handling, pipelining, reconnect.

use crate::error::NetError;
use crate::proto::{
    ClientMessage, ServerMessage, WireError, WireMetric, WireReplicaStats, WireRequest,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use bf_engine::{Request, Response};
use bf_obs::{ClusterEvent, TraceTree};
use bf_store::{frame_bytes, read_frame, FrameRead, LedgerEntry};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// An analyst's ledger as reported by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSnapshot {
    /// Total ε the session opened with.
    pub total: f64,
    /// ε spent so far (durable when the server has a store).
    pub spent: f64,
    /// ε remaining.
    pub remaining: f64,
    /// Requests served.
    pub served: u64,
}

/// One node's health as reported by [`Client::health`] — cheap enough
/// to poll from a load balancer, rich enough to decide eviction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Serving role: `"leader"`, `"follower"` or `"standalone"`.
    pub role: String,
    /// Current sequencing epoch (0 when standalone).
    pub epoch: u64,
    /// Largest log index executed through the node's engine.
    pub applied: u64,
    /// Worst replication lag visible from the node, in entries
    /// (refreshed from live state at probe time).
    pub lag: u64,
    /// Durable WAL segment count (live plus archived).
    pub wal_segments: u64,
    /// Queued submissions across every analyst queue.
    pub queue_depth: u64,
    /// Peer addresses that did not answer the node's status probe.
    pub unreachable: Vec<String>,
    /// Names of SLOs currently firing on the node.
    pub firing: Vec<String>,
}

/// How hard the client tries before giving up: attempt budget plus a
/// capped exponential backoff whose jitter is **deterministic** in
/// `seed` (via [`bf_chaos::ChaosRng`]), so a chaos test replaying the
/// same seed observes the same retry cadence.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Ceiling the doubling saturates at (before jitter).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            seed: 0x0062_666e_6574, // "bfnet"
        }
    }
}

impl RetryPolicy {
    /// The jittered wait before retry number `attempt` (0-based).
    fn wait(&self, rng: &mut bf_chaos::ChaosRng, attempt: u32) -> Duration {
        Duration::from_micros(bf_chaos::backoff_micros(
            rng,
            self.base_backoff.as_micros() as u64,
            self.max_backoff.as_micros() as u64,
            attempt,
        ))
    }
}

/// Whether an error is worth retrying: transport failures and timeouts
/// are; typed refusals, version mismatches and protocol violations are
/// deterministic and will simply repeat.
fn transient(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Io(_)
            | NetError::ConnectionLost { .. }
            | NetError::TimedOut
            | NetError::RetriesExhausted { .. }
    )
}

/// A blocking, pipelining client for one serving process.
///
/// One `Client` owns one TCP connection. Requests are **pipelined**:
/// [`Client::submit`] sends a frame and returns its correlation id
/// immediately, so any number of requests can be outstanding;
/// [`Client::wait`] blocks for one specific answer, buffering any other
/// replies that arrive first. [`Client::call`] is the serial
/// convenience (submit + wait).
///
/// ## Reconnect and reattach
///
/// The client remembers every session it opened. After a connection
/// failure ([`NetError::Io`] / [`NetError::ConnectionLost`]),
/// [`Client::reconnect`] dials again, re-runs the handshake, and
/// reopens each remembered session through the server's recovery path
/// (`Engine::attach_session`): whether the serving process restarted
/// from its WAL or only the connection dropped, the analyst lands on
/// the same durable ledger, spent ε intact. Requests that were in
/// flight at the failure are reported lost, **not** resubmitted —
/// whether they were served (and charged) is unknowable from the
/// client, so the honest move is to surface the ids and let the caller
/// check [`Client::budget`] before retrying.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    buf: Vec<u8>,
    next_id: u64,
    /// Correlation ids sent and not yet answered.
    pending: HashSet<u64>,
    /// Replies that arrived while waiting for a different id.
    ready: HashMap<u64, ServerMessage>,
    /// Sessions opened through this client: analyst → total ε bits
    /// (BTreeMap so reattach order is deterministic).
    sessions: BTreeMap<String, u64>,
    /// Session tokens the server issued on attach: analyst → token.
    /// Presented automatically on every `Submit` / `BudgetAudit`;
    /// refreshed whenever a session reattaches (a failed-over leader
    /// issues new tokens).
    tokens: BTreeMap<String, u64>,
    /// How long a blocking receive waits before [`NetError::TimedOut`].
    timeout: Option<Duration>,
    /// Next idempotency key. Seeded from the wall clock at connect so
    /// keys stay unique across client restarts against the same
    /// server-side reply cache.
    next_request_id: u64,
    /// The protocol version the `Hello`/`Welcome` handshake settled on
    /// — the server may negotiate down to an older dialect it still
    /// speaks; every frame then encodes/decodes at this version.
    negotiated: u16,
    /// Known cluster members, for redirect-on-[`WireError::NotLeader`]
    /// and dial-the-next-member failover. Empty for a single-server
    /// client.
    cluster: Vec<SocketAddr>,
    /// Index of the member `addr` currently points at.
    member: usize,
}

impl Client {
    /// Connects and runs the version handshake.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the dial fails, [`NetError::Protocol`] /
    /// [`NetError::Remote`] when the handshake is refused.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Protocol("address resolved to nothing".into()))?;
        let stream = Self::dial(addr)?;
        let next_request_id = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(1);
        let mut client = Client {
            addr,
            stream,
            buf: Vec::new(),
            next_id: 1,
            pending: HashSet::new(),
            ready: HashMap::new(),
            sessions: BTreeMap::new(),
            tokens: BTreeMap::new(),
            timeout: None,
            next_request_id,
            negotiated: PROTOCOL_VERSION,
            cluster: Vec::new(),
            member: 0,
        };
        client.handshake()?;
        Ok(client)
    }

    /// Connects to the first reachable member of a replica cluster and
    /// remembers the full member list: a later
    /// [`WireError::NotLeader`] refusal redirects to the hinted leader
    /// (or the next member), and a dead member's dial failure rotates
    /// to the next one on reconnect. Writes still need the leader —
    /// [`Client::call_idempotent`] follows redirects automatically —
    /// while reads (`budget`, `stats`, `traces`, `audit`) are served by
    /// whichever member this client landed on.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when `addrs` resolves to nothing; the
    /// last member's connect error when none are reachable.
    pub fn connect_cluster(addrs: impl ToSocketAddrs) -> Result<Client, NetError> {
        let members: Vec<SocketAddr> = addrs.to_socket_addrs()?.collect();
        if members.is_empty() {
            return Err(NetError::Protocol("cluster resolved to nothing".into()));
        }
        let mut last = None;
        for (i, &addr) in members.iter().enumerate() {
            match Self::connect(addr) {
                Ok(mut client) => {
                    client.cluster = members;
                    client.member = i;
                    return Ok(client);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one member tried"))
    }

    fn dial(addr: SocketAddr) -> Result<TcpStream, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn handshake(&mut self) -> Result<(), NetError> {
        // Until Welcome lands the connection speaks our own dialect
        // (Hello/Welcome/Refused encode identically at every version).
        self.negotiated = PROTOCOL_VERSION;
        let id = self.fresh_id();
        self.send(&ClientMessage::Hello {
            id,
            version: PROTOCOL_VERSION,
        })?;
        match self.recv_for(id)? {
            ServerMessage::Welcome { version, .. }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                self.negotiated = version;
                Ok(())
            }
            ServerMessage::Welcome { version, .. } => Err(NetError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            }),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected Welcome, got {other:?}"
            ))),
        }
    }

    /// The server address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The protocol version the handshake negotiated (≤
    /// [`PROTOCOL_VERSION`], ≥ [`MIN_PROTOCOL_VERSION`]).
    pub fn protocol_version(&self) -> u16 {
        self.negotiated
    }

    /// The session token the server issued for `analyst` on attach, if
    /// any (v4 servers only).
    pub fn session_token(&self, analyst: &str) -> Option<u64> {
        self.tokens.get(analyst).copied()
    }

    /// Correlation ids currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn fresh_request_id(&mut self) -> u64 {
        let rid = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1);
        rid
    }

    /// Caps how long a blocking receive waits before surfacing
    /// [`NetError::TimedOut`]; `None` (the default) blocks forever.
    ///
    /// A timed-out request may still be served — and charged — by the
    /// server. Retry it with the same idempotency key
    /// ([`Client::call_idempotent`] does) so the durable reply cache
    /// answers instead of a second charge.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when clearing the socket's read timeout fails.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.timeout = timeout;
        if timeout.is_none() {
            self.stream.set_read_timeout(None)?;
        }
        Ok(())
    }

    fn send(&mut self, msg: &ClientMessage) -> Result<(), NetError> {
        self.stream
            .write_all(&frame_bytes(&msg.encode_for(self.negotiated)))?;
        self.pending.insert(msg.id());
        Ok(())
    }

    /// Reads one message off the wire, blocking at most the configured
    /// [`Client::set_timeout`] (forever when unset).
    fn recv_message(&mut self) -> Result<ServerMessage, NetError> {
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match read_frame(&self.buf) {
                FrameRead::Complete { payload, consumed } => {
                    let msg = ServerMessage::decode_for(payload, self.negotiated)
                        .ok_or_else(|| NetError::Protocol("undecodable server message".into()))?;
                    self.buf.drain(..consumed);
                    return Ok(msg);
                }
                FrameRead::Corrupt => {
                    return Err(NetError::Protocol("corrupt frame from server".into()))
                }
                FrameRead::Incomplete => {}
            }
            if let Some(deadline) = deadline {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(NetError::TimedOut);
                }
                self.stream.set_read_timeout(Some(remaining))?;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    let mut in_flight: Vec<u64> = self.pending.drain().collect();
                    in_flight.sort_unstable();
                    return Err(NetError::ConnectionLost { in_flight });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(NetError::TimedOut)
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Blocks until the reply for `id` arrives, buffering other replies.
    fn recv_for(&mut self, id: u64) -> Result<ServerMessage, NetError> {
        loop {
            if let Some(msg) = self.ready.remove(&id) {
                self.pending.remove(&id);
                return Ok(msg);
            }
            let msg = self.recv_message()?;
            if msg.id() == id {
                self.pending.remove(&id);
                return Ok(msg);
            }
            if self.pending.contains(&msg.id()) {
                self.ready.insert(msg.id(), msg);
            } else {
                return Err(NetError::Protocol(format!(
                    "reply for unknown correlation id {}",
                    msg.id()
                )));
            }
        }
    }

    /// Opens (or reattaches) a session for `analyst` with a total ε
    /// budget, returning the remaining ε — equal to `total` for a fresh
    /// session, less for a reattached one whose ledger already spent.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal (total mismatch on
    /// reattach, invalid ε), transport errors otherwise.
    pub fn open_session(&mut self, analyst: &str, total: f64) -> Result<f64, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::OpenSession {
            id,
            analyst: analyst.to_owned(),
            total_bits: total.to_bits(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::SessionAttached {
                remaining_bits,
                token,
                ..
            } => {
                self.sessions.insert(analyst.to_owned(), total.to_bits());
                if token != 0 {
                    self.tokens.insert(analyst.to_owned(), token);
                }
                Ok(f64::from_bits(remaining_bits))
            }
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected SessionAttached, got {other:?}"
            ))),
        }
    }

    /// Pipelines one request: sends it and returns the correlation id
    /// without waiting. Collect the answer later with [`Client::wait`].
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the send fails (reconnect to recover).
    pub fn submit(&mut self, analyst: &str, request: &Request) -> Result<u64, NetError> {
        self.submit_tagged(analyst, request, None, None)
    }

    /// Pipelines one request carrying an optional idempotency key and
    /// an optional server-side deadline (µs the request may wait
    /// undispatched before the scheduler refuses it, charge-free).
    ///
    /// A keyed request the server has already answered replays its
    /// durable answer bit-for-bit at zero additional ε — the primitive
    /// [`Client::call_idempotent`] builds its retry loop on.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the send fails (reconnect to recover).
    pub fn submit_tagged(
        &mut self,
        analyst: &str,
        request: &Request,
        request_id: Option<u64>,
        deadline_micros: Option<u64>,
    ) -> Result<u64, NetError> {
        self.submit_traced(analyst, request, request_id, deadline_micros, None)
    }

    /// [`Client::submit_tagged`] carrying a client-assigned trace id.
    ///
    /// A `Some(tid)` asks the server to record a request-scoped trace
    /// tree — decode, queue, schedule, coalesce, WAL-commit, release and
    /// reply spans — under that id, retrievable later via
    /// [`Client::traces`]. The id is echoed back on the `Answer` (or
    /// `Refused`) frame so replies can be matched to trace trees without
    /// extra bookkeeping. Tracing is a pure observability side channel:
    /// answers are byte-identical with or without it.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the send fails (reconnect to recover).
    pub fn submit_traced(
        &mut self,
        analyst: &str,
        request: &Request,
        request_id: Option<u64>,
        deadline_micros: Option<u64>,
        trace_id: Option<u64>,
    ) -> Result<u64, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Submit {
            id,
            analyst: analyst.to_owned(),
            request: WireRequest::from_request(request),
            request_id,
            deadline_micros,
            trace_id,
            token: self.tokens.get(analyst).copied(),
        })?;
        Ok(id)
    }

    /// Blocks for the answer to a pipelined submission.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal, transport errors
    /// otherwise.
    pub fn wait(&mut self, id: u64) -> Result<Response, NetError> {
        match self.recv_for(id)? {
            ServerMessage::Answer { response, .. } => Ok(response.to_response()),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected Answer, got {other:?}"
            ))),
        }
    }

    /// Serial convenience: submit one request and wait for its answer.
    ///
    /// # Errors
    ///
    /// As for [`Client::submit`] and [`Client::wait`].
    pub fn call(&mut self, analyst: &str, request: &Request) -> Result<Response, NetError> {
        let id = self.submit(analyst, request)?;
        self.wait(id)
    }

    /// An exactly-once call: stamps the request with a fresh durable
    /// idempotency key and retries transport failures
    /// ([`NetError::Io`] / [`NetError::ConnectionLost`] /
    /// [`NetError::TimedOut`]) by reconnecting, backing off
    /// (deterministic jitter from `policy.seed`), and resubmitting
    /// **the same key**. However the first attempt died — before the
    /// server saw it, after it charged but before the reply, or with
    /// the reply lost on the wire — the retry either performs the work
    /// once or replays the durable answer bit-for-bit at zero
    /// additional ε.
    ///
    /// Typed refusals ([`NetError::Remote`]) and protocol errors are
    /// deterministic and surface immediately, unretried — with one
    /// exception: [`WireError::NotLeader`] from a cluster follower
    /// redirects this client at the hinted leader (or the next known
    /// member) and retries, so callers keep exactly-once semantics
    /// across a leader failover.
    ///
    /// # Errors
    ///
    /// [`NetError::RetriesExhausted`] once `policy.max_attempts` all
    /// failed transiently; the non-transient errors above as-is.
    pub fn call_idempotent(
        &mut self,
        analyst: &str,
        request: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, NetError> {
        let rid = self.fresh_request_id();
        let attempts = policy.max_attempts.max(1);
        let mut rng = bf_chaos::ChaosRng::new(policy.seed ^ rid);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.wait(&mut rng, attempt - 1));
                match self.reconnect_with(policy) {
                    Ok(_) => {}
                    Err(e) if transient(&e) => {
                        self.advance_member();
                        last = Some(e);
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
            let outcome = self
                .submit_tagged(analyst, request, Some(rid), None)
                .and_then(|id| self.wait(id));
            match outcome {
                Ok(response) => return Ok(response),
                Err(NetError::Remote(WireError::NotLeader { leader }))
                    if self.redirect(&leader) =>
                {
                    last = Some(NetError::Remote(WireError::NotLeader { leader }));
                }
                Err(e) if transient(&e) => {
                    self.advance_member();
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(NetError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Re-points the next dial at the leader a `NotLeader` refusal
    /// hinted (or, with an empty hint, at the next cluster member).
    /// `false` when there is nowhere else to go — the refusal then
    /// surfaces as-is.
    fn redirect(&mut self, leader: &str) -> bool {
        if let Ok(mut addrs) = leader.to_socket_addrs() {
            if let Some(addr) = addrs.next() {
                self.addr = addr;
                if let Some(i) = self.cluster.iter().position(|&a| a == addr) {
                    self.member = i;
                }
                return true;
            }
        }
        self.advance_member()
    }

    /// Rotates `addr` to the next cluster member (no-op without a
    /// cluster list). `true` when the target actually changed.
    fn advance_member(&mut self) -> bool {
        if self.cluster.len() > 1 {
            self.member = (self.member + 1) % self.cluster.len();
            self.addr = self.cluster[self.member];
            true
        } else {
            false
        }
    }

    /// Submits a batch answered as one correlated reply; compatible
    /// members (e.g. ranges sharing `(policy, data, ε)`) are folded into
    /// shared releases by the server's coalescing window.
    ///
    /// # Errors
    ///
    /// Transport and protocol errors; per-member refusals come back in
    /// the slots.
    pub fn call_batch(
        &mut self,
        analyst: &str,
        requests: &[Request],
    ) -> Result<Vec<Result<Response, WireError>>, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::SubmitBatch {
            id,
            analyst: analyst.to_owned(),
            requests: requests.iter().map(WireRequest::from_request).collect(),
            token: self.tokens.get(analyst).copied(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::BatchAnswer { slots, .. } => Ok(slots
                .into_iter()
                .map(|slot| slot.map(|resp| resp.to_response()))
                .collect()),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected BatchAnswer, got {other:?}"
            ))),
        }
    }

    /// Fetches an analyst's ledger snapshot.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] when the session is unknown or evicted.
    pub fn budget(&mut self, analyst: &str) -> Result<BudgetSnapshot, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Budget {
            id,
            analyst: analyst.to_owned(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::BudgetReport {
                total_bits,
                spent_bits,
                remaining_bits,
                served,
                ..
            } => Ok(BudgetSnapshot {
                total: f64::from_bits(total_bits),
                spent: f64::from_bits(spent_bits),
                remaining: f64::from_bits(remaining_bits),
                served,
            }),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected BudgetReport, got {other:?}"
            ))),
        }
    }

    /// Fetches the serving process's full metrics snapshot — every
    /// counter, gauge and histogram summary across the engine, store,
    /// scheduler and TCP layers, sorted by name. Render it with
    /// `bf_obs::render_prometheus` after converting each sample via
    /// [`WireMetric::to_snapshot`].
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal, transport errors
    /// otherwise.
    pub fn stats(&mut self) -> Result<Vec<WireMetric>, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Stats { id })?;
        match self.recv_for(id)? {
            ServerMessage::StatsReport { metrics, .. } => Ok(metrics),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected StatsReport, got {other:?}"
            ))),
        }
    }

    /// Fetches the serving process's retained trace trees — the
    /// slowest-per-stage exemplars plus the most recent completions the
    /// server's bounded trace buffer holds. Each tree carries the
    /// client-assigned [`bf_obs::TraceId`] from
    /// [`Client::submit_traced`], the analyst, the end-to-end duration
    /// and the per-stage spans (a coalesced release span shares a link
    /// id across every waiter's tree it answered).
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] for a typed refusal, transport errors
    /// otherwise.
    pub fn traces(&mut self) -> Result<Vec<TraceTree>, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Traces { id })?;
        match self.recv_for(id)? {
            ServerMessage::TraceReport { traces, .. } => Ok(traces),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected TraceReport, got {other:?}"
            ))),
        }
    }

    /// Refuses cluster-plane calls on a connection negotiated below
    /// protocol v5 — the server would kill the connection on the
    /// undecodable frame, so fail cleanly here instead.
    fn require_v5(&self, what: &str) -> Result<(), NetError> {
        if self.negotiated >= 5 {
            Ok(())
        } else {
            Err(NetError::Protocol(format!(
                "{what} needs protocol v5; this connection negotiated v{}",
                self.negotiated
            )))
        }
    }

    /// Fetches a federated scrape of the whole cluster in one call: the
    /// serving node snapshots itself and fans `Stats` probes to every
    /// configured peer over the replication peer port, reporting each
    /// member exactly once — unreachable members included, flagged
    /// rather than silently dropped. Against a standalone server the
    /// report has one member.
    ///
    /// Each member's samples come back with unqualified names; merge
    /// them into one `replica`-labeled series set with
    /// `bf_obs::merge_labeled_snapshots`:
    ///
    /// ```ignore
    /// let merged = bf_obs::merge_labeled_snapshots(
    ///     "replica",
    ///     client
    ///         .cluster_stats()?
    ///         .into_iter()
    ///         .filter(|r| r.reachable)
    ///         .map(|r| (r.node, r.metrics.iter().map(|m| m.to_snapshot()).collect()))
    ///         .collect(),
    /// );
    /// ```
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the connection negotiated below v5,
    /// [`NetError::Remote`] for a typed refusal, transport errors
    /// otherwise.
    pub fn cluster_stats(&mut self) -> Result<Vec<WireReplicaStats>, NetError> {
        self.require_v5("cluster_stats")?;
        let id = self.fresh_id();
        self.send(&ClientMessage::ClusterStats { id })?;
        match self.recv_for(id)? {
            ServerMessage::ClusterStatsReport { replicas, .. } => Ok(replicas),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected ClusterStatsReport, got {other:?}"
            ))),
        }
    }

    /// Probes the node's health: role, epoch, replication position and
    /// lag (refreshed from live state, not the last stream receipt),
    /// WAL depth, queue depth, unreachable peers and the firing-SLO
    /// list. Served even when reads are refused for staleness — a
    /// lagging replica must still report that it is lagging.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the connection negotiated below v5;
    /// transport errors otherwise.
    pub fn health(&mut self) -> Result<HealthSnapshot, NetError> {
        self.require_v5("health")?;
        let id = self.fresh_id();
        self.send(&ClientMessage::Health { id })?;
        match self.recv_for(id)? {
            ServerMessage::HealthReport {
                role,
                epoch,
                applied,
                lag,
                wal_segments,
                queue_depth,
                unreachable,
                firing,
                ..
            } => Ok(HealthSnapshot {
                role,
                epoch,
                applied,
                lag,
                wal_segments,
                queue_depth,
                unreachable,
                firing,
            }),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected HealthReport, got {other:?}"
            ))),
        }
    }

    /// Subscribes this connection to the node's live event bus and
    /// returns an iterator-style handle over the pushed
    /// [`bf_obs::ClusterEvent`]s — pipeline stage completions, trace
    /// retentions, replication role/epoch changes and SLO firing/ok
    /// flips. The server-side queue is bounded: a slow consumer sees
    /// gaps in the event sequence numbers, never a stalled server.
    ///
    /// The handle borrows the client exclusively; dedicate a
    /// connection to watching (the subscription lives until the
    /// connection closes). Because each server acceptor owns one
    /// connection at a time, a long-lived watch occupies an acceptor
    /// slot for its whole lifetime — size `NetConfig::acceptors` to
    /// cover expected watchers *plus* serving clients, or idle
    /// watchers will starve new connections in the kernel backlog.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the connection negotiated below v5;
    /// transport errors otherwise.
    pub fn watch(&mut self) -> Result<WatchHandle<'_>, NetError> {
        self.require_v5("watch")?;
        let id = self.fresh_id();
        self.send(&ClientMessage::Watch { id })?;
        Ok(WatchHandle { client: self, id })
    }

    /// Fetches an analyst's full ε-provenance: every `Charged` and
    /// `Replied` ledger record the serving process's WAL holds for them,
    /// archived segments included, in WAL order. Each entry carries the
    /// record's global WAL sequence position, the ε amount, the charge
    /// label and a content-derived fingerprint — enough to audit where
    /// every micro-ε of the budget went and cross-check it against
    /// [`Client::budget`].
    ///
    /// The server only serves this to a connection that attached the
    /// analyst's session — call [`Client::open_session`] (or let
    /// [`Client::reconnect`] reattach) on this client first.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] when this connection never attached the
    /// analyst's session, when the serving process has no durable
    /// store, or when the scan fails; transport errors otherwise.
    pub fn audit(&mut self, analyst: &str) -> Result<Vec<LedgerEntry>, NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::BudgetAudit {
            id,
            analyst: analyst.to_owned(),
            token: self.tokens.get(analyst).copied(),
        })?;
        match self.recv_for(id)? {
            ServerMessage::AuditReport { entries, .. } => Ok(entries),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!(
                "expected AuditReport, got {other:?}"
            ))),
        }
    }

    /// Re-dials after a connection failure, re-runs the handshake, and
    /// reopens every session this client had opened — the
    /// reconnect-and-reattach path. Returns `(analyst, remaining ε)` for
    /// each reattached session. Replies that were in flight at the
    /// failure are gone; ask [`Client::budget`] what was charged before
    /// resubmitting.
    ///
    /// # Errors
    ///
    /// Transport/handshake errors after the default policy's attempts
    /// run out ([`NetError::RetriesExhausted`]); [`NetError::Remote`]
    /// when a session no longer reattaches (e.g. total mismatch).
    pub fn reconnect(&mut self) -> Result<Vec<(String, f64)>, NetError> {
        self.reconnect_with(&RetryPolicy::default())
    }

    /// [`Client::reconnect`] under an explicit policy: dials are
    /// retried with capped exponential backoff and deterministic
    /// jitter until one succeeds or `policy.max_attempts` are spent.
    /// Deterministic refusals — a typed [`NetError::Remote`] on
    /// reattach, a version mismatch — surface immediately; retrying
    /// them would only repeat the refusal.
    ///
    /// # Errors
    ///
    /// As for [`Client::reconnect`].
    pub fn reconnect_with(&mut self, policy: &RetryPolicy) -> Result<Vec<(String, f64)>, NetError> {
        let attempts = policy.max_attempts.max(1);
        let mut rng = bf_chaos::ChaosRng::new(policy.seed);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.wait(&mut rng, attempt - 1));
            }
            match self.reconnect_once() {
                Ok(reattached) => return Ok(reattached),
                // Reattaching on a follower is refused with NotLeader:
                // follow the redirect and dial again, like any other
                // failed attempt.
                Err(NetError::Remote(WireError::NotLeader { leader }))
                    if self.redirect(&leader) =>
                {
                    last = Some(NetError::Remote(WireError::NotLeader { leader }));
                }
                Err(e @ (NetError::Remote(_) | NetError::VersionMismatch { .. })) => return Err(e),
                Err(e) => {
                    // A dead member refuses the dial outright — rotate
                    // to the next one before the retry.
                    self.advance_member();
                    last = Some(e);
                }
            }
        }
        Err(NetError::RetriesExhausted {
            attempts,
            last: Box::new(last.expect("at least one attempt ran")),
        })
    }

    /// Re-points the client at `addr` — a serving process restarted on
    /// a different port — then reconnects and reattaches as
    /// [`Client::reconnect`] does.
    ///
    /// # Errors
    ///
    /// As for [`Client::reconnect`], plus [`NetError::Protocol`] when
    /// `addr` resolves to nothing.
    pub fn reconnect_to(
        &mut self,
        addr: impl ToSocketAddrs,
    ) -> Result<Vec<(String, f64)>, NetError> {
        self.addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Protocol("address resolved to nothing".into()))?;
        self.reconnect()
    }

    fn reconnect_once(&mut self) -> Result<Vec<(String, f64)>, NetError> {
        self.stream = Self::dial(self.addr)?;
        self.buf.clear();
        self.pending.clear();
        self.ready.clear();
        self.handshake()?;
        let sessions: Vec<(String, u64)> =
            self.sessions.iter().map(|(a, &t)| (a.clone(), t)).collect();
        let mut reattached = Vec::with_capacity(sessions.len());
        for (analyst, total_bits) in sessions {
            let remaining = self.open_session(&analyst, f64::from_bits(total_bits))?;
            reattached.push((analyst, remaining));
        }
        Ok(reattached)
    }

    /// Orderly close: the server drains anything still in flight for
    /// this connection, acknowledges, and the socket shuts down.
    ///
    /// # Errors
    ///
    /// Transport errors; the connection is gone either way.
    pub fn goodbye(mut self) -> Result<(), NetError> {
        let id = self.fresh_id();
        self.send(&ClientMessage::Goodbye { id })?;
        match self.recv_for(id)? {
            ServerMessage::Farewell { .. } => Ok(()),
            other => Err(NetError::Protocol(format!(
                "expected Farewell, got {other:?}"
            ))),
        }
    }
}

/// A live event subscription opened by [`Client::watch`]: pull pushed
/// events off the connection one at a time. Dropping the handle stops
/// *reading*; the server keeps the subscription until the connection
/// closes (stray events buffered meanwhile are discarded harmlessly).
#[derive(Debug)]
pub struct WatchHandle<'a> {
    client: &'a mut Client,
    id: u64,
}

impl WatchHandle<'_> {
    /// The watch's correlation id (echoed on every pushed event
    /// frame).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks up to `timeout` for the next pushed event. `Ok(None)`
    /// means the window elapsed quietly — poll again. Replies to
    /// requests that were in flight before the watch opened are
    /// buffered for their waiters, not dropped.
    ///
    /// # Errors
    ///
    /// Transport errors ([`NetError::ConnectionLost`] when the server
    /// goes away mid-watch); [`NetError::Protocol`] on an unexpected
    /// frame.
    pub fn next(&mut self, timeout: Duration) -> Result<Option<ClusterEvent>, NetError> {
        let deadline = Instant::now() + timeout;
        let saved = self.client.timeout;
        let outcome = loop {
            // A stray event buffered by an earlier interleaved receive.
            if let Some(msg) = self.client.ready.remove(&self.id) {
                break Self::to_event(msg);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break Ok(None);
            }
            self.client.timeout = Some(remaining);
            match self.client.recv_message() {
                Ok(msg) if msg.id() == self.id => break Self::to_event(msg),
                Ok(msg) if self.client.pending.contains(&msg.id()) => {
                    self.client.ready.insert(msg.id(), msg);
                }
                Ok(msg) => {
                    break Err(NetError::Protocol(format!(
                        "reply for unknown correlation id {}",
                        msg.id()
                    )))
                }
                Err(NetError::TimedOut) => break Ok(None),
                Err(e) => break Err(e),
            }
        };
        self.client.timeout = saved;
        outcome
    }

    fn to_event(msg: ServerMessage) -> Result<Option<ClusterEvent>, NetError> {
        match msg {
            ServerMessage::Event {
                seq,
                kind,
                detail,
                value,
                ..
            } => Ok(Some(ClusterEvent {
                seq,
                kind: kind.into(),
                detail,
                value,
            })),
            ServerMessage::Refused { error, .. } => Err(NetError::Remote(error)),
            other => Err(NetError::Protocol(format!("expected Event, got {other:?}"))),
        }
    }
}
