//! The TCP front-end: accept, decode, bridge into `bf-server` tickets.

use crate::proto::{
    ClientMessage, ServerMessage, WireError, WireEventKind, WireMetric, WireReplicaStats,
    WireResponse, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use bf_obs::{
    BusSubscriber, ClusterEventKind, Counter, Histogram, MetricSnapshot, Registry, SloEngine,
    SloSpec, Stage, TraceContext, TraceId, TraceTimer,
};
use bf_server::{DriverHandle, Server, ServerError, ServerStats, Ticket};
use bf_store::{fnv1a, frame_bytes, read_frame, FrameRead};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The replication layer's interposition points. One trait (held behind
/// a stable `Arc` in [`ServerRole::Replica`]) so a replica can change
/// behaviour — follower refusing writes, then promoting to leader and
/// sequencing them — without the net layer re-wiring anything: the hook
/// decides per call.
pub trait ReplicaHook: Send + Sync {
    /// Sequences a write into the replicated log, returning a ticket
    /// that resolves once the entry is quorum-durable **and** executed
    /// locally. A follower refuses with [`WireError::NotLeader`].
    ///
    /// Client deadlines are ignored under replication: a deadline is
    /// wall-clock dependent, and a charge that one replica drops on
    /// timeout while another executes it would fork the ledgers.
    fn sequence_submit(
        &self,
        analyst: &str,
        request_id: Option<u64>,
        request: bf_engine::Request,
    ) -> Result<Ticket, WireError>;

    /// Sequences a session open/reattach. Session totals go through the
    /// log too — every replica must agree on each analyst's budget, so
    /// an open is an ordered log entry like any charge. Blocks until
    /// the entry is quorum-durable and applied locally, returning the
    /// remaining ε; rare enough (once per analyst per connection) that
    /// blocking an acceptor is acceptable.
    fn sequence_open(&self, analyst: &str, total_bits: u64) -> Result<f64, WireError>;

    /// `Some(error)` when local reads must be refused right now —
    /// typically [`WireError::StaleReplica`] while this replica lags
    /// the commit index past its configured staleness bound. `None`
    /// serves `Budget` / `Stats` / `Traces` / `BudgetAudit` from the
    /// local engine, which is how followers scale reads out.
    fn refuse_read(&self) -> Option<WireError>;

    /// Refreshes hook-owned gauges (log index, lag, epoch, role) from
    /// live node state. Called at scrape and health-probe time so the
    /// reported values are current rather than whatever the last
    /// replication-stream receipt left behind. Default: no-op.
    fn refresh_observability(&self) {}

    /// This node's stable identity — the `replica` label its samples
    /// carry in a federated scrape (conventionally the replication
    /// peer address). Only consulted under [`ServerRole::Replica`];
    /// standalone nodes are labeled by [`NetConfig::node_name`].
    fn node_name(&self) -> String {
        "replica".into()
    }

    /// Scrapes every configured peer's metrics over the replication
    /// peer port: one entry per peer, in configured order, with
    /// unreachable peers reported (`reachable: false`, no samples)
    /// rather than silently dropped. Default: no peers.
    fn scrape_peers(&self) -> Vec<PeerScrape> {
        Vec::new()
    }

    /// Role, epoch, replication position and peer reachability for a
    /// `Health` probe. Probing may refresh cluster-level gauges (the
    /// fleet lag gauge an SLO reads), so the caller snapshots metrics
    /// *after* this. `None` (the default) reports a standalone node.
    fn health(&self) -> Option<ReplicaHealth> {
        None
    }
}

/// One cluster member's slice of a federated scrape, as returned by
/// [`ReplicaHook::scrape_peers`].
#[derive(Debug, Clone)]
pub struct PeerScrape {
    /// The member's node label (its replication peer address).
    pub node: String,
    /// Whether the member answered the probe.
    pub reachable: bool,
    /// The member's metric snapshot — unqualified names; the wire
    /// layer adds no label, the *client* merges with
    /// `bf_obs::merge_labeled_snapshots`. Empty when unreachable.
    pub metrics: Vec<MetricSnapshot>,
}

/// Replication-side identity and position for a `Health` probe, as
/// returned by [`ReplicaHook::health`].
#[derive(Debug, Clone)]
pub struct ReplicaHealth {
    /// `"leader"` or `"follower"`.
    pub role: String,
    /// Current sequencing epoch.
    pub epoch: u64,
    /// Largest log index executed through the local engine.
    pub applied: u64,
    /// Worst replication lag visible from this node, in entries: the
    /// local commit-to-apply gap, or (on a node with configured peers)
    /// the largest durable-high-water-to-peer-applied gap, with an
    /// unreachable peer counted as applied 0.
    pub lag: u64,
    /// Peer addresses that did not answer a status probe.
    pub unreachable: Vec<String>,
}

/// How this process's client port routes work.
#[derive(Clone, Default)]
pub enum ServerRole {
    /// Single-node serving: submissions feed the in-process scheduler
    /// directly. The default.
    #[default]
    Standalone,
    /// Member of a replicated cluster: writes are sequenced through the
    /// hook (refused with [`WireError::NotLeader`] on a follower),
    /// reads are gated on replication lag via
    /// [`ReplicaHook::refuse_read`].
    Replica(Arc<dyn ReplicaHook>),
}

impl std::fmt::Debug for ServerRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerRole::Standalone => f.write_str("Standalone"),
            ServerRole::Replica(_) => f.write_str("Replica(..)"),
        }
    }
}

/// Tuning knobs for the TCP front-end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Size of the acceptor pool. Each acceptor owns one connection at a
    /// time, so this bounds the number of concurrently **served**
    /// connections; further clients queue in the kernel backlog until an
    /// acceptor frees up.
    pub acceptors: usize,
    /// Per-connection bound on outstanding requests (pipelining window).
    /// A submit past the window is refused over the wire with
    /// [`WireError::WindowFull`] — per-connection backpressure layered
    /// on top of the server's per-analyst `QueueFull`.
    pub max_in_flight: usize,
    /// Cadence of the background scheduler driver ticking the inner
    /// [`Server`].
    pub tick_interval: Duration,
    /// How long a connection handler blocks waiting for socket bytes
    /// before polling its outstanding tickets for completions.
    pub poll_interval: Duration,
    /// Deterministic fault injection for the reply path: each **answer
    /// frame** (`Answer` / `BatchAnswer`) advances the plan's op clock,
    /// and a due fault drops the connection, truncates the frame
    /// mid-write, or delays it — the failure modes a client's retry
    /// logic must survive. Injections count into
    /// `faults_injected{layer="net"}`. `None` (the default) injects
    /// nothing.
    pub fault_plan: Option<Arc<bf_chaos::NetPlan>>,
    /// Routing for writes and reads: [`ServerRole::Standalone`] (the
    /// default) feeds the scheduler directly; [`ServerRole::Replica`]
    /// interposes the replication layer's [`ReplicaHook`].
    pub role: ServerRole,
    /// The `replica` label a standalone node's samples carry in a
    /// `ClusterStats` report (replicas use
    /// [`ReplicaHook::node_name`] instead).
    pub node_name: String,
    /// Declarative SLOs evaluated at every `Stats` / `ClusterStats` /
    /// `Health` scrape — passive, no background thread: each scrape
    /// feeds one sample into the sliding window, updates the `slo_*`
    /// gauges, and publishes firing/ok flips on the live event bus.
    /// Empty (the default) skips evaluation entirely.
    pub slos: Vec<SloSpec>,
    /// Sliding-window length for SLO rate objectives, in scrapes
    /// (minimum 2).
    pub slo_window: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            acceptors: 8,
            max_in_flight: 64,
            tick_interval: Duration::from_micros(500),
            poll_interval: Duration::from_micros(200),
            fault_plan: None,
            role: ServerRole::Standalone,
            node_name: "standalone".into(),
            slos: Vec::new(),
            slo_window: 8,
        }
    }
}

/// TCP-layer instruments, registered on the engine's shared registry so
/// one `StatsReport` covers every layer. Pure side channel: nothing here
/// feeds scheduling, admission or noise.
#[derive(Debug)]
struct NetCounters {
    obs: Arc<Registry>,
    connections: Counter,
    frames_in: Counter,
    frames_out: Counter,
    protocol_errors: Counter,
    window_refusals: Counter,
    disconnects_mid_request: Counter,
    /// Chaos-plan faults fired on the reply path (same label-in-name
    /// convention as the store's `faults_injected{layer="store"}`).
    faults_injected: Counter,
    /// Duration of handler-loop passes that made progress (flushed a
    /// reply, read bytes, or dispatched a frame).
    tick_busy_ns: Histogram,
    /// Duration of passes that found nothing to do (dominated by the
    /// read timeout / drain sleep).
    tick_idle_ns: Histogram,
    /// Submit-to-reply-flushed wall time per request, as observed by the
    /// wire layer (queue wait + schedule + release + encode included).
    request_ns: Histogram,
    /// In-flight requests on a connection at each accepted submit.
    window_occupancy: Histogram,
}

impl NetCounters {
    fn new(obs: Arc<Registry>) -> Self {
        Self {
            connections: obs.counter("net_connections_total"),
            frames_in: obs.counter("net_frames_in_total"),
            frames_out: obs.counter("net_frames_out_total"),
            protocol_errors: obs.counter("net_protocol_errors_total"),
            window_refusals: obs.counter("net_window_refusals_total"),
            disconnects_mid_request: obs.counter("net_disconnects_mid_request_total"),
            faults_injected: obs.counter("faults_injected{layer=\"net\"}"),
            tick_busy_ns: obs.histogram("net_tick_busy_ns"),
            tick_idle_ns: obs.histogram("net_tick_idle_ns"),
            request_ns: obs.histogram("net_request_ns"),
            window_occupancy: obs.histogram("net_window_occupancy"),
            obs,
        }
    }
}

/// Counter snapshot for the TCP layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Frames decoded from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Connections killed for protocol violations (corrupt frames,
    /// undecodable messages, handshake misuse).
    pub protocol_errors: u64,
    /// Submissions refused because the connection's in-flight window was
    /// full.
    pub window_refusals: u64,
    /// Connections that dropped with requests still in flight (their
    /// tickets were released — undispatched work cancels without an ε
    /// charge).
    pub disconnects_mid_request: u64,
}

/// The serving process's network face: a `TcpListener` whose accepted
/// connections speak the [`crate::proto`] protocol and feed the
/// [`Server`]'s submission queues, so every fairness, coalescing,
/// admission and durability guarantee of the in-process stack applies
/// unchanged to remote analysts.
///
/// ```text
/// client processes ──TCP──► acceptor pool ──decode──► Server::submit ──► tickets ──encode──► replies
/// ```
///
/// The listener is non-blocking; a fixed pool of acceptor threads each
/// serve one connection at a time (bounded concurrency), polling between
/// socket reads and ticket completions so any number of pipelined
/// requests per connection make progress without an executor. Dropping a
/// connection mid-request releases its tickets: work not yet dispatched
/// is cancelled by the scheduler's sweep — no queue-slot leak, no ε
/// charge for answers nobody can read.
pub struct NetServer {
    server: Arc<Server>,
    addr: SocketAddr,
    closing: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    acceptors: Vec<std::thread::JoinHandle<()>>,
    driver: Option<DriverHandle>,
    /// Session tokens issued by this process: analyst → token. Shared
    /// across connections so a token survives reconnects (stable for
    /// the process lifetime), per-process so a failover's new leader
    /// issues fresh ones on reattach.
    tokens: Arc<Mutex<HashMap<String, u64>>>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl NetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port, then
    /// [`NetServer::local_addr`]), spawns the acceptor pool and a
    /// background driver ticking `server`.
    ///
    /// # Errors
    ///
    /// [`std::io::Error`] when the listener cannot bind.
    pub fn bind(
        addr: impl ToSocketAddrs,
        server: Arc<Server>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let closing = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::new(Arc::clone(server.engine().obs())));
        // Token seed: wall clock ⊕ pid. Tokens are an authentication
        // side channel — they never feed answers, noise or ordering, so
        // nondeterminism here cannot fork replicated ledgers.
        let token_seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x626c_6f77_6669_7368)
            ^ u64::from(std::process::id());
        let tokens: Arc<Mutex<HashMap<String, u64>>> = Arc::new(Mutex::new(HashMap::new()));
        // One shared SLO engine per serving process (scrapes from every
        // connection feed the same sliding window). Absent entirely
        // when no SLOs are configured — the common path pays nothing.
        let slo: Option<Arc<Mutex<SloEngine>>> = (!config.slos.is_empty()).then(|| {
            Arc::new(Mutex::new(SloEngine::new(
                server.engine().obs(),
                config.slos.clone(),
                config.slo_window,
            )))
        });
        let driver = server.start_driver(config.tick_interval);
        let acceptors = (0..config.acceptors.max(1))
            .map(|i| {
                let listener = listener.try_clone().expect("clone listener");
                let shared = AcceptorShared {
                    server: Arc::clone(&server),
                    config: config.clone(),
                    closing: Arc::clone(&closing),
                    counters: Arc::clone(&counters),
                    tokens: Arc::clone(&tokens),
                    token_seed,
                    slo: slo.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("bf-net-acceptor-{i}"))
                    .spawn(move || loop {
                        if shared.closing.load(Ordering::Acquire) {
                            return;
                        }
                        match listener.accept() {
                            Ok((stream, _)) => {
                                shared.counters.connections.inc();
                                Connection::new(stream, &shared).run();
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(shared.config.poll_interval);
                            }
                            Err(_) => return,
                        }
                    })
                    .expect("spawn acceptor")
            })
            .collect();
        Ok(NetServer {
            server,
            addr,
            closing,
            counters,
            acceptors,
            driver: Some(driver),
            tokens,
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The inner scheduler the connections feed.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// The session token this process issued for `analyst`, if any —
    /// issued on the first wire `OpenSession` and stable until the
    /// process exits.
    pub fn session_token(&self, analyst: &str) -> Option<u64> {
        self.tokens
            .lock()
            .expect("token book poisoned")
            .get(analyst)
            .copied()
    }

    /// Network-layer counters — a thin shim over the shared `bf-obs`
    /// registry (the same counters a wire `StatsReport` carries).
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections: self.counters.connections.get(),
            frames_in: self.counters.frames_in.get(),
            frames_out: self.counters.frames_out.get(),
            protocol_errors: self.counters.protocol_errors.get(),
            window_refusals: self.counters.window_refusals.get(),
            disconnects_mid_request: self.counters.disconnects_mid_request.get(),
        }
    }

    /// Graceful shutdown: stop accepting, let every live connection
    /// drain its in-flight tickets (new submissions refuse with
    /// [`WireError::ShutDown`]) and close, then stop the driver and shut
    /// the inner server down (which drains, flushes and compacts the
    /// engine's store).
    ///
    /// # Errors
    ///
    /// [`ServerError`] when the inner server's final checkpoint fails;
    /// the network side is down either way.
    pub fn shutdown(mut self) -> Result<ServerStats, ServerError> {
        self.closing.store(true, Ordering::Release);
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        if let Some(driver) = self.driver.take() {
            driver.stop();
        }
        self.server.shutdown()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.closing.store(true, Ordering::Release);
        for handle in self.acceptors.drain(..) {
            let _ = handle.join();
        }
        // The driver handle (if still present) stops itself on drop.
    }
}

/// One outstanding single submit. `started` feeds the `net_request_ns`
/// histogram only — it never influences ordering or scheduling.
struct Outstanding {
    id: u64,
    ticket: Ticket,
    started: Instant,
    /// The client-assigned trace id, echoed on the reply frame.
    trace_id: Option<u64>,
    /// The request's trace context — the net layer's clone records the
    /// Reply span and finishes the tree when the answer flushes.
    trace: TraceContext,
}

/// One outstanding batch: slots resolve independently, the reply goes
/// out once all are done.
struct OutstandingBatch {
    id: u64,
    slots: Vec<Result<Ticket, WireError>>,
    started: Instant,
}

/// The process-shared state every connection on an acceptor borrows:
/// built once per acceptor thread, lent to each [`Connection`] it
/// serves in turn.
struct AcceptorShared {
    server: Arc<Server>,
    config: NetConfig,
    closing: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    tokens: Arc<Mutex<HashMap<String, u64>>>,
    token_seed: u64,
    slo: Option<Arc<Mutex<SloEngine>>>,
}

/// Per-connection state machine: owns the socket, the receive buffer,
/// and the in-flight tickets.
struct Connection<'a> {
    stream: TcpStream,
    server: &'a Arc<Server>,
    config: &'a NetConfig,
    closing: &'a AtomicBool,
    counters: &'a NetCounters,
    buf: Vec<u8>,
    hello_done: bool,
    /// The protocol version negotiated at `Hello`: the minimum of the
    /// client's and ours, at least [`MIN_PROTOCOL_VERSION`]. Every
    /// frame on this connection encodes and decodes at this version, so
    /// a v2/v3 client sees exactly the wire format it shipped with.
    negotiated: u16,
    goodbye: Option<u64>,
    /// Analysts whose sessions this connection attached via
    /// `OpenSession`. `BudgetAudit` — per-record labels and exact ε
    /// charges, a materially larger disclosure than the aggregate
    /// `Budget` snapshot — is served only for analysts in this set.
    attached: HashSet<String>,
    /// The server-wide session-token book (see [`NetServer::tokens`]).
    tokens: &'a Mutex<HashMap<String, u64>>,
    /// Seed for deriving fresh tokens (process-stable).
    token_seed: u64,
    singles: Vec<Outstanding>,
    batches: Vec<OutstandingBatch>,
    /// The process-wide SLO engine (`None` when no SLOs are
    /// configured).
    slo: &'a Option<Arc<Mutex<SloEngine>>>,
    /// The live `Watch` subscription, if this connection opened one:
    /// the watch's correlation id plus the bus subscription whose
    /// queued events the handler loop pumps out as `Event` frames.
    watch: Option<(u64, BusSubscriber)>,
}

/// Per-subscriber event-queue bound for `Watch` connections. A watcher
/// that falls further behind than this loses events (visible as gaps
/// in the sequence numbers) instead of growing server memory.
const WATCH_QUEUE_CAPACITY: usize = 256;
/// Max events flushed per handler-loop pass, so a hot bus cannot
/// starve frame reads on the same connection.
const WATCH_BATCH: usize = 64;

impl<'a> Connection<'a> {
    fn new(stream: TcpStream, shared: &'a AcceptorShared) -> Self {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
        // A client that stops READING can otherwise wedge this thread
        // forever in write_all once the TCP send buffer fills — which
        // would also hang NetServer::shutdown on the acceptor join. A
        // stalled write past this timeout is treated as a dead peer.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        Self {
            stream,
            server: &shared.server,
            config: &shared.config,
            closing: &shared.closing,
            counters: &shared.counters,
            buf: Vec::new(),
            hello_done: false,
            negotiated: PROTOCOL_VERSION,
            goodbye: None,
            attached: HashSet::new(),
            tokens: &shared.tokens,
            token_seed: shared.token_seed,
            singles: Vec::new(),
            batches: Vec::new(),
            slo: &shared.slo,
            watch: None,
        }
    }

    /// Outstanding **requests** (batch members each count — the window
    /// bounds server-side work per connection, and a thousand-member
    /// batch is a thousand queue slots, not one).
    fn in_flight(&self) -> usize {
        self.singles.len() + self.batches.iter().map(|b| b.slots.len()).sum::<usize>()
    }

    /// Serves the connection to completion. Returning drops any
    /// unresolved tickets — the scheduler's cancellation sweep then
    /// skips their work before it charges anything.
    ///
    /// Each loop pass is a *tick*. A pass that made progress (flushed a
    /// reply, read bytes, dispatched a frame) loops straight back around
    /// instead of sleeping — the old behaviour of waiting out a full
    /// `poll_interval` after productive work turned the interval into a
    /// latency floor on pipelined streams. Only a pass that found
    /// nothing to do pays the wait (the socket read timeout, or the
    /// drain sleep while a `Goodbye` settles).
    fn run(mut self) {
        let mut read_chunk = [0u8; 16 * 1024];
        loop {
            let tick_started = self.counters.obs.is_enabled().then(Instant::now);
            let mut progressed = false;

            // 1. Flush completions (also detects a dead peer on write).
            match self.flush_completions() {
                Err(_) => {
                    self.note_disconnect();
                    return;
                }
                Ok(flushed) => progressed |= flushed > 0,
            }

            // 1b. Stream queued watch events (suspended once a Goodbye
            //     starts draining, so the Farewell is the last frame).
            if self.goodbye.is_none() {
                match self.pump_watch() {
                    Err(_) => {
                        self.note_disconnect();
                        return;
                    }
                    Ok(pumped) => progressed |= pumped > 0,
                }
            }

            // 2. Orderly endings.
            if let Some(id) = self.goodbye {
                if self.in_flight() == 0 {
                    let _ = self.write_message(&ServerMessage::Farewell { id });
                    let _ = self.stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
                // Still draining; don't read further frames. Re-poll
                // immediately after a productive pass, sleep otherwise.
                if !progressed {
                    std::thread::sleep(self.config.poll_interval);
                }
                self.note_tick(tick_started, progressed);
                continue;
            }
            if self.closing.load(Ordering::Acquire) && self.in_flight() == 0 {
                // Server shutting down and nothing owed to this client.
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                return;
            }

            // 3. Pull bytes (blocking up to the poll timeout only when
            //    idle); decode complete frames.
            match self.stream.read(&mut read_chunk) {
                Ok(0) => {
                    // EOF: client gone. In-flight tickets drop here.
                    self.note_disconnect();
                    return;
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&read_chunk[..n]);
                    progressed = true;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => {
                    self.note_disconnect();
                    return;
                }
            }
            loop {
                match read_frame(&self.buf) {
                    FrameRead::Incomplete => break,
                    FrameRead::Corrupt => {
                        self.counters.protocol_errors.inc();
                        let _ = self.write_message(&ServerMessage::Refused {
                            id: 0,
                            error: WireError::Protocol("corrupt frame".into()),
                            trace_id: None,
                        });
                        return;
                    }
                    FrameRead::Complete { payload, consumed } => {
                        self.counters.frames_in.inc();
                        let mut span = self.counters.obs.span();
                        let msg = ClientMessage::decode_for(payload, self.negotiated);
                        self.counters.obs.span_mark(&mut span, Stage::Decode);
                        let decode_elapsed = span.elapsed().unwrap_or_default();
                        self.buf.drain(..consumed);
                        match msg {
                            Some(msg) => {
                                progressed = true;
                                if !self.dispatch(msg, decode_elapsed) {
                                    return;
                                }
                            }
                            None => {
                                self.counters.protocol_errors.inc();
                                let _ = self.write_message(&ServerMessage::Refused {
                                    id: 0,
                                    error: WireError::Protocol("undecodable message".into()),
                                    trace_id: None,
                                });
                                return;
                            }
                        }
                    }
                }
            }
            self.note_tick(tick_started, progressed);
        }
    }

    /// Feeds the busy/idle tick histograms; inert when metrics are off
    /// (no clock read happened).
    fn note_tick(&self, started: Option<Instant>, progressed: bool) {
        if let Some(t0) = started {
            let h = if progressed {
                &self.counters.tick_busy_ns
            } else {
                &self.counters.tick_idle_ns
            };
            h.record_duration(t0.elapsed());
        }
    }

    fn note_disconnect(&self) {
        if self.in_flight() > 0 {
            self.counters.disconnects_mid_request.inc();
        }
    }

    /// Handles one decoded message. Returns `false` when the connection
    /// must close (fatal protocol violation). `decode_elapsed` is how
    /// long the frame's decode took — a traced submit records it as the
    /// trace's Decode span.
    fn dispatch(&mut self, msg: ClientMessage, decode_elapsed: Duration) -> bool {
        let id = msg.id();
        if !self.hello_done && !matches!(msg, ClientMessage::Hello { .. }) {
            self.counters.protocol_errors.inc();
            let _ = self.write_message(&ServerMessage::Refused {
                id,
                error: WireError::Protocol("first frame must be Hello".into()),
                trace_id: None,
            });
            return false;
        }
        match msg {
            ClientMessage::Hello { id, version } => {
                if self.hello_done {
                    self.counters.protocol_errors.inc();
                    let _ = self.write_message(&ServerMessage::Refused {
                        id,
                        error: WireError::Protocol("duplicate Hello".into()),
                        trace_id: None,
                    });
                    return false;
                }
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    let _ = self.write_message(&ServerMessage::Refused {
                        id,
                        error: WireError::Protocol(format!(
                            "version mismatch: server speaks \
                             {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, client {version}"
                        )),
                        trace_id: None,
                    });
                    return false;
                }
                // Negotiate down to the client's version: every later
                // frame on this connection speaks it, so optional v3/v4
                // fields (trace ids, session tokens) are simply absent
                // rather than misparsed.
                self.negotiated = version.min(PROTOCOL_VERSION);
                self.hello_done = true;
                self.write_message(&ServerMessage::Welcome {
                    id,
                    version: self.negotiated,
                })
                .is_ok()
            }
            ClientMessage::OpenSession {
                id,
                analyst,
                total_bits,
            } => {
                let reply = match bf_core::Epsilon::new(f64::from_bits(total_bits)) {
                    Err(e) => ServerMessage::Refused {
                        id,
                        error: WireError::InvalidRequest(e.to_string()),
                        trace_id: None,
                    },
                    Ok(total) => {
                        // Under replication the open itself is a log
                        // entry — every replica must agree on the
                        // analyst's total before any charge sequences
                        // after it.
                        let attached = match &self.config.role {
                            ServerRole::Standalone => self
                                .server
                                .engine()
                                .attach_session(&analyst, total)
                                .map_err(|e| WireError::from_engine_error(&e)),
                            ServerRole::Replica(hook) => hook.sequence_open(&analyst, total_bits),
                        };
                        match attached {
                            Ok(remaining) => {
                                self.attached.insert(analyst.clone());
                                ServerMessage::SessionAttached {
                                    id,
                                    remaining_bits: remaining.to_bits(),
                                    token: self.issue_token(&analyst),
                                }
                            }
                            Err(error) => ServerMessage::Refused {
                                id,
                                error,
                                trace_id: None,
                            },
                        }
                    }
                };
                self.write_message(&reply).is_ok()
            }
            ClientMessage::Submit {
                id,
                analyst,
                request,
                request_id,
                deadline_micros,
                trace_id,
                token,
            } => {
                if let Some(error) = self.token_refusal(&analyst, token) {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id,
                        })
                        .is_ok();
                }
                if let Some(refusal) = self.window_refusal(1) {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error: refusal,
                            trace_id,
                        })
                        .is_ok();
                }
                // A traced submit mints the request's travelling context
                // here, at the wire boundary, and backfills the Decode
                // span the frame just paid.
                let trace = match trace_id {
                    Some(tid) => {
                        let t = self.counters.obs.begin_trace(TraceId(tid), &analyst);
                        if t.is_active() {
                            t.record_elapsed(Stage::Decode, decode_elapsed, "ok");
                        }
                        t
                    }
                    None => TraceContext::inert(),
                };
                match self.submit_one(&analyst, &request, request_id, deadline_micros, &trace) {
                    Ok(ticket) => {
                        self.singles.push(Outstanding {
                            id,
                            ticket,
                            started: Instant::now(),
                            trace_id,
                            trace,
                        });
                        self.note_occupancy();
                        true
                    }
                    Err(error) => {
                        trace.finish("refused");
                        self.write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id,
                        })
                        .is_ok()
                    }
                }
            }
            ClientMessage::SubmitBatch {
                id,
                analyst,
                requests,
                token,
            } => {
                // The batch path charges the same ε budget as single
                // submits, so it passes the same session-token gate.
                if let Some(refusal) = self.token_refusal(&analyst, token) {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error: refusal,
                            trace_id: None,
                        })
                        .is_ok();
                }
                if let Some(refusal) = self.window_refusal(requests.len()) {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error: refusal,
                            trace_id: None,
                        })
                        .is_ok();
                }
                // Each member submits independently — compatible members
                // land in the same coalescing window and share releases;
                // a refused member fails only its own slot.
                let slots = requests
                    .iter()
                    .map(|request| {
                        self.submit_one(&analyst, request, None, None, &TraceContext::inert())
                    })
                    .collect();
                self.batches.push(OutstandingBatch {
                    id,
                    slots,
                    started: Instant::now(),
                });
                self.note_occupancy();
                true
            }
            ClientMessage::Budget { id, analyst } => {
                if let Some(error) = self.read_refusal() {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id: None,
                        })
                        .is_ok();
                }
                let reply = match self.server.engine().session_snapshot(&analyst) {
                    Ok(snap) => ServerMessage::BudgetReport {
                        id,
                        total_bits: snap.total().value().to_bits(),
                        spent_bits: snap.spent().to_bits(),
                        remaining_bits: snap.remaining().to_bits(),
                        served: snap.served(),
                    },
                    Err(e) => ServerMessage::Refused {
                        id,
                        error: WireError::from_engine_error(&e),
                        trace_id: None,
                    },
                };
                self.write_message(&reply).is_ok()
            }
            ClientMessage::Stats { id } => {
                if let Some(error) = self.read_refusal() {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id: None,
                        })
                        .is_ok();
                }
                // One merged snapshot covering every layer: engine,
                // store, server and net metrics all live on the two
                // registries `Engine::metrics_snapshot` folds together.
                let metrics = self
                    .scrape_local()
                    .iter()
                    .map(WireMetric::from_snapshot)
                    .collect();
                self.write_message(&ServerMessage::StatsReport { id, metrics })
                    .is_ok()
            }
            ClientMessage::ClusterStats { id } => {
                if let Some(error) = self.read_refusal() {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id: None,
                        })
                        .is_ok();
                }
                // The serving node's own slice first, then one entry
                // per configured peer (scraped over the replication
                // peer port) — every reachable member exactly once,
                // unreachable members reported rather than dropped.
                // Samples go out with unqualified names; the client
                // qualifies each source with its `replica` label.
                let local = self
                    .scrape_local()
                    .iter()
                    .map(WireMetric::from_snapshot)
                    .collect();
                let node = match &self.config.role {
                    ServerRole::Replica(hook) => hook.node_name(),
                    ServerRole::Standalone => self.config.node_name.clone(),
                };
                let mut replicas = vec![WireReplicaStats {
                    node,
                    reachable: true,
                    metrics: local,
                }];
                if let ServerRole::Replica(hook) = &self.config.role {
                    for peer in hook.scrape_peers() {
                        replicas.push(WireReplicaStats {
                            node: peer.node,
                            reachable: peer.reachable,
                            metrics: peer.metrics.iter().map(WireMetric::from_snapshot).collect(),
                        });
                    }
                }
                self.write_message(&ServerMessage::ClusterStatsReport { id, replicas })
                    .is_ok()
            }
            ClientMessage::Health { id } => {
                // No read-refusal gate: a lagging or fenced replica
                // must still report *that* it is lagging — health is
                // what a load balancer decides eviction by.
                let health = match &self.config.role {
                    ServerRole::Replica(hook) => {
                        hook.refresh_observability();
                        hook.health()
                    }
                    ServerRole::Standalone => None,
                };
                // Snapshot after the hook's peer probes: they refresh
                // the cluster-lag gauge the SLO evaluation reads.
                let snaps = self.server.engine().metrics_snapshot();
                let firing = self.observe_slos(&snaps);
                let gauge_sum = |prefix: &str| {
                    snaps
                        .iter()
                        .filter(|s| s.name().starts_with(prefix))
                        .map(|s| match s {
                            MetricSnapshot::Gauge { value, .. } => *value,
                            _ => 0.0,
                        })
                        .sum::<f64>()
                };
                let wal_segments =
                    gauge_sum("store_live_wal_segments") + gauge_sum("store_archived_wal_segments");
                let queue_depth = gauge_sum("server_queue_depth{");
                let (role, epoch, applied, lag, unreachable) = match health {
                    Some(h) => (h.role, h.epoch, h.applied, h.lag, h.unreachable),
                    None => ("standalone".to_owned(), 0, 0, 0, Vec::new()),
                };
                self.write_message(&ServerMessage::HealthReport {
                    id,
                    role,
                    epoch,
                    applied,
                    lag,
                    wal_segments: wal_segments as u64,
                    queue_depth: queue_depth as u64,
                    unreachable,
                    firing,
                })
                .is_ok()
            }
            ClientMessage::Watch { id } => {
                // Attach a bounded bus subscription; the handler loop
                // pumps its events out as `Event` frames echoing this
                // id. One watch per connection: a second Watch
                // replaces the first (whose queued events are
                // dropped with it).
                let sub = self.counters.obs.bus().subscribe(WATCH_QUEUE_CAPACITY);
                self.watch = Some((id, sub));
                true
            }
            ClientMessage::Traces { id } => {
                if let Some(error) = self.read_refusal() {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id: None,
                        })
                        .is_ok();
                }
                let traces = self.counters.obs.trace_buffer().snapshot();
                self.write_message(&ServerMessage::TraceReport { id, traces })
                    .is_ok()
            }
            ClientMessage::BudgetAudit { id, analyst, token } => {
                if let Some(error) = self.read_refusal() {
                    return self
                        .write_message(&ServerMessage::Refused {
                            id,
                            error,
                            trace_id: None,
                        })
                        .is_ok();
                }
                // Per-record provenance (exact labels and ε per query)
                // is only served to a connection that attached the
                // analyst's session — reattaching requires the
                // session's original ε total, so a stranger on the
                // same port cannot walk another analyst's history —
                // and, on a v4 connection, presented the session token
                // the attach handed back.
                let reply = if !self.attached.contains(&analyst) {
                    ServerMessage::Refused {
                        id,
                        error: WireError::InvalidRequest(format!(
                            "audit for {analyst:?} requires a session \
                             attached on this connection"
                        )),
                        trace_id: None,
                    }
                } else if let Some(error) = self.token_refusal(&analyst, token) {
                    ServerMessage::Refused {
                        id,
                        error,
                        trace_id: None,
                    }
                } else {
                    match self.server.engine().ledger_history(&analyst) {
                        Ok(entries) => ServerMessage::AuditReport { id, entries },
                        Err(e) => ServerMessage::Refused {
                            id,
                            error: WireError::from_engine_error(&e),
                            trace_id: None,
                        },
                    }
                };
                self.write_message(&reply).is_ok()
            }
            ClientMessage::LogCatchup { id, .. }
            | ClientMessage::ReplicateAck { id, .. }
            | ClientMessage::PeerStatus { id } => {
                // Replication frames travel replica-to-replica on the
                // peer port; a client sending one here is confused or
                // probing.
                self.counters.protocol_errors.inc();
                self.write_message(&ServerMessage::Refused {
                    id,
                    error: WireError::Protocol(
                        "replication frames are peer-to-peer, not served on the client port".into(),
                    ),
                    trace_id: None,
                })
                .is_ok()
            }
            ClientMessage::Goodbye { id } => {
                self.goodbye = Some(id);
                true
            }
        }
    }

    /// Gets-or-derives the session token for `analyst`. Tokens are
    /// process-stable: a reconnecting client reattaching the same
    /// session gets the same token back.
    fn issue_token(&self, analyst: &str) -> u64 {
        let mut book = self.tokens.lock().expect("token book poisoned");
        *book.entry(analyst.to_owned()).or_insert_with(|| {
            let mut bytes = self.token_seed.to_le_bytes().to_vec();
            bytes.extend_from_slice(analyst.as_bytes());
            // Zero means "no token" on the wire, so never issue it.
            fnv1a(&bytes).max(1)
        })
    }

    /// Refuses a request that should have presented `analyst`'s session
    /// token but didn't (or presented a stale/forged one). Enforced only
    /// on v4 connections (older clients have no token field — rolling
    /// upgrades keep working) and only once a wire `OpenSession` issued
    /// a token for the analyst; sessions opened in-process are exempt.
    fn token_refusal(&self, analyst: &str, presented: Option<u64>) -> Option<WireError> {
        if self.negotiated < 4 {
            return None;
        }
        let expected = self
            .tokens
            .lock()
            .expect("token book poisoned")
            .get(analyst)
            .copied()?;
        if presented == Some(expected) {
            None
        } else {
            Some(WireError::InvalidRequest(format!(
                "missing or invalid session token for {analyst:?}; \
                 reattach the session to obtain one"
            )))
        }
    }

    /// The replication layer's veto on serving reads locally (`None`
    /// under [`ServerRole::Standalone`]).
    fn read_refusal(&self) -> Option<WireError> {
        match &self.config.role {
            ServerRole::Standalone => None,
            ServerRole::Replica(hook) => hook.refuse_read(),
        }
    }

    /// The local scrape path shared by `Stats` and `ClusterStats`:
    /// refresh hook-owned gauges from live node state, feed one sample
    /// through the SLO engine, and return a snapshot that includes the
    /// updated `slo_*` gauges. Without configured SLOs this is one
    /// snapshot and nothing else.
    fn scrape_local(&self) -> Vec<MetricSnapshot> {
        if let ServerRole::Replica(hook) = &self.config.role {
            hook.refresh_observability();
        }
        let snaps = self.server.engine().metrics_snapshot();
        if self.slo.is_none() {
            return snaps;
        }
        self.observe_slos(&snaps);
        // Re-read so the reply carries the slo_* gauges this very
        // scrape just updated (scrapes are rare; the second pass is
        // cheaper than serving stale SLO state).
        self.server.engine().metrics_snapshot()
    }

    /// Feeds one scrape sample through the SLO engine (no-op without
    /// configured SLOs): updates the `slo_*` gauges, publishes
    /// firing/ok flips on the live event bus, and returns the names
    /// currently firing.
    fn observe_slos(&self, snaps: &[MetricSnapshot]) -> Vec<String> {
        let Some(slo) = self.slo.as_ref() else {
            return Vec::new();
        };
        let mut slo = slo.lock().expect("slo engine poisoned");
        for flip in slo.observe(snaps) {
            self.counters.obs.bus().publish(
                ClusterEventKind::Slo,
                &flip.slo,
                u64::from(flip.firing),
            );
        }
        slo.firing()
    }

    /// Writes out every event queued on the connection's `Watch`
    /// subscription (bounded per pass), returning how many went — the
    /// handler loop's progress signal.
    fn pump_watch(&mut self) -> std::io::Result<usize> {
        let (watch_id, events) = match &self.watch {
            Some((id, sub)) => (*id, sub.drain(WATCH_BATCH)),
            None => return Ok(0),
        };
        for event in &events {
            self.write_message(&ServerMessage::Event {
                id: watch_id,
                seq: event.seq,
                kind: WireEventKind::from(event.kind),
                detail: event.detail.clone(),
                value: event.value,
            })?;
        }
        Ok(events.len())
    }

    /// Records the connection's in-flight depth after an accepted
    /// submit (metrics-off: no-op).
    fn note_occupancy(&self) {
        if self.counters.obs.is_enabled() {
            self.counters
                .window_occupancy
                .record(self.in_flight() as u64);
        }
    }

    /// Refuses when admitting `incoming` more requests would overflow
    /// the connection's window.
    fn window_refusal(&self, incoming: usize) -> Option<WireError> {
        if self.in_flight() + incoming > self.config.max_in_flight {
            self.counters.window_refusals.inc();
            Some(WireError::WindowFull {
                capacity: self.config.max_in_flight as u64,
            })
        } else {
            None
        }
    }

    fn submit_one(
        &self,
        analyst: &str,
        request: &crate::proto::WireRequest,
        request_id: Option<u64>,
        deadline_micros: Option<u64>,
        trace: &TraceContext,
    ) -> Result<Ticket, WireError> {
        if self.closing.load(Ordering::Acquire) {
            return Err(WireError::ShutDown);
        }
        // The top quarter of the id space is reserved for log-position-
        // derived idempotency keys (see `RESERVED_REQUEST_ID_BASE`);
        // letting a client key land there could alias another request's
        // cached reply.
        if request_id.is_some_and(|rid| rid >= crate::proto::RESERVED_REQUEST_ID_BASE) {
            return Err(WireError::InvalidRequest(format!(
                "request_id {} is in the reserved range (>= 2^62); \
                 pick an id below {}",
                request_id.unwrap_or(0),
                crate::proto::RESERVED_REQUEST_ID_BASE,
            )));
        }
        let request = request.to_request()?;
        match &self.config.role {
            ServerRole::Standalone => self
                .server
                .submit_traced(
                    analyst,
                    request,
                    request_id,
                    deadline_micros.map(Duration::from_micros),
                    trace.clone(),
                )
                .map_err(|e| WireError::from_server_error(&e)),
            // Replicated writes sequence through the log instead of the
            // local scheduler; the deadline is dropped (wall-clock
            // dependent — see [`ReplicaHook::sequence_submit`]).
            ServerRole::Replica(hook) => hook.sequence_submit(analyst, request_id, request),
        }
    }

    /// Writes replies for every resolved ticket and completed batch,
    /// returning how many went out (the handler loop's progress signal).
    fn flush_completions(&mut self) -> std::io::Result<usize> {
        let metrics_on = self.counters.obs.is_enabled();
        let request_ns = &self.counters.request_ns;
        let mut replies: Vec<(ServerMessage, TraceContext, &'static str)> = Vec::new();
        self.singles.retain(|o| match o.ticket.try_take() {
            None => true,
            Some(result) => {
                if metrics_on {
                    request_ns.record_duration(o.started.elapsed());
                }
                let (msg, outcome) = match result {
                    Ok(response) => (
                        ServerMessage::Answer {
                            id: o.id,
                            response: WireResponse::from_response(&response),
                            trace_id: o.trace_id,
                        },
                        "ok",
                    ),
                    Err(e) => (
                        ServerMessage::Refused {
                            id: o.id,
                            error: WireError::from_server_error(&e),
                            trace_id: o.trace_id,
                        },
                        "refused",
                    ),
                };
                replies.push((msg, o.trace.clone(), outcome));
                false
            }
        });
        let mut finished: Vec<usize> = Vec::new();
        for (i, batch) in self.batches.iter().enumerate() {
            let done = batch.slots.iter().all(|slot| match slot {
                Err(_) => true,
                Ok(ticket) => ticket.try_take().is_some(),
            });
            if done {
                finished.push(i);
            }
        }
        for i in finished.into_iter().rev() {
            let batch = self.batches.swap_remove(i);
            if metrics_on {
                // One sample per member: a batch of n occupied n window
                // slots for its whole flight.
                for _ in 0..batch.slots.len() {
                    request_ns.record_duration(batch.started.elapsed());
                }
            }
            let slots = batch
                .slots
                .into_iter()
                .map(|slot| match slot {
                    Err(e) => Err(e),
                    Ok(ticket) => match ticket.try_take().expect("resolved above") {
                        Ok(response) => Ok(WireResponse::from_response(&response)),
                        Err(e) => Err(WireError::from_server_error(&e)),
                    },
                })
                .collect();
            replies.push((
                ServerMessage::BatchAnswer {
                    id: batch.id,
                    slots,
                },
                TraceContext::inert(),
                "ok",
            ));
        }
        let flushed = replies.len();
        if flushed > 0 {
            let mut span = self.counters.obs.span();
            let timer = TraceTimer::any(replies.iter().map(|(_, t, _)| t));
            for (reply, _, _) in &replies {
                self.write_message(reply)?;
            }
            self.counters.obs.span_mark(&mut span, Stage::Reply);
            // Close out every traced request that just flushed: record
            // its Reply span and seal the tree into the trace buffer.
            for (_, trace, outcome) in &replies {
                if trace.is_active() {
                    trace.record(Stage::Reply, &timer, outcome);
                    trace.finish(outcome);
                }
            }
        }
        Ok(flushed)
    }

    fn write_message(&mut self, msg: &ServerMessage) -> std::io::Result<()> {
        // The chaos plan's op clock ticks once per **answer** frame, so a
        // scripted schedule addresses "the 3rd answer" no matter how many
        // handshake or stats frames interleave.
        if let Some(plan) = &self.config.fault_plan {
            if matches!(
                msg,
                ServerMessage::Answer { .. } | ServerMessage::BatchAnswer { .. }
            ) {
                if let Some(fault) = plan.next() {
                    self.counters.faults_injected.inc();
                    match fault {
                        bf_chaos::NetFault::DropConnection => {
                            let _ = self.stream.shutdown(std::net::Shutdown::Both);
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::ConnectionReset,
                                "chaos: connection dropped before reply",
                            ));
                        }
                        bf_chaos::NetFault::TruncateReply => {
                            let framed = frame_bytes(&msg.encode_for(self.negotiated));
                            self.counters.frames_out.inc();
                            let _ = self.stream.write_all(&framed[..framed.len() / 2]);
                            let _ = self.stream.shutdown(std::net::Shutdown::Both);
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::ConnectionReset,
                                "chaos: reply frame truncated mid-write",
                            ));
                        }
                        bf_chaos::NetFault::DelayReplyMicros(us) => {
                            std::thread::sleep(Duration::from_micros(us));
                        }
                    }
                }
            }
        }
        self.counters.frames_out.inc();
        self.stream
            .write_all(&frame_bytes(&msg.encode_for(self.negotiated)))
    }
}
