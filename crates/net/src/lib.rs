//! # bf-net — wire protocol, TCP front-end and client library
//!
//! Everything below this crate serves callers in the same process; this
//! crate puts the Blowfish serving stack on a socket, so **multiple
//! client processes** can hammer one serving process and still get every
//! guarantee the in-process stack makes:
//!
//! ```text
//!  client proc ──┐
//!  client proc ──┼─TCP─► NetServer ─► Server (fairness, coalescing) ─► Engine ─► Store (WAL)
//!  client proc ──┘        (bf-net)     (bf-server)                      (bf-engine) (bf-store)
//! ```
//!
//! * **One protocol, one framing.** [`proto`] defines a versioned,
//!   length-prefixed, FNV-checksummed binary protocol reusing the WAL's
//!   record-framing discipline (`bf_store::frame_bytes` /
//!   `bf_store::read_frame`), with typed error replies mirroring
//!   `ServerError` / `EngineError` and every ε as exact `f64` bits.
//! * **The scheduler is reused, not reimplemented.** [`NetServer`]
//!   decodes frames into `Server::submit` tickets: per-analyst fair
//!   queues, cross-analyst coalescing, same-`(policy, data, ε)` range
//!   folding, admission control and durable charging all apply to
//!   remote analysts unchanged.
//! * **Backpressure is layered and typed.** A connection has a bounded
//!   in-flight window ([`proto::WireError::WindowFull`]); an analyst
//!   has a bounded queue (`QueueFull`), surfaced over the wire.
//! * **Disconnects don't leak.** A client that vanishes mid-request
//!   releases its tickets; the scheduler cancels not-yet-dispatched
//!   work before any ε is charged.
//! * **Reconnect is reattach.** [`Client::reconnect`] re-dials and
//!   reopens its sessions through `Engine::attach_session` — the same
//!   recovery path a crash-restarted serving process exposes — so a
//!   client lands on its durable ledger whether the socket dropped or
//!   the whole server was killed and recovered from its WAL.
//! * **Multi-process runs are reproducible.** Release noise is a pure
//!   function of `(engine seed, release identity, per-identity
//!   ordinal)`, so concurrent client processes with disjoint query
//!   streams observe byte-identical answers across same-seed runs no
//!   matter how the network interleaves them
//!   (`examples/remote_analysts.rs` asserts this end to end).

#![deny(missing_docs)]

mod client;
mod error;
pub mod proto;
mod server;

pub use client::{BudgetSnapshot, Client, HealthSnapshot, RetryPolicy, WatchHandle};
pub use error::NetError;
pub use proto::{
    ClientMessage, ServerMessage, WireError, WireEventKind, WireLogEntry, WireLogOp, WireMetric,
    WireReplicaStats, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use server::{
    NetConfig, NetServer, NetStats, PeerScrape, ReplicaHealth, ReplicaHook, ServerRole,
};

#[cfg(test)]
mod tests {
    use super::*;
    use bf_core::{Epsilon, Policy};
    use bf_domain::{Dataset, Domain};
    use bf_engine::{Engine, Request, Response};
    use bf_server::{Server, ServerConfig};
    use std::sync::Arc;
    use std::time::Duration;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn engine(seed: u64) -> Arc<Engine> {
        let engine = Engine::with_seed(seed);
        let domain = Domain::line(64).unwrap();
        engine
            .register_policy("pol", Policy::distance_threshold(domain.clone(), 2))
            .unwrap();
        let rows: Vec<usize> = (0..640).map(|i| (i * 7) % 64).collect();
        engine
            .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
            .unwrap();
        Arc::new(engine)
    }

    fn net_server(seed: u64, server_config: ServerConfig, net_config: NetConfig) -> NetServer {
        let server = Arc::new(Server::new(engine(seed), server_config));
        NetServer::bind("127.0.0.1:0", server, net_config).unwrap()
    }

    #[test]
    fn loopback_round_trip_all_request_kinds() {
        let net = net_server(11, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        let remaining = client.open_session("alice", 4.0).unwrap();
        assert_eq!(remaining, 4.0);

        let h = client
            .call("alice", &Request::histogram("pol", "ds", eps(0.5)))
            .unwrap();
        assert_eq!(h.vector().unwrap().len(), 64);
        let c = client
            .call(
                "alice",
                &Request::cumulative_histogram("pol", "ds", eps(0.5)),
            )
            .unwrap();
        assert_eq!(c.vector().unwrap().len(), 64);
        let r = client
            .call("alice", &Request::range("pol", "ds", eps(0.5), 8, 24))
            .unwrap();
        assert!(r.scalar().unwrap().is_finite());
        let w: Vec<f64> = (0..64).map(|i| i as f64 / 64.0).collect();
        let l = client
            .call("alice", &Request::linear("pol", "ds", eps(0.5), w))
            .unwrap();
        assert!(l.scalar().unwrap().is_finite());

        let budget = client.budget("alice").unwrap();
        assert!((budget.spent - 2.0).abs() < 1e-12);
        assert!((budget.remaining - 2.0).abs() < 1e-12);
        assert_eq!(budget.served, 4);
        // The wire answer is bit-identical to the engine's own ledger.
        let snap = net.server().engine().session_snapshot("alice").unwrap();
        assert_eq!(snap.spent().to_bits(), budget.spent.to_bits());
        client.goodbye().unwrap();
        net.shutdown().unwrap();
    }

    #[test]
    fn pipelined_submissions_answer_out_of_order_waits() {
        let net = net_server(12, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("p", 10.0).unwrap();
        let ids: Vec<u64> = (0..16)
            .map(|i| {
                client
                    .submit("p", &Request::range("pol", "ds", eps(0.1), i, i + 20))
                    .unwrap()
            })
            .collect();
        assert_eq!(client.in_flight(), 16);
        // Wait newest-first: the client buffers replies for other ids.
        for &id in ids.iter().rev() {
            assert!(client.wait(id).unwrap().scalar().unwrap().is_finite());
        }
        assert_eq!(client.in_flight(), 0);
        net.shutdown().unwrap();
    }

    #[test]
    fn in_flight_window_refuses_over_the_wire() {
        // A slow driver so answers cannot race the third submit.
        let net = net_server(
            13,
            ServerConfig {
                coalesce_window: 2,
                ..ServerConfig::default()
            },
            NetConfig {
                max_in_flight: 2,
                tick_interval: Duration::from_millis(100),
                ..NetConfig::default()
            },
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("w", 10.0).unwrap();
        let a = client
            .submit("w", &Request::range("pol", "ds", eps(0.1), 0, 10))
            .unwrap();
        let b = client
            .submit("w", &Request::range("pol", "ds", eps(0.1), 0, 11))
            .unwrap();
        let c = client
            .submit("w", &Request::range("pol", "ds", eps(0.1), 0, 12))
            .unwrap();
        match client.wait(c) {
            Err(NetError::Remote(WireError::WindowFull { capacity })) => {
                assert_eq!(capacity, 2)
            }
            other => panic!("expected WindowFull, got {other:?}"),
        }
        assert!(client.wait(a).is_ok());
        assert!(client.wait(b).is_ok());
        assert_eq!(net.stats().window_refusals, 1);
        net.shutdown().unwrap();
    }

    #[test]
    fn batch_over_the_wire_folds_ranges_into_shared_releases() {
        // A generous window so all batch members land in one fold even
        // when the test host is under load (the batch arrives in one
        // frame, but ticks keep running while it is dispatched).
        let net = net_server(
            14,
            ServerConfig {
                coalesce_window: 8,
                ..ServerConfig::default()
            },
            NetConfig {
                tick_interval: Duration::from_millis(10),
                ..NetConfig::default()
            },
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("b", 10.0).unwrap();
        let requests: Vec<Request> = (0..6)
            .map(|i| Request::range("pol", "ds", eps(0.5), i, i + 30))
            .collect();
        let slots = client.call_batch("b", &requests).unwrap();
        assert_eq!(slots.len(), 6);
        for slot in &slots {
            assert!(slot.as_ref().unwrap().scalar().is_some());
        }
        let stats = net.server().stats();
        assert_eq!(stats.answered, 6);
        assert!(
            stats.releases < 6,
            "same-(policy, data, ε) ranges must share releases, got {} releases",
            stats.releases
        );
        assert!(
            stats.batched_range_answers >= 2,
            "at least one shared Ordered release, got {stats:?}"
        );
        // One charge per shared release, not one per slot.
        let snap = net.server().engine().session_snapshot("b").unwrap();
        assert!(snap.spent() < 6.0 * 0.5 - 1e-9, "spent {}", snap.spent());
        net.shutdown().unwrap();
    }

    #[test]
    fn batch_members_count_against_the_window() {
        let net = net_server(
            20,
            ServerConfig {
                coalesce_window: 2,
                ..ServerConfig::default()
            },
            NetConfig {
                max_in_flight: 4,
                tick_interval: Duration::from_millis(100),
                ..NetConfig::default()
            },
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("bw", 10.0).unwrap();
        // A 5-member batch overflows a window of 4 even with nothing
        // else outstanding — the window bounds requests, not frames.
        let requests: Vec<Request> = (0..5)
            .map(|i| Request::range("pol", "ds", eps(0.1), i, i + 10))
            .collect();
        match client.call_batch("bw", &requests) {
            Err(NetError::Remote(WireError::WindowFull { capacity })) => {
                assert_eq!(capacity, 4)
            }
            other => panic!("expected WindowFull, got {other:?}"),
        }
        // A fitting batch goes through.
        assert!(client.call_batch("bw", &requests[..4]).is_ok());
        net.shutdown().unwrap();
    }

    #[test]
    fn typed_errors_cross_the_wire() {
        let net = net_server(15, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        // Unknown analyst refuses at submit.
        let id = client
            .submit("ghost", &Request::range("pol", "ds", eps(0.1), 0, 5))
            .unwrap();
        assert!(matches!(
            client.wait(id),
            Err(NetError::Remote(WireError::UnknownAnalyst(a))) if a == "ghost"
        ));
        // Admission control: over-budget ε refuses with exact bits.
        client.open_session("tiny", 0.25).unwrap();
        let id = client
            .submit("tiny", &Request::range("pol", "ds", eps(0.5), 0, 5))
            .unwrap();
        match client.wait(id) {
            Err(NetError::Remote(WireError::BudgetExhausted {
                requested_bits,
                remaining_bits,
                ..
            })) => {
                assert_eq!(f64::from_bits(requested_bits), 0.5);
                assert_eq!(f64::from_bits(remaining_bits), 0.25);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        // Unknown policy fails the ticket, not the connection.
        let id = client
            .submit("tiny", &Request::range("nope", "ds", eps(0.1), 0, 5))
            .unwrap();
        assert!(matches!(
            client.wait(id),
            Err(NetError::Remote(WireError::UnknownPolicy(_)))
        ));
        // The connection still serves.
        assert!(client
            .call("tiny", &Request::range("pol", "ds", eps(0.1), 0, 5))
            .is_ok());
        net.shutdown().unwrap();
    }

    #[test]
    fn session_total_mismatch_refuses_reattach() {
        let net = net_server(16, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("m", 1.0).unwrap();
        let mut other = Client::connect(net.local_addr()).unwrap();
        assert!(matches!(
            other.open_session("m", 2.0),
            Err(NetError::Remote(WireError::InvalidRequest(_)))
        ));
        // The right total attaches from a second connection just fine.
        assert_eq!(other.open_session("m", 1.0).unwrap(), 1.0);
        net.shutdown().unwrap();
    }

    #[test]
    fn reconnect_reattaches_sessions_on_the_same_ledger() {
        let net = net_server(17, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("r", 2.0).unwrap();
        client
            .call("r", &Request::range("pol", "ds", eps(0.75), 4, 40))
            .unwrap();
        let reattached = client.reconnect().unwrap();
        assert_eq!(reattached.len(), 1);
        assert_eq!(reattached[0].0, "r");
        assert!((reattached[0].1 - 1.25).abs() < 1e-12, "spent ε survives");
        // The reattached session keeps serving on the same ledger.
        client
            .call("r", &Request::range("pol", "ds", eps(0.25), 4, 40))
            .unwrap();
        assert!((client.budget("r").unwrap().remaining - 1.0).abs() < 1e-12);
        net.shutdown().unwrap();
    }

    #[test]
    fn disconnect_mid_request_cancels_without_charges_or_leaks() {
        // Slow ticks + a window so the request is still pending when the
        // client vanishes.
        let net = net_server(
            18,
            ServerConfig {
                coalesce_window: 4,
                queue_capacity: 8,
                ..ServerConfig::default()
            },
            NetConfig {
                tick_interval: Duration::from_millis(50),
                ..NetConfig::default()
            },
        );
        let addr = net.local_addr();
        {
            let mut client = Client::connect(addr).unwrap();
            client.open_session("gone", 1.0).unwrap();
            client
                .submit("gone", &Request::range("pol", "ds", eps(0.5), 0, 10))
                .unwrap();
            // Dropped here: the socket closes with the request in flight.
        }
        // The handler notices EOF, releases the ticket, and the next
        // sweep cancels the undispatched work.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while net.server().stats().cancelled == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "cancellation never observed: {:?}",
                net.server().stats()
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(net.stats().disconnects_mid_request, 1);
        // No ε was charged for the abandoned request …
        assert!(
            (net.server().engine().session_remaining("gone").unwrap() - 1.0).abs() < 1e-12,
            "cancelled request must not charge"
        );
        // … and no queue slot leaked: a reconnecting client can fill the
        // queue to capacity and drain it.
        let mut client = Client::connect(addr).unwrap();
        client.open_session("gone", 1.0).unwrap();
        let ids: Vec<u64> = (0..8)
            .map(|i| {
                client
                    .submit("gone", &Request::range("pol", "ds", eps(0.01), i, i + 5))
                    .unwrap()
            })
            .collect();
        for id in ids {
            assert!(client.wait(id).is_ok());
        }
        net.shutdown().unwrap();
    }

    #[test]
    fn server_restart_on_a_store_reattaches_over_the_wire() {
        let dir = bf_store::scratch_dir("net-restart");
        let build = |seed: u64| -> NetServer {
            let store = Arc::new(bf_engine::Store::open(&dir).unwrap());
            let engine = Engine::with_store(seed, store);
            let domain = Domain::line(64).unwrap();
            engine
                .register_policy("pol", Policy::distance_threshold(domain.clone(), 2))
                .unwrap();
            let rows: Vec<usize> = (0..640).map(|i| (i * 7) % 64).collect();
            engine
                .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
                .unwrap();
            let server = Arc::new(Server::with_defaults(Arc::new(engine)));
            NetServer::bind("127.0.0.1:0", server, NetConfig::default()).unwrap()
        };
        let net = build(77);
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("durable", 1.0).unwrap();
        client
            .call("durable", &Request::range("pol", "ds", eps(0.375), 4, 40))
            .unwrap();
        net.shutdown().unwrap();

        // A fresh serving process recovers the WAL; a fresh client
        // reattaches on the durable ledger.
        let net = build(77);
        let mut client = Client::connect(net.local_addr()).unwrap();
        let remaining = client.open_session("durable", 1.0).unwrap();
        assert!((remaining - 0.625).abs() < 1e-12, "recovered spent ε");
        // Over-budget requests refuse exactly as pre-restart.
        let id = client
            .submit("durable", &Request::range("pol", "ds", eps(0.7), 4, 40))
            .unwrap();
        assert!(matches!(
            client.wait(id),
            Err(NetError::Remote(WireError::BudgetExhausted { .. }))
        ));
        net.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let net = net_server(19, ServerConfig::default(), NetConfig::default());
        // A raw socket speaking a wrong version.
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(net.local_addr()).unwrap();
        let hello = ClientMessage::Hello { id: 1, version: 99 };
        stream
            .write_all(&bf_store::frame_bytes(&hello.encode()))
            .unwrap();
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let reply = loop {
            match bf_store::read_frame(&buf) {
                bf_store::FrameRead::Complete { payload, .. } => {
                    break ServerMessage::decode(payload).unwrap()
                }
                _ => {
                    let n = stream.read(&mut chunk).unwrap();
                    assert!(n > 0, "server closed without replying");
                    buf.extend_from_slice(&chunk[..n]);
                }
            }
        };
        assert!(matches!(
            reply,
            ServerMessage::Refused {
                error: WireError::Protocol(_),
                ..
            }
        ));
        net.shutdown().unwrap();
    }

    /// A raw socket speaking an exact (possibly old) protocol version —
    /// what a v2/v3 binary on the other end of the wire looks like.
    struct RawClient {
        stream: std::net::TcpStream,
        buf: Vec<u8>,
        version: u16,
    }

    impl RawClient {
        fn connect(addr: std::net::SocketAddr, version: u16) -> RawClient {
            let mut raw = RawClient {
                stream: std::net::TcpStream::connect(addr).unwrap(),
                buf: Vec::new(),
                version,
            };
            let reply = raw.call(&ClientMessage::Hello { id: 1, version });
            match reply {
                ServerMessage::Welcome {
                    version: negotiated,
                    ..
                } => assert_eq!(negotiated, version, "server must negotiate down"),
                other => panic!("expected Welcome, got {other:?}"),
            }
            raw
        }

        fn call(&mut self, msg: &ClientMessage) -> ServerMessage {
            use std::io::Write;
            self.stream
                .write_all(&bf_store::frame_bytes(&msg.encode_for(self.version)))
                .unwrap();
            self.read_reply()
        }

        fn read_reply(&mut self) -> ServerMessage {
            use std::io::Read;
            let mut chunk = [0u8; 4096];
            loop {
                if let bf_store::FrameRead::Complete { payload, consumed } =
                    bf_store::read_frame(&self.buf)
                {
                    let reply = ServerMessage::decode_for(payload, self.version).unwrap();
                    self.buf.drain(..consumed);
                    return reply;
                }
                let n = self.stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed mid-call");
                self.buf.extend_from_slice(&chunk[..n]);
            }
        }
    }

    #[test]
    fn old_protocol_versions_negotiate_down_and_round_trip() {
        let net = net_server(23, ServerConfig::default(), NetConfig::default());
        for version in MIN_PROTOCOL_VERSION..PROTOCOL_VERSION {
            let analyst = format!("old-v{version}");
            let mut raw = RawClient::connect(net.local_addr(), version);
            let token = match raw.call(&ClientMessage::OpenSession {
                id: 2,
                analyst: analyst.clone(),
                total_bits: 4.0f64.to_bits(),
            }) {
                ServerMessage::SessionAttached {
                    remaining_bits,
                    token,
                    ..
                } => {
                    assert_eq!(f64::from_bits(remaining_bits), 4.0);
                    // Pre-v4 dialects have no token field; decode_for
                    // backfills zero. v4 carries a real token.
                    if version < 4 {
                        assert_eq!(token, 0);
                    } else {
                        assert_ne!(token, 0);
                    }
                    token
                }
                other => panic!("expected SessionAttached, got {other:?}"),
            };
            // A submit without the pre-v4 optional fields still serves —
            // token enforcement must not lock out downgraded clients
            // (v4 connections present the token they were issued).
            match raw.call(&ClientMessage::Submit {
                id: 3,
                analyst: analyst.clone(),
                request: crate::proto::WireRequest::from_request(&Request::range(
                    "pol",
                    "ds",
                    eps(0.25),
                    4,
                    40,
                )),
                request_id: Some(9),
                deadline_micros: None,
                trace_id: None,
                token: (version >= 4).then_some(token),
            }) {
                ServerMessage::Answer { id, response, .. } => {
                    assert_eq!(id, 3);
                    assert!(response.to_response().scalar().unwrap().is_finite());
                }
                other => panic!("expected Answer, got {other:?}"),
            }
        }
        net.shutdown().unwrap();
    }

    #[test]
    fn session_tokens_gate_submit_and_audit_on_v4_connections() {
        let dir = bf_store::scratch_dir("net-tokens");
        let store = Arc::new(bf_engine::Store::open(&dir).unwrap());
        let engine = Engine::with_store(24, store);
        let domain = Domain::line(64).unwrap();
        engine
            .register_policy("pol", Policy::distance_threshold(domain.clone(), 2))
            .unwrap();
        let rows: Vec<usize> = (0..640).map(|i| (i * 7) % 64).collect();
        engine
            .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
            .unwrap();
        let server = Arc::new(Server::with_defaults(Arc::new(engine)));
        let net = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).unwrap();

        // A full client attaches, learns its token, and serves normally
        // (tokens ride along invisibly).
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("alice", 4.0).unwrap();
        let token = client.session_token("alice").unwrap();
        assert_ne!(token, 0);
        assert_eq!(net.session_token("alice"), Some(token));
        client
            .call("alice", &Request::range("pol", "ds", eps(0.25), 4, 40))
            .unwrap();
        assert!(!client.audit("alice").unwrap().is_empty());

        // A v4 connection omitting or forging the token is refused.
        let mut raw = RawClient::connect(net.local_addr(), PROTOCOL_VERSION);
        let submit = |token: Option<u64>, id: u64| ClientMessage::Submit {
            id,
            analyst: "alice".into(),
            request: crate::proto::WireRequest::from_request(&Request::range(
                "pol",
                "ds",
                eps(0.25),
                4,
                40,
            )),
            request_id: None,
            deadline_micros: None,
            trace_id: None,
            token,
        };
        match raw.call(&submit(None, 10)) {
            ServerMessage::Refused {
                error: WireError::InvalidRequest(msg),
                ..
            } => assert!(msg.contains("token"), "got {msg}"),
            other => panic!("expected token refusal, got {other:?}"),
        }
        match raw.call(&submit(Some(token ^ 1), 11)) {
            ServerMessage::Refused {
                error: WireError::InvalidRequest(_),
                ..
            } => {}
            other => panic!("expected token refusal, got {other:?}"),
        }
        // Audit needs attach *and* the token.
        match raw.call(&ClientMessage::OpenSession {
            id: 12,
            analyst: "alice".into(),
            total_bits: 4.0f64.to_bits(),
        }) {
            ServerMessage::SessionAttached { token: issued, .. } => {
                assert_eq!(issued, token, "tokens are process-stable");
            }
            other => panic!("expected SessionAttached, got {other:?}"),
        }
        match raw.call(&ClientMessage::BudgetAudit {
            id: 13,
            analyst: "alice".into(),
            token: None,
        }) {
            ServerMessage::Refused {
                error: WireError::InvalidRequest(msg),
                ..
            } => assert!(msg.contains("token"), "got {msg}"),
            other => panic!("expected token refusal, got {other:?}"),
        }
        // The right token serves both.
        match raw.call(&submit(Some(token), 14)) {
            ServerMessage::Answer { .. } => {}
            other => panic!("expected Answer, got {other:?}"),
        }
        match raw.call(&ClientMessage::BudgetAudit {
            id: 15,
            analyst: "alice".into(),
            token: Some(token),
        }) {
            ServerMessage::AuditReport { entries, .. } => assert!(!entries.is_empty()),
            other => panic!("expected AuditReport, got {other:?}"),
        }
        // Batches charge the same budget, so they pass the same gate —
        // a tokenless batch must not sidestep what Submit enforces.
        let batch = |token: Option<u64>, id: u64| ClientMessage::SubmitBatch {
            id,
            analyst: "alice".into(),
            requests: vec![crate::proto::WireRequest::from_request(&Request::range(
                "pol",
                "ds",
                eps(0.25),
                4,
                40,
            ))],
            token,
        };
        match raw.call(&batch(None, 16)) {
            ServerMessage::Refused {
                error: WireError::InvalidRequest(msg),
                ..
            } => assert!(msg.contains("token"), "got {msg}"),
            other => panic!("expected token refusal, got {other:?}"),
        }
        match raw.call(&batch(Some(token), 17)) {
            ServerMessage::BatchAnswer { slots, .. } => {
                assert_eq!(slots.len(), 1);
                assert!(slots[0].is_ok());
            }
            other => panic!("expected BatchAnswer, got {other:?}"),
        }
        // Client-supplied idempotency keys must stay out of the range
        // reserved for log-position-derived ones.
        match raw.call(&ClientMessage::Submit {
            id: 18,
            analyst: "alice".into(),
            request: crate::proto::WireRequest::from_request(&Request::range(
                "pol",
                "ds",
                eps(0.25),
                4,
                40,
            )),
            request_id: Some(crate::proto::RESERVED_REQUEST_ID_BASE),
            deadline_micros: None,
            trace_id: None,
            token: Some(token),
        }) {
            ServerMessage::Refused {
                error: WireError::InvalidRequest(msg),
                ..
            } => assert!(msg.contains("reserved"), "got {msg}"),
            other => panic!("expected reserved-range refusal, got {other:?}"),
        }
        net.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A scripted [`ReplicaHook`]: either a "leader" that executes
    /// sequenced writes straight through an engine, or a "follower"
    /// that refuses writes with a leader hint and optionally reports
    /// itself stale for reads.
    struct TestHook {
        engine: Option<Arc<Engine>>,
        leader_hint: String,
        stale: Option<u64>,
        next_rid: std::sync::atomic::AtomicU64,
    }

    impl ReplicaHook for TestHook {
        fn sequence_submit(
            &self,
            analyst: &str,
            request_id: Option<u64>,
            request: Request,
        ) -> Result<bf_server::Ticket, WireError> {
            let Some(engine) = &self.engine else {
                return Err(WireError::NotLeader {
                    leader: self.leader_hint.clone(),
                });
            };
            let rid = request_id.unwrap_or_else(|| {
                (1 << 62)
                    | self
                        .next_rid
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            });
            let (resolver, ticket) = bf_server::Ticket::pair();
            resolver.resolve(
                engine
                    .serve_tagged(analyst, rid, &request)
                    .map_err(bf_server::ServerError::Engine),
            );
            Ok(ticket)
        }

        fn sequence_open(&self, analyst: &str, total_bits: u64) -> Result<f64, WireError> {
            let Some(engine) = &self.engine else {
                return Err(WireError::NotLeader {
                    leader: self.leader_hint.clone(),
                });
            };
            let total = bf_core::Epsilon::new(f64::from_bits(total_bits))
                .map_err(|e| WireError::InvalidRequest(e.to_string()))?;
            engine
                .attach_session(analyst, total)
                .map_err(|e| WireError::from_engine_error(&e))
        }

        fn refuse_read(&self) -> Option<WireError> {
            self.stale
                .map(|lag_entries| WireError::StaleReplica { lag_entries })
        }
    }

    #[test]
    fn replica_role_routes_writes_through_the_hook() {
        let engine = engine(25);
        let server = Arc::new(Server::with_defaults(Arc::clone(&engine)));
        let hook = Arc::new(TestHook {
            engine: Some(Arc::clone(&engine)),
            leader_hint: String::new(),
            stale: None,
            next_rid: std::sync::atomic::AtomicU64::new(1),
        });
        let net = NetServer::bind(
            "127.0.0.1:0",
            server,
            NetConfig {
                role: ServerRole::Replica(hook),
                ..NetConfig::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(net.local_addr()).unwrap();
        // OpenSession sequences through the hook…
        assert_eq!(client.open_session("h", 2.0).unwrap(), 2.0);
        // …and so do submits: the answer comes from the hook's engine
        // execution, not the local scheduler.
        let resp = client
            .call("h", &Request::range("pol", "ds", eps(0.5), 4, 40))
            .unwrap();
        assert!(resp.scalar().unwrap().is_finite());
        assert_eq!(net.server().stats().answered, 0, "scheduler bypassed");
        // Reads serve locally when the hook does not object.
        assert!((client.budget("h").unwrap().spent - 0.5).abs() < 1e-12);
        net.shutdown().unwrap();
    }

    #[test]
    fn follower_refuses_writes_and_stale_reads() {
        let net = net_server(
            26,
            ServerConfig::default(),
            NetConfig {
                role: ServerRole::Replica(Arc::new(TestHook {
                    engine: None,
                    leader_hint: "10.0.0.9:4040".into(),
                    stale: Some(7),
                    next_rid: std::sync::atomic::AtomicU64::new(1),
                })),
                ..NetConfig::default()
            },
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        assert!(matches!(
            client.open_session("f", 1.0),
            Err(NetError::Remote(WireError::NotLeader { leader })) if leader == "10.0.0.9:4040"
        ));
        assert!(matches!(
            client.budget("f"),
            Err(NetError::Remote(WireError::StaleReplica { lag_entries: 7 }))
        ));
        assert!(matches!(
            client.stats(),
            Err(NetError::Remote(WireError::StaleReplica { .. }))
        ));
        net.shutdown().unwrap();
    }

    #[test]
    fn not_leader_redirects_call_idempotent_to_the_hinted_leader() {
        // The "leader": a standalone server whose engine already has the
        // session (opened in-process, so no token gate applies).
        let leader = net_server(27, ServerConfig::default(), NetConfig::default());
        leader
            .server()
            .engine()
            .attach_session("redir", eps(2.0))
            .unwrap();
        // The "follower" refuses writes, hinting at the leader.
        let follower = net_server(
            27,
            ServerConfig::default(),
            NetConfig {
                role: ServerRole::Replica(Arc::new(TestHook {
                    engine: None,
                    leader_hint: leader.local_addr().to_string(),
                    stale: None,
                    next_rid: std::sync::atomic::AtomicU64::new(1),
                })),
                ..NetConfig::default()
            },
        );
        let mut client = Client::connect(follower.local_addr()).unwrap();
        let resp = client
            .call_idempotent(
                "redir",
                &Request::range("pol", "ds", eps(0.5), 4, 40),
                &RetryPolicy::default(),
            )
            .unwrap();
        assert!(resp.scalar().unwrap().is_finite());
        assert_eq!(
            client.addr(),
            leader.local_addr(),
            "client followed the hint"
        );
        follower.shutdown().unwrap();
        leader.shutdown().unwrap();
    }

    #[test]
    fn connect_cluster_skips_unreachable_members() {
        // A member that refuses the dial: bind, learn the port, drop.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let net = net_server(28, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect_cluster(&[dead, net.local_addr()][..]).unwrap();
        assert_eq!(client.addr(), net.local_addr());
        client.open_session("c", 1.0).unwrap();
        assert!(client
            .call("c", &Request::range("pol", "ds", eps(0.25), 4, 40))
            .is_ok());
        net.shutdown().unwrap();
    }

    #[test]
    fn stats_over_the_wire_cover_every_layer() {
        let net = net_server(22, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("s", 10.0).unwrap();
        for i in 0..8 {
            client
                .call("s", &Request::range("pol", "ds", eps(0.25), i, i + 16))
                .unwrap();
        }
        let metrics = client.stats().unwrap();
        let find = |name: &str| {
            metrics
                .iter()
                .find(|m| m.name() == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        // One report spans the TCP, scheduler, engine and span layers.
        match find("net_frames_in_total") {
            WireMetric::Counter { value, .. } => assert!(*value >= 10),
            other => panic!("expected counter, got {other:?}"),
        }
        match find("server_answered_total") {
            WireMetric::Counter { value, .. } => assert_eq!(*value, 8),
            other => panic!("expected counter, got {other:?}"),
        }
        match find("net_request_ns") {
            WireMetric::Histogram { count, p99, .. } => {
                assert_eq!(*count, 8);
                assert!(*p99 > 0, "p99 must be reported");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match find("net_window_occupancy") {
            WireMetric::Histogram { count, .. } => assert_eq!(*count, 8),
            other => panic!("expected histogram, got {other:?}"),
        }
        find("engine_cache_hits_total");
        find("engine_epsilon_spent{analyst=\"s\"}");
        find("span_stage_ns{stage=\"decode\"}");
        find("span_stage_ns{stage=\"reply\"}");
        find("span_stage_ns{stage=\"release\"}");
        // Busy ticks were recorded (each served frame is a productive
        // handler pass).
        match find("net_tick_busy_ns") {
            WireMetric::Histogram { count, .. } => assert!(*count > 0),
            other => panic!("expected histogram, got {other:?}"),
        }
        // And the samples render through bf-obs unchanged.
        let snaps: Vec<bf_obs::MetricSnapshot> =
            metrics.iter().map(WireMetric::to_snapshot).collect();
        let text = bf_obs::render_prometheus(&snaps);
        assert!(text.contains("net_request_ns{quantile=\"0.99\"}"));
        assert!(text.contains("server_answered_total 8"));
        net.shutdown().unwrap();
    }

    #[test]
    fn cluster_frames_refused_below_v5_with_clean_protocol_error() {
        let net = net_server(29, ServerConfig::default(), NetConfig::default());
        // The encoder emits the v5 frames regardless of the negotiated
        // version (a buggy or malicious peer can always put the bytes
        // on the wire); the server must refuse them cleanly on every
        // pre-v5 connection, not hang or misparse.
        type FrameCtor = fn() -> ClientMessage;
        let frames: [(&str, FrameCtor); 3] = [
            ("ClusterStats", || ClientMessage::ClusterStats { id: 2 }),
            ("Health", || ClientMessage::Health { id: 2 }),
            ("Watch", || ClientMessage::Watch { id: 2 }),
        ];
        for version in MIN_PROTOCOL_VERSION..PROTOCOL_VERSION {
            for (what, frame) in &frames {
                // Fresh connection per probe: the server closes after a
                // protocol refusal.
                let mut raw = RawClient::connect(net.local_addr(), version);
                use std::io::Write;
                raw.stream
                    .write_all(&bf_store::frame_bytes(&frame().encode()))
                    .unwrap();
                let reply = raw.read_reply();
                match reply {
                    ServerMessage::Refused {
                        error: WireError::Protocol(msg),
                        ..
                    } => assert!(
                        msg.contains("undecodable"),
                        "{what} on v{version}: got {msg}"
                    ),
                    other => {
                        panic!("{what} on v{version}: expected Protocol refusal, got {other:?}")
                    }
                }
            }
        }
        // On a full-protocol connection the same frames serve.
        let mut client = Client::connect(net.local_addr()).unwrap();
        assert!(!client.cluster_stats().unwrap().is_empty());
        client.health().unwrap();
        net.shutdown().unwrap();
    }

    #[test]
    fn standalone_cluster_stats_health_and_watch() {
        let net = net_server(30, ServerConfig::default(), NetConfig::default());

        // A watcher subscribed before any traffic flows.
        let mut watcher = Client::connect(net.local_addr()).unwrap();
        let mut watch = watcher.watch().unwrap();

        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("w", 4.0).unwrap();
        client
            .call("w", &Request::range("pol", "ds", eps(0.5), 0, 16))
            .unwrap();

        // Federated scrape of a fleet of one: exactly the local node,
        // labeled with the configured name, carrying real metrics.
        let replicas = client.cluster_stats().unwrap();
        assert_eq!(replicas.len(), 1);
        assert_eq!(replicas[0].node, "standalone");
        assert!(replicas[0].reachable);
        assert!(replicas[0]
            .metrics
            .iter()
            .any(|m| m.name() == "server_answered_total"));
        // The merge helper qualifies every series with the source.
        let merged = bf_obs::merge_labeled_snapshots(
            "replica",
            replicas
                .iter()
                .map(|r| {
                    (
                        r.node.clone(),
                        r.metrics.iter().map(WireMetric::to_snapshot).collect(),
                    )
                })
                .collect(),
        );
        assert!(merged
            .iter()
            .any(|m| m.name() == "server_answered_total{replica=\"standalone\"}"));

        // Health: cheap, role-bearing, nothing firing without SLOs.
        let health = client.health().unwrap();
        assert_eq!(health.role, "standalone");
        assert!(health.firing.is_empty());
        assert!(health.unreachable.is_empty());

        // The served request published stage events to the open watch.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut saw_stage = false;
        while !saw_stage && std::time::Instant::now() < deadline {
            match watch.next(Duration::from_millis(100)).unwrap() {
                Some(ev) if ev.kind == bf_obs::ClusterEventKind::Stage => saw_stage = true,
                Some(_) | None => {}
            }
        }
        assert!(saw_stage, "stage event never reached the watcher");

        client.goodbye().unwrap();
        net.shutdown().unwrap();
    }

    #[test]
    fn budget_burn_slo_fires_on_scrapes_and_health_reports_it() {
        let net = net_server(
            31,
            ServerConfig::default(),
            NetConfig {
                slos: vec![bf_obs::SloSpec {
                    name: "hot-burn".into(),
                    objective: bf_obs::SloObjective::BudgetBurnUnder {
                        analyst: "hot".into(),
                        max_eps_per_scrape: 0.01,
                    },
                }],
                ..NetConfig::default()
            },
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("hot", 4.0).unwrap();
        client
            .call("hot", &Request::range("pol", "ds", eps(0.5), 0, 16))
            .unwrap();
        client.stats().unwrap(); // first sample: spent 0.5
        let health = client.health().unwrap();
        assert!(
            health.firing.is_empty(),
            "one sample cannot establish a burn rate"
        );
        client
            .call("hot", &Request::range("pol", "ds", eps(0.5), 0, 16))
            .unwrap();
        // Next scrape: Δspent = 0.5 per interval, far over the bound.
        let health = client.health().unwrap();
        assert_eq!(health.firing, vec!["hot-burn".to_string()]);
        // The SLO gauges ride every subsequent scrape.
        let metrics = client.stats().unwrap();
        let firing = metrics
            .iter()
            .find(|m| m.name() == "slo_firing{slo=\"hot-burn\"}")
            .expect("slo_firing gauge missing from scrape");
        match firing {
            WireMetric::Gauge { bits, .. } => assert_eq!(f64::from_bits(*bits), 1.0),
            other => panic!("expected gauge, got {other:?}"),
        }
        net.shutdown().unwrap();
    }

    #[test]
    fn same_seed_runs_are_byte_identical_across_connections() {
        let run = || -> Vec<u64> {
            let net = net_server(21, ServerConfig::default(), NetConfig::default());
            let mut answers = Vec::new();
            let mut client = Client::connect(net.local_addr()).unwrap();
            client.open_session("d", 10.0).unwrap();
            for i in 0..8 {
                let resp = client
                    .call("d", &Request::range("pol", "ds", eps(0.25), i, i + 16))
                    .unwrap();
                match resp {
                    Response::Scalar(v) => answers.push(v.to_bits()),
                    other => panic!("expected scalar, got {other:?}"),
                }
            }
            net.shutdown().unwrap();
            answers
        };
        assert_eq!(run(), run());
    }
}
