//! The versioned binary wire protocol.
//!
//! ## Frame layout
//!
//! Every message travels in one frame, reusing `bf-store`'s WAL
//! record-framing discipline byte for byte
//! ([`bf_store::frame_bytes`] / [`bf_store::read_frame`]):
//!
//! ```text
//! ┌───────────┬───────────────┬──────────────┐
//! │ len: u32  │ checksum: u64 │ payload      │   all little-endian
//! └───────────┴───────────────┴──────────────┘
//! ```
//!
//! `checksum` is FNV-1a over the payload. A frame that fails its
//! checksum, exceeds [`bf_store::MAX_RECORD_LEN`], or decodes to
//! anything but a well-formed message kills the connection — framing
//! damage is never "wait for more bytes", and a flipped byte is never
//! misparsed as a different message (the corruption sweep in the tests
//! pins this).
//!
//! ## Message catalog
//!
//! | direction | message | purpose |
//! |---|---|---|
//! | C→S | [`ClientMessage::Hello`] | version handshake, first frame on every connection |
//! | C→S | [`ClientMessage::OpenSession`] | open **or reattach** an analyst session (PR 4 recovery path) |
//! | C→S | [`ClientMessage::Submit`] | one query (histogram / cumulative / range / linear / k-means) |
//! | C→S | [`ClientMessage::SubmitBatch`] | several queries answered as one correlated batch |
//! | C→S | [`ClientMessage::Budget`] | ledger snapshot for an analyst |
//! | C→S | [`ClientMessage::Stats`] | process-wide metrics snapshot (PR 6 introspection) |
//! | C→S | [`ClientMessage::Traces`] | retained trace-tree exemplars (PR 8 distributed tracing) |
//! | C→S | [`ClientMessage::BudgetAudit`] | an analyst's full ε-provenance ledger history (PR 8; connection must have attached the session) |
//! | C→S | [`ClientMessage::LogCatchup`] | replica peer: follower subscribes to the replicated log from an index (v4) |
//! | C→S | [`ClientMessage::ReplicateAck`] | replica peer: follower acknowledges an entry durable in its own WAL (v4) |
//! | C→S | [`ClientMessage::PeerStatus`] | replica peer: read-only probe of a peer's durable log position (v4, pre-promotion check) |
//! | C→S | [`ClientMessage::ClusterStats`] | federated scrape: the serving node fans stats probes to every peer (v5) |
//! | C→S | [`ClientMessage::Health`] | one cheap health/SLO probe, load-balancer friendly (v5) |
//! | C→S | [`ClientMessage::Watch`] | subscribe this connection to the node's live event bus (v5) |
//! | C→S | [`ClientMessage::Goodbye`] | orderly close (the server drains in-flight work first) |
//! | S→C | [`ServerMessage::Welcome`] | handshake accept, carries the **negotiated** version |
//! | S→C | [`ServerMessage::SessionAttached`] | session opened/reattached, remaining ε + session token (v4) |
//! | S→C | [`ServerMessage::Answer`] | a submitted query's response (echoes the trace id, when traced) |
//! | S→C | [`ServerMessage::BatchAnswer`] | per-slot responses for a batch |
//! | S→C | [`ServerMessage::BudgetReport`] | ledger snapshot |
//! | S→C | [`ServerMessage::StatsReport`] | every registered metric, one [`WireMetric`] each |
//! | S→C | [`ServerMessage::TraceReport`] | the retained trace trees, one [`bf_obs::TraceTree`] each |
//! | S→C | [`ServerMessage::AuditReport`] | the ledger history, one [`bf_store::LedgerEntry`] each |
//! | S→C | [`ServerMessage::Refused`] | typed error for the correlated request (echoes the trace id) |
//! | S→C | [`ServerMessage::Replicate`] | replica peer: leader streams log entries + its commit index (v4) |
//! | S→C | [`ServerMessage::PeerStatusReport`] | replica peer: the probed peer's epoch and durable/applied log marks (v4) |
//! | S→C | [`ServerMessage::ClusterStatsReport`] | the whole fleet's metrics, one replica-labeled [`WireReplicaStats`] per member (v5) |
//! | S→C | [`ServerMessage::HealthReport`] | role, epoch, lag, WAL depth, queue depth, unreachable peers, firing SLOs (v5) |
//! | S→C | [`ServerMessage::Event`] | one live event pushed to an open watch subscription (v5) |
//! | S→C | [`ServerMessage::Farewell`] | goodbye acknowledged, connection closing |
//!
//! Every message carries a client-assigned **correlation id**; replies
//! echo it, so a client may pipeline any number of requests on one
//! connection and match answers out of order.
//!
//! ## Version negotiation
//!
//! The first frame on a connection is [`ClientMessage::Hello`] carrying
//! the version the client speaks. The server accepts any version in
//! `[`[`MIN_PROTOCOL_VERSION`]`, `[`PROTOCOL_VERSION`]`]` and echoes the
//! **minimum of the two** in [`ServerMessage::Welcome`]; every later
//! frame on the connection is encoded and decoded at that negotiated
//! version ([`ClientMessage::encode_for`] /
//! [`ClientMessage::decode_for`] and the server-side twins), which
//! simply omits the fields the older version never defined. A v2 client
//! therefore talks to a v5 replica unchanged — the rolling-upgrade
//! path — while anything older than v2 (or newer than the server) is
//! still refused outright. Frames a negotiated version never defined
//! (the v4 peer frames, the v5 cluster plane) refuse to decode on that
//! connection: an old client probing [`ClientMessage::ClusterStats`]
//! or [`ClientMessage::Watch`] gets a clean
//! [`WireError::Protocol`] refusal, never a misparse or a hang.
//!
//! ε values travel as exact `f64` bit patterns (`_bits` fields), the
//! same discipline the WAL uses — a budget decision made over the wire
//! is bit-identical to one made in process.
//!
//! ## Trust model
//!
//! The protocol has no authentication: every connected client is a
//! trusted curator-side process, and aggregate introspection
//! ([`ClientMessage::Budget`], [`ClientMessage::Stats`],
//! [`ClientMessage::Traces`] — trace trees name analysts and stages,
//! not query contents) is served to any connection. The one exception
//! is [`ClientMessage::BudgetAudit`]: per-record labels and exact ε
//! charges are a materially larger disclosure, so the server refuses
//! it unless the requesting **connection** attached the analyst's
//! session via [`ClientMessage::OpenSession`] — which requires the
//! session's original ε total, a capability strangers don't hold.
//! Deployments needing real multi-tenant isolation must front the
//! port with transport-level auth.

use bf_engine::{Request, RequestKind, Response};
use bf_mechanisms::kmeans::KmeansSecretSpec;
use bf_obs::{Stage, TraceId, TraceSpan, TraceTree};
use bf_store::{put_str, put_u64, LedgerEntry, Reader};

/// Protocol version this build speaks. The handshake negotiates down to
/// the older of the two sides (see the module docs) and refuses
/// anything below [`MIN_PROTOCOL_VERSION`]. Version 2 added
/// exactly-once retry support:
/// [`ClientMessage::Submit`] carries an optional idempotency key
/// (`request_id`) and an optional scheduling deadline, and
/// [`WireError`] gained [`WireError::Overloaded`] /
/// [`WireError::DeadlineExceeded`] for the server's graceful
/// degradation under load. Version 3 added request-scoped distributed
/// tracing ([`ClientMessage::Submit`] carries an optional
/// client-assigned trace id, [`ServerMessage::Answer`] /
/// [`ServerMessage::Refused`] echo it, and
/// [`ClientMessage::Traces`] / [`ServerMessage::TraceReport`] scrape
/// the retained trace trees) and the ε-provenance audit
/// ([`ClientMessage::BudgetAudit`] / [`ServerMessage::AuditReport`]).
/// Version 4 added replicated serving — the peer frames
/// [`ClientMessage::LogCatchup`] / [`ClientMessage::ReplicateAck`] /
/// [`ClientMessage::PeerStatus`] / [`ServerMessage::Replicate`] /
/// [`ServerMessage::PeerStatusReport`], the [`WireError::NotLeader`] /
/// [`WireError::StaleReplica`] / [`WireError::LogDiverged`] refusals —
/// plus the session-token handshake
/// ([`ServerMessage::SessionAttached`] issues a token that later
/// [`ClientMessage::Submit`] / [`ClientMessage::SubmitBatch`] /
/// [`ClientMessage::BudgetAudit`] frames for that analyst must
/// present) and version negotiation itself. Version 5 added the
/// cluster observability plane: federated scrape
/// ([`ClientMessage::ClusterStats`] /
/// [`ServerMessage::ClusterStatsReport`] with per-replica
/// [`WireReplicaStats`]), the health probe ([`ClientMessage::Health`] /
/// [`ServerMessage::HealthReport`]) and live event streaming
/// ([`ClientMessage::Watch`] / [`ServerMessage::Event`]).
pub const PROTOCOL_VERSION: u16 = 5;

/// Idempotency keys at or above this value are reserved for the
/// replication layer, which derives a key from the log position
/// (`RESERVED_REQUEST_ID_BASE | index`) for entries submitted without
/// one — every replica must execute under the same tag. Client-supplied
/// `request_id`s in this range are refused at the wire boundary with
/// [`WireError::InvalidRequest`]: a client key colliding with a derived
/// key would alias another request's cached reply.
pub const RESERVED_REQUEST_ID_BASE: u64 = 1 << 62;

/// Oldest protocol version the handshake still accepts. Version 1 had
/// no idempotency keys, so a v1 client could double-charge through a
/// retry — below this floor the server refuses rather than downgrade.
pub const MIN_PROTOCOL_VERSION: u16 = 2;

/// A query as it travels the wire: names, exact ε bits, and the kind
/// payload. Conversion to an engine [`Request`] validates ε.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Registered policy name.
    pub policy: String,
    /// Registered dataset / point-set name.
    pub data: String,
    /// ε as `f64` bits.
    pub epsilon_bits: u64,
    /// Which query family, with its parameters.
    pub kind: WireRequestKind,
}

/// The query families, mirroring [`RequestKind`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequestKind {
    /// Complete histogram.
    Histogram,
    /// Cumulative histogram (Ordered Mechanism).
    Cumulative,
    /// Range count `[lo, hi]`, inclusive.
    Range {
        /// Inclusive lower endpoint.
        lo: u64,
        /// Inclusive upper endpoint.
        hi: u64,
    },
    /// Linear query; weights as exact `f64` bits.
    Linear {
        /// One weight per domain value, as bits.
        weight_bits: Vec<u64>,
    },
    /// Private k-means over a registered point set.
    Kmeans {
        /// Cluster count.
        k: u64,
        /// Lloyd iterations.
        iterations: u64,
        /// Sensitive-information spec.
        spec: WireKmeansSpec,
    },
}

/// [`KmeansSecretSpec`] on the wire (parameters as `f64` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireKmeansSpec {
    /// Full-domain secrets.
    Full,
    /// Attribute secrets.
    Attribute,
    /// Distance-threshold secrets, θ in physical units (bits).
    L1Threshold(u64),
    /// Partitioned secrets, max block diameter (bits).
    PartitionMaxDiameter(u64),
    /// All-singleton partition (exact clustering).
    Exact,
}

/// A served answer on the wire, mirroring [`Response`] with every float
/// as exact bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// Noisy per-value counts.
    Histogram(Vec<u64>),
    /// Noisy prefix counts.
    Prefixes(Vec<u64>),
    /// A single noisy number.
    Scalar(u64),
    /// Final k-means centroids.
    Centroids(Vec<Vec<u64>>),
}

/// One entry of the replicated log as it travels between replicas
/// (leader → follower inside [`ServerMessage::Replicate`]). The
/// `(epoch, index)` stamp is the entry's identity; followers append
/// entries in index order and make each durable in their own WAL
/// before acknowledging it.
#[derive(Debug, Clone, PartialEq)]
pub struct WireLogEntry {
    /// The sequencing epoch the leader stamped.
    pub epoch: u64,
    /// The entry's monotone log position (1-based).
    pub index: u64,
    /// The analyst the operation belongs to.
    pub analyst: String,
    /// The idempotency key every replica executes the entry under —
    /// client-chosen when the `Submit` carried one, else derived from
    /// the log index by the sequencer.
    pub request_id: u64,
    /// The operation itself.
    pub op: WireLogOp,
}

/// The operations that travel the replicated log. Session opens are in
/// the log too — replicas must agree on ledger *totals*, not just
/// charges, or a failover could resurrect ε.
#[derive(Debug, Clone, PartialEq)]
pub enum WireLogOp {
    /// Open (or reattach) the analyst's session with a total ε budget.
    OpenSession {
        /// Total ε as bits.
        total_bits: u64,
    },
    /// Serve one query and charge its ledger.
    Submit {
        /// The query.
        request: WireRequest,
    },
}

impl WireLogOp {
    /// Encodes the op standalone (the byte payload a
    /// `bf_store::Record::Replicated` frame carries).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        encode_log_op(&mut out, self);
        out
    }

    /// Decodes [`WireLogOp::encode`] output; `None` for anything
    /// malformed (a recovering replica must stop, not guess).
    pub fn decode(payload: &[u8]) -> Option<WireLogOp> {
        let mut r = Reader::new(payload);
        let op = decode_log_op(&mut r)?;
        r.done().then_some(op)
    }
}

/// One metric sample in a [`ServerMessage::StatsReport`] — the wire
/// mirror of `bf_obs::MetricSnapshot`, with gauge values carried as
/// exact `f64` bit patterns and histogram summaries flattened to their
/// count/sum/max and quantile estimates (nanoseconds for the `_ns`
/// instruments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMetric {
    /// A monotone counter's total.
    Counter {
        /// Metric name (labels-in-name convention).
        name: String,
        /// Total count.
        value: u64,
    },
    /// A gauge's current value.
    Gauge {
        /// Metric name.
        name: String,
        /// Value as `f64` bits.
        bits: u64,
    },
    /// A latency/size histogram's summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Observations recorded.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Largest observed value.
        max: u64,
        /// Median estimate.
        p50: u64,
        /// 99th percentile estimate.
        p99: u64,
        /// 99.9th percentile estimate.
        p999: u64,
    },
}

impl WireMetric {
    /// Encodes a `bf_obs` snapshot for the wire.
    pub fn from_snapshot(snap: &bf_obs::MetricSnapshot) -> Self {
        use bf_obs::MetricSnapshot as MS;
        match snap {
            MS::Counter { name, value } => WireMetric::Counter {
                name: name.clone(),
                value: *value,
            },
            MS::Gauge { name, value } => WireMetric::Gauge {
                name: name.clone(),
                bits: value.to_bits(),
            },
            MS::Histogram { name, summary } => WireMetric::Histogram {
                name: name.clone(),
                count: summary.count,
                sum: summary.sum,
                max: summary.max,
                p50: summary.p50,
                p99: summary.p99,
                p999: summary.p999,
            },
        }
    }

    /// Decodes back to a `bf_obs` snapshot, bit-exactly.
    pub fn to_snapshot(&self) -> bf_obs::MetricSnapshot {
        use bf_obs::MetricSnapshot as MS;
        match self {
            WireMetric::Counter { name, value } => MS::Counter {
                name: name.clone(),
                value: *value,
            },
            WireMetric::Gauge { name, bits } => MS::Gauge {
                name: name.clone(),
                value: f64::from_bits(*bits),
            },
            WireMetric::Histogram {
                name,
                count,
                sum,
                max,
                p50,
                p99,
                p999,
            } => MS::Histogram {
                name: name.clone(),
                summary: bf_obs::HistogramSummary {
                    count: *count,
                    sum: *sum,
                    max: *max,
                    p50: *p50,
                    p99: *p99,
                    p999: *p999,
                },
            },
        }
    }

    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            WireMetric::Counter { name, .. }
            | WireMetric::Gauge { name, .. }
            | WireMetric::Histogram { name, .. } => name,
        }
    }
}

/// Typed refusals, mirroring `bf-server`'s `ServerError` and the
/// operationally meaningful `bf-engine` `EngineError` variants. Errors
/// a client cannot act on distinctly collapse into
/// [`WireError::Other`] with the server's rendered message.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The analyst's server-side submission queue is full — resubmit
    /// after draining answers.
    QueueFull {
        /// Whose queue.
        analyst: String,
        /// Configured capacity.
        capacity: u64,
    },
    /// This connection's in-flight window is full — read some answers
    /// before submitting more.
    WindowFull {
        /// Configured per-connection window.
        capacity: u64,
    },
    /// Admission control refused: requested ε exceeds the remaining
    /// budget (bits carry exact values).
    BudgetExhausted {
        /// Whose ledger.
        analyst: String,
        /// Requested ε bits.
        requested_bits: u64,
        /// Remaining ε bits.
        remaining_bits: u64,
    },
    /// The ledger refused the charge at serve time.
    BudgetRefused {
        /// Whose ledger.
        analyst: String,
        /// Requested ε bits.
        requested_bits: u64,
        /// Remaining ε bits.
        remaining_bits: u64,
    },
    /// The serving process is shutting down.
    ShutDown,
    /// No policy registered under this name.
    UnknownPolicy(String),
    /// No dataset registered under this name.
    UnknownDataset(String),
    /// No point set registered under this name.
    UnknownPoints(String),
    /// No open session for this analyst.
    UnknownAnalyst(String),
    /// The session was evicted; reopen with the original total.
    SessionEvicted(String),
    /// The request is malformed (or a session total mismatched).
    InvalidRequest(String),
    /// The peer broke the protocol (bad frame, bad handshake, unknown
    /// correlation id).
    Protocol(String),
    /// Any other server-side failure, rendered.
    Other(String),
    /// Load shedding: the server's total backlog is at its configured
    /// shed depth. Nothing was queued or charged; back off and
    /// resubmit.
    Overloaded {
        /// Total queued requests at refusal time.
        depth: u64,
        /// The configured shed threshold.
        limit: u64,
    },
    /// The request's deadline elapsed before dispatch; refused before
    /// any charge.
    DeadlineExceeded {
        /// Whose request expired.
        analyst: String,
    },
    /// This replica is a follower: writes must go to the leader. The
    /// hint is the leader's client-facing address when known, empty
    /// when the follower itself is between leaders.
    NotLeader {
        /// The leader's client address hint (may be empty).
        leader: String,
    },
    /// This follower's replay lags the leader beyond its configured
    /// staleness bound; the read was refused rather than served stale.
    StaleReplica {
        /// Entries logged but not yet applied here.
        lag_entries: u64,
    },
    /// A replica peer refusal: the follower asked to catch up from an
    /// index beyond the leader's durable log — its tail belongs to a
    /// deposed epoch. The follower must truncate its un-applied suffix
    /// back to the leader's high-water mark and resubscribe from there.
    LogDiverged {
        /// The leader's durable log high-water mark (the highest index
        /// the follower may keep).
        leader_high_water: u64,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::QueueFull { analyst, capacity } => {
                write!(f, "queue full for {analyst:?} (capacity {capacity})")
            }
            WireError::WindowFull { capacity } => {
                write!(f, "connection window full (capacity {capacity})")
            }
            WireError::BudgetExhausted {
                analyst,
                requested_bits,
                remaining_bits,
            } => write!(
                f,
                "admission refused for {analyst:?}: requested ε={}, remaining ε={}",
                f64::from_bits(*requested_bits),
                f64::from_bits(*remaining_bits)
            ),
            WireError::BudgetRefused {
                analyst,
                requested_bits,
                remaining_bits,
            } => write!(
                f,
                "budget refused for {analyst:?}: requested ε={}, remaining ε={}",
                f64::from_bits(*requested_bits),
                f64::from_bits(*remaining_bits)
            ),
            WireError::ShutDown => write!(f, "server shutting down"),
            WireError::UnknownPolicy(n) => write!(f, "unknown policy {n:?}"),
            WireError::UnknownDataset(n) => write!(f, "unknown dataset {n:?}"),
            WireError::UnknownPoints(n) => write!(f, "unknown point set {n:?}"),
            WireError::UnknownAnalyst(n) => write!(f, "no open session for analyst {n:?}"),
            WireError::SessionEvicted(n) => write!(
                f,
                "session for {n:?} was evicted; reopen with the original total"
            ),
            WireError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::Other(m) => write!(f, "server error: {m}"),
            WireError::Overloaded { depth, limit } => {
                write!(
                    f,
                    "overloaded: {depth} requests queued (shed depth {limit})"
                )
            }
            WireError::DeadlineExceeded { analyst } => {
                write!(f, "deadline exceeded for {analyst:?} before dispatch")
            }
            WireError::NotLeader { leader } if leader.is_empty() => {
                write!(f, "not the leader (no leader hint)")
            }
            WireError::NotLeader { leader } => {
                write!(f, "not the leader; writes go to {leader}")
            }
            WireError::StaleReplica { lag_entries } => {
                write!(
                    f,
                    "replica {lag_entries} log entries behind its staleness bound"
                )
            }
            WireError::LogDiverged { leader_high_water } => {
                write!(
                    f,
                    "log diverged: truncate to the leader's high water {leader_high_water} \
                     and resubscribe"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Client → server messages. Every variant leads with the correlation
/// id its reply will echo.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Version handshake — must be the first frame on a connection.
    Hello {
        /// Correlation id.
        id: u64,
        /// [`PROTOCOL_VERSION`] the client speaks.
        version: u16,
    },
    /// Open (or reattach) an analyst session with a total ε budget.
    OpenSession {
        /// Correlation id.
        id: u64,
        /// The analyst.
        analyst: String,
        /// Total ε as bits.
        total_bits: u64,
    },
    /// Submit one query.
    Submit {
        /// Correlation id.
        id: u64,
        /// The analyst submitting.
        analyst: String,
        /// The query.
        request: WireRequest,
        /// Durable idempotency key: a resubmission with the same
        /// `(analyst, request_id)` replays the original answer
        /// bit-for-bit at **zero additional ε** instead of drawing a
        /// fresh release. `None` opts out of retry safety.
        request_id: Option<u64>,
        /// Scheduling deadline in microseconds from receipt: refuse
        /// (before any charge) rather than answer late. `None` waits
        /// indefinitely.
        deadline_micros: Option<u64>,
        /// Client-assigned distributed-tracing id: the server threads a
        /// trace context through every pipeline stage this request
        /// touches and retains the finished tree in its exemplar
        /// buffer, scrapeable via [`ClientMessage::Traces`]. `None`
        /// leaves the request untraced (zero overhead).
        trace_id: Option<u64>,
        /// The session token [`ServerMessage::SessionAttached`] issued
        /// (v4). Once a token exists for the analyst, submissions
        /// without it — or with a stale one — are refused with
        /// [`WireError::InvalidRequest`]. `None` on pre-v4 connections
        /// and for sessions opened in-process.
        token: Option<u64>,
    },
    /// Submit several queries answered as one correlated batch (the
    /// server's coalescing window folds compatible members into shared
    /// releases).
    SubmitBatch {
        /// Correlation id.
        id: u64,
        /// The analyst submitting.
        analyst: String,
        /// The queries.
        requests: Vec<WireRequest>,
        /// The session token [`ServerMessage::SessionAttached`] issued
        /// (v4) — required under the same rules as
        /// [`ClientMessage::Submit`]'s; a batch charges the same budget
        /// a single submit does, so it passes the same gate.
        token: Option<u64>,
    },
    /// Ask for an analyst's ledger snapshot.
    Budget {
        /// Correlation id.
        id: u64,
        /// The analyst.
        analyst: String,
    },
    /// Ask for the serving process's full metrics snapshot (engine,
    /// server, net and store registries merged).
    Stats {
        /// Correlation id.
        id: u64,
    },
    /// Ask for the retained trace-tree exemplars (the slowest-N per
    /// stage plus the most recent, as the server's bounded trace
    /// buffer keeps them).
    Traces {
        /// Correlation id.
        id: u64,
    },
    /// Ask for an analyst's complete ε-provenance history — every
    /// durable `Charged`/`Replied` ledger record in WAL total order,
    /// across live **and archived** segments. Refused with
    /// [`WireError::InvalidRequest`] unless this connection attached
    /// the analyst's session (see the module-level trust model).
    BudgetAudit {
        /// Correlation id.
        id: u64,
        /// Whose ledger history.
        analyst: String,
        /// The analyst's session token (v4) — required once one was
        /// issued, like [`ClientMessage::Submit`]'s.
        token: Option<u64>,
    },
    /// Replica peer frame (v4): a follower subscribes to the replicated
    /// log starting at `from_index`, announcing the epoch it last saw.
    /// The leader replies with a stream of [`ServerMessage::Replicate`]
    /// frames (or [`WireError::NotLeader`] if it is not sequencing).
    LogCatchup {
        /// Correlation id.
        id: u64,
        /// Highest epoch the follower has seen — a leader below it must
        /// step down (fencing).
        epoch: u64,
        /// First log index the follower is missing.
        from_index: u64,
        /// Epoch of the follower's last durable entry (0 when its log is
        /// empty). The leader checks it against its own entry at
        /// `from_index - 1` — Raft's log-matching property — and refuses
        /// with [`WireError::LogDiverged`] on a mismatch: the follower
        /// holds an orphan suffix from a dead epoch and must truncate
        /// back to its commit point before resubscribing.
        last_epoch: u64,
    },
    /// Replica peer frame (v4): read-only probe of a peer's durable log
    /// position, answered by [`ServerMessage::PeerStatusReport`]
    /// regardless of the peer's role. A promotion candidate probes the
    /// surviving peers first: promoting a node whose durable log is
    /// shorter than a survivor's would silently drop quorum-acked
    /// entries.
    PeerStatus {
        /// Correlation id.
        id: u64,
    },
    /// Replica peer frame (v4): the follower has made every entry up to
    /// `index` durable in its own WAL. Acks are cumulative — entries
    /// arrive in order, so one ack covers the whole prefix.
    ReplicateAck {
        /// Correlation id (0: unsolicited stream traffic).
        id: u64,
        /// The follower's current epoch (fencing: an ack above the
        /// leader's epoch deposes it).
        epoch: u64,
        /// Durable log high-water mark on the follower.
        index: u64,
    },
    /// Cluster-plane frame (v5): ask the serving node to fan a stats
    /// probe to every configured peer over the peer port and merge the
    /// fleet's snapshots, each source qualified with a
    /// `replica="<node>"` label, answered by
    /// [`ServerMessage::ClusterStatsReport`]. One call covers the
    /// whole cluster; unreachable peers are reported, never silently
    /// dropped.
    ClusterStats {
        /// Correlation id.
        id: u64,
    },
    /// Cluster-plane frame (v5): one cheap health probe suitable for a
    /// load balancer — role, epoch, replication lag, WAL depth, queue
    /// depth, unreachable peers and the firing-SLO list, answered by
    /// [`ServerMessage::HealthReport`].
    Health {
        /// Correlation id.
        id: u64,
    },
    /// Cluster-plane frame (v5): subscribe this connection to the
    /// node's live event bus. The server pushes [`ServerMessage::Event`]
    /// frames echoing this correlation id until the client sends
    /// [`ClientMessage::Goodbye`] or disconnects. The subscription's
    /// queue is bounded: a slow consumer loses events (counted), never
    /// stalls the serving or replication path.
    Watch {
        /// Correlation id every pushed event will echo.
        id: u64,
    },
    /// Orderly close: the server finishes in-flight work, replies
    /// [`ServerMessage::Farewell`], and closes.
    Goodbye {
        /// Correlation id.
        id: u64,
    },
}

/// Server → client messages; `id` echoes the triggering request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// Handshake accepted.
    Welcome {
        /// Correlation id of the `Hello`.
        id: u64,
        /// Version the server speaks.
        version: u16,
    },
    /// Session opened or reattached.
    SessionAttached {
        /// Correlation id.
        id: u64,
        /// Remaining ε as bits (total minus durable spent).
        remaining_bits: u64,
        /// Server-issued session token (v4): later
        /// [`ClientMessage::Submit`] / [`ClientMessage::BudgetAudit`]
        /// frames for this analyst must present it. Stable across
        /// reattaches of the same analyst within one server process;
        /// `0` on pre-v4 connections (no token issued).
        token: u64,
    },
    /// A query's answer.
    Answer {
        /// Correlation id.
        id: u64,
        /// The response.
        response: WireResponse,
        /// The trace id the `Submit` carried, echoed so a pipelining
        /// client can pair answers with the traces it assigned.
        trace_id: Option<u64>,
    },
    /// A batch's per-slot answers, in submission order.
    BatchAnswer {
        /// Correlation id.
        id: u64,
        /// One result per submitted query.
        slots: Vec<Result<WireResponse, WireError>>,
    },
    /// An analyst's ledger snapshot.
    BudgetReport {
        /// Correlation id.
        id: u64,
        /// Total ε bits.
        total_bits: u64,
        /// Spent ε bits.
        spent_bits: u64,
        /// Remaining ε bits.
        remaining_bits: u64,
        /// Requests served.
        served: u64,
    },
    /// The process's metrics snapshot, one sample per registered
    /// metric, sorted by name.
    StatsReport {
        /// Correlation id.
        id: u64,
        /// Every registered metric.
        metrics: Vec<WireMetric>,
    },
    /// The process's retained trace trees.
    TraceReport {
        /// Correlation id.
        id: u64,
        /// The retained exemplars, oldest first.
        traces: Vec<TraceTree>,
    },
    /// An analyst's ε-provenance ledger history, WAL total order.
    AuditReport {
        /// Correlation id.
        id: u64,
        /// One entry per durable charge, oldest first.
        entries: Vec<LedgerEntry>,
    },
    /// The correlated request was refused.
    Refused {
        /// Correlation id.
        id: u64,
        /// Why.
        error: WireError,
        /// The trace id the `Submit` carried (when the refusal
        /// correlates to a traced submission), echoed like
        /// [`ServerMessage::Answer`] does.
        trace_id: Option<u64>,
    },
    /// Replica peer frame (v4): the leader streams log entries in index
    /// order, piggybacking its current commit index — the quorum-durable
    /// prefix followers may execute. A frame may carry zero entries
    /// (a pure commit-index bump).
    Replicate {
        /// Correlation id (0: unsolicited stream traffic).
        id: u64,
        /// The leader's sequencing epoch (fencing: followers refuse
        /// entries from a lower epoch than they have seen).
        epoch: u64,
        /// Highest log index durable on a quorum — followers execute
        /// entries up to `min(commit_index, locally durable)`.
        commit_index: u64,
        /// New entries, in index order.
        entries: Vec<WireLogEntry>,
    },
    /// Replica peer frame (v4): answer to [`ClientMessage::PeerStatus`]
    /// — this peer's durable log position, served regardless of role so
    /// a promotion candidate can verify it holds the longest surviving
    /// log before fencing a new epoch.
    PeerStatusReport {
        /// Correlation id.
        id: u64,
        /// The peer's current sequencing epoch.
        epoch: u64,
        /// Largest durable log index in the peer's WAL.
        high_water: u64,
        /// Largest index executed through the peer's engine.
        applied: u64,
    },
    /// Cluster-plane frame (v5): answer to
    /// [`ClientMessage::ClusterStats`] — one [`WireReplicaStats`] per
    /// cluster member (the serving node first), each metric set
    /// already qualified with its source's `replica="<node>"` label.
    ClusterStatsReport {
        /// Correlation id.
        id: u64,
        /// Per-member snapshots, serving node first, peers in
        /// configured order.
        replicas: Vec<WireReplicaStats>,
    },
    /// Cluster-plane frame (v5): answer to [`ClientMessage::Health`].
    /// Gauges the probe reports (lag, applied) are refreshed from live
    /// node state at probe time, not from the last replication-stream
    /// receipt.
    HealthReport {
        /// Correlation id.
        id: u64,
        /// Serving role: `"leader"`, `"follower"` or `"standalone"`.
        role: String,
        /// Current sequencing epoch (0 when standalone).
        epoch: u64,
        /// Largest log index executed through the engine.
        applied: u64,
        /// Commit-to-apply replication lag in entries.
        lag: u64,
        /// Durable WAL segment count (live plus archived).
        wal_segments: u64,
        /// Queued submissions across every analyst queue.
        queue_depth: u64,
        /// Peer addresses that did not answer a status probe.
        unreachable: Vec<String>,
        /// Names of SLOs currently firing.
        firing: Vec<String>,
    },
    /// Cluster-plane frame (v5): one live event pushed to a
    /// [`ClientMessage::Watch`] subscription (`id` echoes the watch).
    Event {
        /// Correlation id of the subscribing `Watch`.
        id: u64,
        /// Bus sequence number — gaps mean the subscriber's bounded
        /// queue dropped events.
        seq: u64,
        /// What happened.
        kind: WireEventKind,
        /// Human-readable detail (stage name, SLO name, role, trace
        /// outcome).
        detail: String,
        /// Kind-specific magnitude (duration in ns, epoch, 0/1 firing).
        value: u64,
    },
    /// Goodbye acknowledged; the server closes after this frame.
    Farewell {
        /// Correlation id.
        id: u64,
    },
}

/// One cluster member's contribution to a
/// [`ServerMessage::ClusterStatsReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireReplicaStats {
    /// The member's node label (its peer address).
    pub node: String,
    /// Whether the member answered the scrape probe. Unreachable
    /// members carry no metrics but stay in the report so a missing
    /// replica is visible, not silently absent.
    pub reachable: bool,
    /// The member's metrics, each name qualified with
    /// `replica="<node>"`. Empty when unreachable.
    pub metrics: Vec<WireMetric>,
}

/// What a pushed [`ServerMessage::Event`] describes, mirroring
/// [`bf_obs::ClusterEventKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireEventKind {
    /// A pipeline stage completed (obs journal tail).
    Stage,
    /// A traced request finished and its tree was retained.
    Trace,
    /// The node's replication role or epoch changed.
    Role,
    /// An SLO transitioned between ok and firing.
    Slo,
}

impl From<bf_obs::ClusterEventKind> for WireEventKind {
    fn from(kind: bf_obs::ClusterEventKind) -> Self {
        match kind {
            bf_obs::ClusterEventKind::Stage => WireEventKind::Stage,
            bf_obs::ClusterEventKind::Trace => WireEventKind::Trace,
            bf_obs::ClusterEventKind::Role => WireEventKind::Role,
            bf_obs::ClusterEventKind::Slo => WireEventKind::Slo,
        }
    }
}

impl From<WireEventKind> for bf_obs::ClusterEventKind {
    fn from(kind: WireEventKind) -> Self {
        match kind {
            WireEventKind::Stage => bf_obs::ClusterEventKind::Stage,
            WireEventKind::Trace => bf_obs::ClusterEventKind::Trace,
            WireEventKind::Role => bf_obs::ClusterEventKind::Role,
            WireEventKind::Slo => bf_obs::ClusterEventKind::Slo,
        }
    }
}

// ---------------------------------------------------------------------
// Conversions to/from the engine vocabulary
// ---------------------------------------------------------------------

impl WireRequest {
    /// Encodes an engine [`Request`] for the wire (exact ε bits).
    pub fn from_request(request: &Request) -> Self {
        let kind = match &request.kind {
            RequestKind::Histogram => WireRequestKind::Histogram,
            RequestKind::CumulativeHistogram => WireRequestKind::Cumulative,
            RequestKind::Range { lo, hi } => WireRequestKind::Range {
                lo: *lo as u64,
                hi: *hi as u64,
            },
            RequestKind::Linear { weights } => WireRequestKind::Linear {
                weight_bits: weights.iter().map(|w| w.to_bits()).collect(),
            },
            RequestKind::KMeans {
                k,
                iterations,
                spec,
            } => WireRequestKind::Kmeans {
                k: *k as u64,
                iterations: *iterations as u64,
                spec: WireKmeansSpec::from_spec(*spec),
            },
        };
        Self {
            policy: request.policy.clone(),
            data: request.data.clone(),
            epsilon_bits: request.epsilon.value().to_bits(),
            kind,
        }
    }

    /// Decodes into an engine [`Request`].
    ///
    /// # Errors
    ///
    /// [`WireError::InvalidRequest`] when the ε bits are not a valid
    /// budget (negative, NaN, infinite).
    pub fn to_request(&self) -> Result<Request, WireError> {
        let epsilon = bf_core::Epsilon::new(f64::from_bits(self.epsilon_bits))
            .map_err(|e| WireError::InvalidRequest(e.to_string()))?;
        let kind = match &self.kind {
            WireRequestKind::Histogram => RequestKind::Histogram,
            WireRequestKind::Cumulative => RequestKind::CumulativeHistogram,
            WireRequestKind::Range { lo, hi } => RequestKind::Range {
                lo: *lo as usize,
                hi: *hi as usize,
            },
            WireRequestKind::Linear { weight_bits } => RequestKind::Linear {
                weights: weight_bits.iter().map(|b| f64::from_bits(*b)).collect(),
            },
            WireRequestKind::Kmeans {
                k,
                iterations,
                spec,
            } => RequestKind::KMeans {
                k: *k as usize,
                iterations: *iterations as usize,
                spec: spec.to_spec(),
            },
        };
        Ok(Request {
            policy: self.policy.clone(),
            data: self.data.clone(),
            epsilon,
            kind,
        })
    }
}

impl WireKmeansSpec {
    /// Encodes a [`KmeansSecretSpec`].
    pub fn from_spec(spec: KmeansSecretSpec) -> Self {
        match spec {
            KmeansSecretSpec::Full => WireKmeansSpec::Full,
            KmeansSecretSpec::Attribute => WireKmeansSpec::Attribute,
            KmeansSecretSpec::L1Threshold(t) => WireKmeansSpec::L1Threshold(t.to_bits()),
            KmeansSecretSpec::PartitionMaxDiameter(d) => {
                WireKmeansSpec::PartitionMaxDiameter(d.to_bits())
            }
            KmeansSecretSpec::Exact => WireKmeansSpec::Exact,
        }
    }

    /// Decodes back to a [`KmeansSecretSpec`].
    pub fn to_spec(self) -> KmeansSecretSpec {
        match self {
            WireKmeansSpec::Full => KmeansSecretSpec::Full,
            WireKmeansSpec::Attribute => KmeansSecretSpec::Attribute,
            WireKmeansSpec::L1Threshold(b) => KmeansSecretSpec::L1Threshold(f64::from_bits(b)),
            WireKmeansSpec::PartitionMaxDiameter(b) => {
                KmeansSecretSpec::PartitionMaxDiameter(f64::from_bits(b))
            }
            WireKmeansSpec::Exact => KmeansSecretSpec::Exact,
        }
    }
}

impl WireResponse {
    /// Encodes an engine [`Response`] (exact bits).
    pub fn from_response(response: &Response) -> Self {
        match response {
            Response::Histogram(v) => {
                WireResponse::Histogram(v.iter().map(|x| x.to_bits()).collect())
            }
            Response::Prefixes(v) => {
                WireResponse::Prefixes(v.iter().map(|x| x.to_bits()).collect())
            }
            Response::Scalar(x) => WireResponse::Scalar(x.to_bits()),
            Response::Centroids(cs) => WireResponse::Centroids(
                cs.iter()
                    .map(|c| c.iter().map(|x| x.to_bits()).collect())
                    .collect(),
            ),
        }
    }

    /// Decodes back to an engine [`Response`], bit-exactly.
    pub fn to_response(&self) -> Response {
        match self {
            WireResponse::Histogram(v) => {
                Response::Histogram(v.iter().map(|b| f64::from_bits(*b)).collect())
            }
            WireResponse::Prefixes(v) => {
                Response::Prefixes(v.iter().map(|b| f64::from_bits(*b)).collect())
            }
            WireResponse::Scalar(b) => Response::Scalar(f64::from_bits(*b)),
            WireResponse::Centroids(cs) => Response::Centroids(
                cs.iter()
                    .map(|c| c.iter().map(|b| f64::from_bits(*b)).collect())
                    .collect(),
            ),
        }
    }
}

impl WireError {
    /// Maps a server-side refusal onto the wire vocabulary.
    pub fn from_server_error(e: &bf_server::ServerError) -> Self {
        use bf_server::ServerError as SE;
        match e {
            SE::QueueFull { analyst, capacity } => WireError::QueueFull {
                analyst: analyst.clone(),
                capacity: *capacity as u64,
            },
            SE::BudgetExhausted {
                analyst,
                requested,
                remaining,
            } => WireError::BudgetExhausted {
                analyst: analyst.clone(),
                requested_bits: requested.to_bits(),
                remaining_bits: remaining.to_bits(),
            },
            SE::Overloaded { depth, limit } => WireError::Overloaded {
                depth: *depth as u64,
                limit: *limit as u64,
            },
            SE::DeadlineExceeded { analyst } => WireError::DeadlineExceeded {
                analyst: analyst.clone(),
            },
            SE::ShutDown => WireError::ShutDown,
            SE::Engine(e) => WireError::from_engine_error(e),
        }
    }

    /// Maps an engine refusal onto the wire vocabulary.
    pub fn from_engine_error(e: &bf_engine::EngineError) -> Self {
        use bf_engine::EngineError as EE;
        match e {
            EE::UnknownPolicy(n) => WireError::UnknownPolicy(n.clone()),
            EE::UnknownDataset(n) => WireError::UnknownDataset(n.clone()),
            EE::UnknownPoints(n) => WireError::UnknownPoints(n.clone()),
            EE::UnknownAnalyst(n) => WireError::UnknownAnalyst(n.clone()),
            EE::SessionEvicted(n) => WireError::SessionEvicted(n.clone()),
            EE::BudgetRefused {
                analyst,
                requested,
                remaining,
            } => WireError::BudgetRefused {
                analyst: analyst.clone(),
                requested_bits: requested.to_bits(),
                remaining_bits: remaining.to_bits(),
            },
            EE::InvalidRequest(m) => WireError::InvalidRequest(m.clone()),
            other => WireError::Other(other.to_string()),
        }
    }
}

// ---------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------

const TAG_HELLO: u8 = 1;
const TAG_OPEN_SESSION: u8 = 2;
const TAG_SUBMIT: u8 = 3;
const TAG_SUBMIT_BATCH: u8 = 4;
const TAG_BUDGET: u8 = 5;
const TAG_GOODBYE: u8 = 6;
const TAG_STATS: u8 = 7;
const TAG_TRACES: u8 = 8;
const TAG_BUDGET_AUDIT: u8 = 9;
const TAG_LOG_CATCHUP: u8 = 10;
const TAG_REPLICATE_ACK: u8 = 11;
const TAG_PEER_STATUS: u8 = 12;
const TAG_CLUSTER_STATS: u8 = 13;
const TAG_HEALTH: u8 = 14;
const TAG_WATCH: u8 = 15;

const TAG_WELCOME: u8 = 65;
const TAG_SESSION_ATTACHED: u8 = 66;
const TAG_ANSWER: u8 = 67;
const TAG_BATCH_ANSWER: u8 = 68;
const TAG_BUDGET_REPORT: u8 = 69;
const TAG_REFUSED: u8 = 70;
const TAG_FAREWELL: u8 = 71;
const TAG_STATS_REPORT: u8 = 72;
const TAG_TRACE_REPORT: u8 = 73;
const TAG_AUDIT_REPORT: u8 = 74;
const TAG_REPLICATE: u8 = 75;
const TAG_PEER_STATUS_REPORT: u8 = 76;
const TAG_CLUSTER_STATS_REPORT: u8 = 77;
const TAG_HEALTH_REPORT: u8 = 78;
const TAG_EVENT: u8 = 79;

const EVENT_STAGE: u8 = 1;
const EVENT_TRACE: u8 = 2;
const EVENT_ROLE: u8 = 3;
const EVENT_SLO: u8 = 4;

const METRIC_COUNTER: u8 = 1;
const METRIC_GAUGE: u8 = 2;
const METRIC_HISTOGRAM: u8 = 3;

const KIND_HISTOGRAM: u8 = 1;
const KIND_CUMULATIVE: u8 = 2;
const KIND_RANGE: u8 = 3;
const KIND_LINEAR: u8 = 4;
const KIND_KMEANS: u8 = 5;

const SPEC_FULL: u8 = 1;
const SPEC_ATTRIBUTE: u8 = 2;
const SPEC_L1: u8 = 3;
const SPEC_PARTITION: u8 = 4;
const SPEC_EXACT: u8 = 5;

const RESP_HISTOGRAM: u8 = 1;
const RESP_PREFIXES: u8 = 2;
const RESP_SCALAR: u8 = 3;
const RESP_CENTROIDS: u8 = 4;

const ERR_QUEUE_FULL: u8 = 1;
const ERR_WINDOW_FULL: u8 = 2;
const ERR_BUDGET_EXHAUSTED: u8 = 3;
const ERR_BUDGET_REFUSED: u8 = 4;
const ERR_SHUTDOWN: u8 = 5;
const ERR_UNKNOWN_POLICY: u8 = 6;
const ERR_UNKNOWN_DATASET: u8 = 7;
const ERR_UNKNOWN_POINTS: u8 = 8;
const ERR_UNKNOWN_ANALYST: u8 = 9;
const ERR_SESSION_EVICTED: u8 = 10;
const ERR_INVALID_REQUEST: u8 = 11;
const ERR_PROTOCOL: u8 = 12;
const ERR_OTHER: u8 = 13;
const ERR_OVERLOADED: u8 = 14;
const ERR_DEADLINE_EXCEEDED: u8 = 15;
const ERR_NOT_LEADER: u8 = 16;
const ERR_STALE_REPLICA: u8 = 17;
const ERR_LOG_DIVERGED: u8 = 18;

const LOG_OP_OPEN_SESSION: u8 = 1;
const LOG_OP_SUBMIT: u8 = 2;

const OPT_NONE: u8 = 0;
const OPT_SOME: u8 = 1;

const SLOT_OK: u8 = 1;
const SLOT_ERR: u8 = 2;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bits_vec(out: &mut Vec<u8>, bits: &[u64]) {
    put_u64(out, bits.len() as u64);
    for b in bits {
        put_u64(out, *b);
    }
}

fn read_u16(r: &mut Reader<'_>) -> Option<u16> {
    let lo = r.u8()?;
    let hi = r.u8()?;
    Some(u16::from_le_bytes([lo, hi]))
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(OPT_NONE),
        Some(x) => {
            out.push(OPT_SOME);
            put_u64(out, x);
        }
    }
}

fn read_opt_u64(r: &mut Reader<'_>) -> Option<Option<u64>> {
    match r.u8()? {
        OPT_NONE => Some(None),
        OPT_SOME => Some(Some(r.u64()?)),
        _ => None,
    }
}

/// Bounds a decoder's `Vec` pre-allocation: counts are
/// attacker-supplied, so reserve only a small prefix and let growth be
/// driven by bytes that actually decode — a 40-byte frame must never
/// command a 100 MB allocation.
fn bounded_capacity(n: u64) -> usize {
    n.min(64) as usize
}

fn read_bits_vec(r: &mut Reader<'_>) -> Option<Vec<u64>> {
    let len = r.u64()?;
    // A length no frame could actually carry is malformed, not a
    // gigabyte allocation.
    if len > (bf_store::MAX_RECORD_LEN as u64) / 8 {
        return None;
    }
    (0..len).map(|_| r.u64()).collect()
}

fn encode_trace_span(out: &mut Vec<u8>, s: &TraceSpan) {
    out.push(s.stage.index() as u8);
    put_u64(out, s.start_ns);
    put_u64(out, s.duration_ns);
    put_str(out, &s.outcome);
    put_opt_u64(out, s.link);
}

fn decode_trace_span(r: &mut Reader<'_>) -> Option<TraceSpan> {
    Some(TraceSpan {
        stage: Stage::from_index(r.u8()? as usize)?,
        start_ns: r.u64()?,
        duration_ns: r.u64()?,
        outcome: r.str()?,
        link: read_opt_u64(r)?,
    })
}

fn encode_trace_tree(out: &mut Vec<u8>, t: &TraceTree) {
    put_u64(out, t.id.0);
    put_str(out, &t.analyst);
    put_u64(out, t.total_ns);
    put_str(out, &t.outcome);
    put_u64(out, t.spans.len() as u64);
    for s in &t.spans {
        encode_trace_span(out, s);
    }
}

fn decode_trace_tree(r: &mut Reader<'_>) -> Option<TraceTree> {
    let id = TraceId(r.u64()?);
    let analyst = r.str()?;
    let total_ns = r.u64()?;
    let outcome = r.str()?;
    let n = r.u64()?;
    if n > bf_store::MAX_RECORD_LEN as u64 {
        return None;
    }
    let mut spans = Vec::with_capacity(bounded_capacity(n));
    for _ in 0..n {
        spans.push(decode_trace_span(r)?);
    }
    Some(TraceTree {
        id,
        analyst,
        total_ns,
        outcome,
        spans,
    })
}

fn encode_ledger_entry(out: &mut Vec<u8>, e: &LedgerEntry) {
    put_u64(out, e.seq);
    put_u64(out, e.eps_bits);
    put_str(out, &e.label);
    put_u64(out, e.fingerprint);
}

fn decode_ledger_entry(r: &mut Reader<'_>) -> Option<LedgerEntry> {
    Some(LedgerEntry {
        seq: r.u64()?,
        eps_bits: r.u64()?,
        label: r.str()?,
        fingerprint: r.u64()?,
    })
}

fn encode_metric(out: &mut Vec<u8>, m: &WireMetric) {
    match m {
        WireMetric::Counter { name, value } => {
            out.push(METRIC_COUNTER);
            put_str(out, name);
            put_u64(out, *value);
        }
        WireMetric::Gauge { name, bits } => {
            out.push(METRIC_GAUGE);
            put_str(out, name);
            put_u64(out, *bits);
        }
        WireMetric::Histogram {
            name,
            count,
            sum,
            max,
            p50,
            p99,
            p999,
        } => {
            out.push(METRIC_HISTOGRAM);
            put_str(out, name);
            put_u64(out, *count);
            put_u64(out, *sum);
            put_u64(out, *max);
            put_u64(out, *p50);
            put_u64(out, *p99);
            put_u64(out, *p999);
        }
    }
}

fn decode_metric(r: &mut Reader<'_>) -> Option<WireMetric> {
    Some(match r.u8()? {
        METRIC_COUNTER => WireMetric::Counter {
            name: r.str()?,
            value: r.u64()?,
        },
        METRIC_GAUGE => WireMetric::Gauge {
            name: r.str()?,
            bits: r.u64()?,
        },
        METRIC_HISTOGRAM => WireMetric::Histogram {
            name: r.str()?,
            count: r.u64()?,
            sum: r.u64()?,
            max: r.u64()?,
            p50: r.u64()?,
            p99: r.u64()?,
            p999: r.u64()?,
        },
        _ => return None,
    })
}

fn encode_request(out: &mut Vec<u8>, req: &WireRequest) {
    put_str(out, &req.policy);
    put_str(out, &req.data);
    put_u64(out, req.epsilon_bits);
    match &req.kind {
        WireRequestKind::Histogram => out.push(KIND_HISTOGRAM),
        WireRequestKind::Cumulative => out.push(KIND_CUMULATIVE),
        WireRequestKind::Range { lo, hi } => {
            out.push(KIND_RANGE);
            put_u64(out, *lo);
            put_u64(out, *hi);
        }
        WireRequestKind::Linear { weight_bits } => {
            out.push(KIND_LINEAR);
            put_bits_vec(out, weight_bits);
        }
        WireRequestKind::Kmeans {
            k,
            iterations,
            spec,
        } => {
            out.push(KIND_KMEANS);
            put_u64(out, *k);
            put_u64(out, *iterations);
            match spec {
                WireKmeansSpec::Full => out.push(SPEC_FULL),
                WireKmeansSpec::Attribute => out.push(SPEC_ATTRIBUTE),
                WireKmeansSpec::L1Threshold(b) => {
                    out.push(SPEC_L1);
                    put_u64(out, *b);
                }
                WireKmeansSpec::PartitionMaxDiameter(b) => {
                    out.push(SPEC_PARTITION);
                    put_u64(out, *b);
                }
                WireKmeansSpec::Exact => out.push(SPEC_EXACT),
            }
        }
    }
}

fn decode_request(r: &mut Reader<'_>) -> Option<WireRequest> {
    let policy = r.str()?;
    let data = r.str()?;
    let epsilon_bits = r.u64()?;
    let kind = match r.u8()? {
        KIND_HISTOGRAM => WireRequestKind::Histogram,
        KIND_CUMULATIVE => WireRequestKind::Cumulative,
        KIND_RANGE => WireRequestKind::Range {
            lo: r.u64()?,
            hi: r.u64()?,
        },
        KIND_LINEAR => WireRequestKind::Linear {
            weight_bits: read_bits_vec(r)?,
        },
        KIND_KMEANS => {
            let k = r.u64()?;
            let iterations = r.u64()?;
            let spec = match r.u8()? {
                SPEC_FULL => WireKmeansSpec::Full,
                SPEC_ATTRIBUTE => WireKmeansSpec::Attribute,
                SPEC_L1 => WireKmeansSpec::L1Threshold(r.u64()?),
                SPEC_PARTITION => WireKmeansSpec::PartitionMaxDiameter(r.u64()?),
                SPEC_EXACT => WireKmeansSpec::Exact,
                _ => return None,
            };
            WireRequestKind::Kmeans {
                k,
                iterations,
                spec,
            }
        }
        _ => return None,
    };
    Some(WireRequest {
        policy,
        data,
        epsilon_bits,
        kind,
    })
}

fn encode_response(out: &mut Vec<u8>, resp: &WireResponse) {
    match resp {
        WireResponse::Histogram(v) => {
            out.push(RESP_HISTOGRAM);
            put_bits_vec(out, v);
        }
        WireResponse::Prefixes(v) => {
            out.push(RESP_PREFIXES);
            put_bits_vec(out, v);
        }
        WireResponse::Scalar(b) => {
            out.push(RESP_SCALAR);
            put_u64(out, *b);
        }
        WireResponse::Centroids(cs) => {
            out.push(RESP_CENTROIDS);
            put_u64(out, cs.len() as u64);
            for c in cs {
                put_bits_vec(out, c);
            }
        }
    }
}

fn decode_response(r: &mut Reader<'_>) -> Option<WireResponse> {
    Some(match r.u8()? {
        RESP_HISTOGRAM => WireResponse::Histogram(read_bits_vec(r)?),
        RESP_PREFIXES => WireResponse::Prefixes(read_bits_vec(r)?),
        RESP_SCALAR => WireResponse::Scalar(r.u64()?),
        RESP_CENTROIDS => {
            let n = r.u64()?;
            if n > (bf_store::MAX_RECORD_LEN as u64) / 8 {
                return None;
            }
            let mut cs = Vec::with_capacity(bounded_capacity(n));
            for _ in 0..n {
                cs.push(read_bits_vec(r)?);
            }
            WireResponse::Centroids(cs)
        }
        _ => return None,
    })
}

fn encode_error(out: &mut Vec<u8>, e: &WireError) {
    match e {
        WireError::QueueFull { analyst, capacity } => {
            out.push(ERR_QUEUE_FULL);
            put_str(out, analyst);
            put_u64(out, *capacity);
        }
        WireError::WindowFull { capacity } => {
            out.push(ERR_WINDOW_FULL);
            put_u64(out, *capacity);
        }
        WireError::BudgetExhausted {
            analyst,
            requested_bits,
            remaining_bits,
        } => {
            out.push(ERR_BUDGET_EXHAUSTED);
            put_str(out, analyst);
            put_u64(out, *requested_bits);
            put_u64(out, *remaining_bits);
        }
        WireError::BudgetRefused {
            analyst,
            requested_bits,
            remaining_bits,
        } => {
            out.push(ERR_BUDGET_REFUSED);
            put_str(out, analyst);
            put_u64(out, *requested_bits);
            put_u64(out, *remaining_bits);
        }
        WireError::ShutDown => out.push(ERR_SHUTDOWN),
        WireError::UnknownPolicy(n) => {
            out.push(ERR_UNKNOWN_POLICY);
            put_str(out, n);
        }
        WireError::UnknownDataset(n) => {
            out.push(ERR_UNKNOWN_DATASET);
            put_str(out, n);
        }
        WireError::UnknownPoints(n) => {
            out.push(ERR_UNKNOWN_POINTS);
            put_str(out, n);
        }
        WireError::UnknownAnalyst(n) => {
            out.push(ERR_UNKNOWN_ANALYST);
            put_str(out, n);
        }
        WireError::SessionEvicted(n) => {
            out.push(ERR_SESSION_EVICTED);
            put_str(out, n);
        }
        WireError::InvalidRequest(m) => {
            out.push(ERR_INVALID_REQUEST);
            put_str(out, m);
        }
        WireError::Protocol(m) => {
            out.push(ERR_PROTOCOL);
            put_str(out, m);
        }
        WireError::Other(m) => {
            out.push(ERR_OTHER);
            put_str(out, m);
        }
        WireError::Overloaded { depth, limit } => {
            out.push(ERR_OVERLOADED);
            put_u64(out, *depth);
            put_u64(out, *limit);
        }
        WireError::DeadlineExceeded { analyst } => {
            out.push(ERR_DEADLINE_EXCEEDED);
            put_str(out, analyst);
        }
        WireError::NotLeader { leader } => {
            out.push(ERR_NOT_LEADER);
            put_str(out, leader);
        }
        WireError::StaleReplica { lag_entries } => {
            out.push(ERR_STALE_REPLICA);
            put_u64(out, *lag_entries);
        }
        WireError::LogDiverged { leader_high_water } => {
            out.push(ERR_LOG_DIVERGED);
            put_u64(out, *leader_high_water);
        }
    }
}

fn decode_error(r: &mut Reader<'_>) -> Option<WireError> {
    Some(match r.u8()? {
        ERR_QUEUE_FULL => WireError::QueueFull {
            analyst: r.str()?,
            capacity: r.u64()?,
        },
        ERR_WINDOW_FULL => WireError::WindowFull { capacity: r.u64()? },
        ERR_BUDGET_EXHAUSTED => WireError::BudgetExhausted {
            analyst: r.str()?,
            requested_bits: r.u64()?,
            remaining_bits: r.u64()?,
        },
        ERR_BUDGET_REFUSED => WireError::BudgetRefused {
            analyst: r.str()?,
            requested_bits: r.u64()?,
            remaining_bits: r.u64()?,
        },
        ERR_SHUTDOWN => WireError::ShutDown,
        ERR_UNKNOWN_POLICY => WireError::UnknownPolicy(r.str()?),
        ERR_UNKNOWN_DATASET => WireError::UnknownDataset(r.str()?),
        ERR_UNKNOWN_POINTS => WireError::UnknownPoints(r.str()?),
        ERR_UNKNOWN_ANALYST => WireError::UnknownAnalyst(r.str()?),
        ERR_SESSION_EVICTED => WireError::SessionEvicted(r.str()?),
        ERR_INVALID_REQUEST => WireError::InvalidRequest(r.str()?),
        ERR_PROTOCOL => WireError::Protocol(r.str()?),
        ERR_OTHER => WireError::Other(r.str()?),
        ERR_OVERLOADED => WireError::Overloaded {
            depth: r.u64()?,
            limit: r.u64()?,
        },
        ERR_DEADLINE_EXCEEDED => WireError::DeadlineExceeded { analyst: r.str()? },
        ERR_NOT_LEADER => WireError::NotLeader { leader: r.str()? },
        ERR_STALE_REPLICA => WireError::StaleReplica {
            lag_entries: r.u64()?,
        },
        ERR_LOG_DIVERGED => WireError::LogDiverged {
            leader_high_water: r.u64()?,
        },
        _ => return None,
    })
}

fn encode_log_op(out: &mut Vec<u8>, op: &WireLogOp) {
    match op {
        WireLogOp::OpenSession { total_bits } => {
            out.push(LOG_OP_OPEN_SESSION);
            put_u64(out, *total_bits);
        }
        WireLogOp::Submit { request } => {
            out.push(LOG_OP_SUBMIT);
            encode_request(out, request);
        }
    }
}

fn decode_log_op(r: &mut Reader<'_>) -> Option<WireLogOp> {
    Some(match r.u8()? {
        LOG_OP_OPEN_SESSION => WireLogOp::OpenSession {
            total_bits: r.u64()?,
        },
        LOG_OP_SUBMIT => WireLogOp::Submit {
            request: decode_request(r)?,
        },
        _ => return None,
    })
}

fn encode_log_entry(out: &mut Vec<u8>, e: &WireLogEntry) {
    put_u64(out, e.epoch);
    put_u64(out, e.index);
    put_str(out, &e.analyst);
    put_u64(out, e.request_id);
    encode_log_op(out, &e.op);
}

fn decode_log_entry(r: &mut Reader<'_>) -> Option<WireLogEntry> {
    Some(WireLogEntry {
        epoch: r.u64()?,
        index: r.u64()?,
        analyst: r.str()?,
        request_id: r.u64()?,
        op: decode_log_op(r)?,
    })
}

impl ClientMessage {
    /// The correlation id the reply will echo.
    pub fn id(&self) -> u64 {
        match self {
            ClientMessage::Hello { id, .. }
            | ClientMessage::OpenSession { id, .. }
            | ClientMessage::Submit { id, .. }
            | ClientMessage::SubmitBatch { id, .. }
            | ClientMessage::Budget { id, .. }
            | ClientMessage::Stats { id }
            | ClientMessage::Traces { id }
            | ClientMessage::BudgetAudit { id, .. }
            | ClientMessage::LogCatchup { id, .. }
            | ClientMessage::ReplicateAck { id, .. }
            | ClientMessage::PeerStatus { id }
            | ClientMessage::ClusterStats { id }
            | ClientMessage::Health { id }
            | ClientMessage::Watch { id }
            | ClientMessage::Goodbye { id } => *id,
        }
    }

    /// The payload bytes (no frame), at [`PROTOCOL_VERSION`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_for(PROTOCOL_VERSION)
    }

    /// The payload bytes at a negotiated `version`: fields the older
    /// version never defined are simply omitted, so a downgraded
    /// connection stays byte-compatible with a genuine old peer.
    pub fn encode_for(&self, version: u16) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ClientMessage::Hello { id, version } => {
                out.push(TAG_HELLO);
                put_u64(&mut out, *id);
                put_u16(&mut out, *version);
            }
            ClientMessage::OpenSession {
                id,
                analyst,
                total_bits,
            } => {
                out.push(TAG_OPEN_SESSION);
                put_u64(&mut out, *id);
                put_str(&mut out, analyst);
                put_u64(&mut out, *total_bits);
            }
            ClientMessage::Submit {
                id,
                analyst,
                request,
                request_id,
                deadline_micros,
                trace_id,
                token,
            } => {
                out.push(TAG_SUBMIT);
                put_u64(&mut out, *id);
                put_str(&mut out, analyst);
                encode_request(&mut out, request);
                put_opt_u64(&mut out, *request_id);
                put_opt_u64(&mut out, *deadline_micros);
                if version >= 3 {
                    put_opt_u64(&mut out, *trace_id);
                }
                if version >= 4 {
                    put_opt_u64(&mut out, *token);
                }
            }
            ClientMessage::SubmitBatch {
                id,
                analyst,
                requests,
                token,
            } => {
                out.push(TAG_SUBMIT_BATCH);
                put_u64(&mut out, *id);
                put_str(&mut out, analyst);
                put_u64(&mut out, requests.len() as u64);
                for r in requests {
                    encode_request(&mut out, r);
                }
                if version >= 4 {
                    put_opt_u64(&mut out, *token);
                }
            }
            ClientMessage::Budget { id, analyst } => {
                out.push(TAG_BUDGET);
                put_u64(&mut out, *id);
                put_str(&mut out, analyst);
            }
            ClientMessage::Stats { id } => {
                out.push(TAG_STATS);
                put_u64(&mut out, *id);
            }
            ClientMessage::Traces { id } => {
                out.push(TAG_TRACES);
                put_u64(&mut out, *id);
            }
            ClientMessage::BudgetAudit { id, analyst, token } => {
                out.push(TAG_BUDGET_AUDIT);
                put_u64(&mut out, *id);
                put_str(&mut out, analyst);
                if version >= 4 {
                    put_opt_u64(&mut out, *token);
                }
            }
            ClientMessage::LogCatchup {
                id,
                epoch,
                from_index,
                last_epoch,
            } => {
                out.push(TAG_LOG_CATCHUP);
                put_u64(&mut out, *id);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *from_index);
                put_u64(&mut out, *last_epoch);
            }
            ClientMessage::ReplicateAck { id, epoch, index } => {
                out.push(TAG_REPLICATE_ACK);
                put_u64(&mut out, *id);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *index);
            }
            ClientMessage::PeerStatus { id } => {
                out.push(TAG_PEER_STATUS);
                put_u64(&mut out, *id);
            }
            ClientMessage::ClusterStats { id } => {
                out.push(TAG_CLUSTER_STATS);
                put_u64(&mut out, *id);
            }
            ClientMessage::Health { id } => {
                out.push(TAG_HEALTH);
                put_u64(&mut out, *id);
            }
            ClientMessage::Watch { id } => {
                out.push(TAG_WATCH);
                put_u64(&mut out, *id);
            }
            ClientMessage::Goodbye { id } => {
                out.push(TAG_GOODBYE);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decodes a payload produced by [`ClientMessage::encode`]; `None`
    /// when the bytes are not a well-formed message (the connection must
    /// close — a framing layer that let damage through cannot be
    /// trusted).
    pub fn decode(payload: &[u8]) -> Option<ClientMessage> {
        Self::decode_for(payload, PROTOCOL_VERSION)
    }

    /// Decodes at a negotiated `version`: fields the older version
    /// never defined decode as absent, and frames the version did not
    /// define at all are malformed.
    pub fn decode_for(payload: &[u8], version: u16) -> Option<ClientMessage> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_HELLO => ClientMessage::Hello {
                id: r.u64()?,
                version: read_u16(&mut r)?,
            },
            TAG_OPEN_SESSION => ClientMessage::OpenSession {
                id: r.u64()?,
                analyst: r.str()?,
                total_bits: r.u64()?,
            },
            TAG_SUBMIT => ClientMessage::Submit {
                id: r.u64()?,
                analyst: r.str()?,
                request: decode_request(&mut r)?,
                request_id: read_opt_u64(&mut r)?,
                deadline_micros: read_opt_u64(&mut r)?,
                trace_id: if version >= 3 {
                    read_opt_u64(&mut r)?
                } else {
                    None
                },
                token: if version >= 4 {
                    read_opt_u64(&mut r)?
                } else {
                    None
                },
            },
            TAG_SUBMIT_BATCH => {
                let id = r.u64()?;
                let analyst = r.str()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut requests = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    requests.push(decode_request(&mut r)?);
                }
                ClientMessage::SubmitBatch {
                    id,
                    analyst,
                    requests,
                    token: if version >= 4 {
                        read_opt_u64(&mut r)?
                    } else {
                        None
                    },
                }
            }
            TAG_BUDGET => ClientMessage::Budget {
                id: r.u64()?,
                analyst: r.str()?,
            },
            TAG_STATS => ClientMessage::Stats { id: r.u64()? },
            TAG_TRACES => ClientMessage::Traces { id: r.u64()? },
            TAG_BUDGET_AUDIT => ClientMessage::BudgetAudit {
                id: r.u64()?,
                analyst: r.str()?,
                token: if version >= 4 {
                    read_opt_u64(&mut r)?
                } else {
                    None
                },
            },
            TAG_LOG_CATCHUP if version >= 4 => ClientMessage::LogCatchup {
                id: r.u64()?,
                epoch: r.u64()?,
                from_index: r.u64()?,
                last_epoch: r.u64()?,
            },
            TAG_REPLICATE_ACK if version >= 4 => ClientMessage::ReplicateAck {
                id: r.u64()?,
                epoch: r.u64()?,
                index: r.u64()?,
            },
            TAG_PEER_STATUS if version >= 4 => ClientMessage::PeerStatus { id: r.u64()? },
            TAG_CLUSTER_STATS if version >= 5 => ClientMessage::ClusterStats { id: r.u64()? },
            TAG_HEALTH if version >= 5 => ClientMessage::Health { id: r.u64()? },
            TAG_WATCH if version >= 5 => ClientMessage::Watch { id: r.u64()? },
            TAG_GOODBYE => ClientMessage::Goodbye { id: r.u64()? },
            _ => return None,
        };
        r.done().then_some(msg)
    }
}

impl ServerMessage {
    /// The correlation id of the request this replies to.
    pub fn id(&self) -> u64 {
        match self {
            ServerMessage::Welcome { id, .. }
            | ServerMessage::SessionAttached { id, .. }
            | ServerMessage::Answer { id, .. }
            | ServerMessage::BatchAnswer { id, .. }
            | ServerMessage::BudgetReport { id, .. }
            | ServerMessage::StatsReport { id, .. }
            | ServerMessage::TraceReport { id, .. }
            | ServerMessage::AuditReport { id, .. }
            | ServerMessage::Refused { id, .. }
            | ServerMessage::Replicate { id, .. }
            | ServerMessage::PeerStatusReport { id, .. }
            | ServerMessage::ClusterStatsReport { id, .. }
            | ServerMessage::HealthReport { id, .. }
            | ServerMessage::Event { id, .. }
            | ServerMessage::Farewell { id } => *id,
        }
    }

    /// The payload bytes (no frame), at [`PROTOCOL_VERSION`].
    pub fn encode(&self) -> Vec<u8> {
        self.encode_for(PROTOCOL_VERSION)
    }

    /// The payload bytes at a negotiated `version` (see
    /// [`ClientMessage::encode_for`]).
    pub fn encode_for(&self, version: u16) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            ServerMessage::Welcome { id, version } => {
                out.push(TAG_WELCOME);
                put_u64(&mut out, *id);
                put_u16(&mut out, *version);
            }
            ServerMessage::SessionAttached {
                id,
                remaining_bits,
                token,
            } => {
                out.push(TAG_SESSION_ATTACHED);
                put_u64(&mut out, *id);
                put_u64(&mut out, *remaining_bits);
                if version >= 4 {
                    put_u64(&mut out, *token);
                }
            }
            ServerMessage::Answer {
                id,
                response,
                trace_id,
            } => {
                out.push(TAG_ANSWER);
                put_u64(&mut out, *id);
                encode_response(&mut out, response);
                if version >= 3 {
                    put_opt_u64(&mut out, *trace_id);
                }
            }
            ServerMessage::BatchAnswer { id, slots } => {
                out.push(TAG_BATCH_ANSWER);
                put_u64(&mut out, *id);
                put_u64(&mut out, slots.len() as u64);
                for slot in slots {
                    match slot {
                        Ok(resp) => {
                            out.push(SLOT_OK);
                            encode_response(&mut out, resp);
                        }
                        Err(e) => {
                            out.push(SLOT_ERR);
                            encode_error(&mut out, e);
                        }
                    }
                }
            }
            ServerMessage::BudgetReport {
                id,
                total_bits,
                spent_bits,
                remaining_bits,
                served,
            } => {
                out.push(TAG_BUDGET_REPORT);
                put_u64(&mut out, *id);
                put_u64(&mut out, *total_bits);
                put_u64(&mut out, *spent_bits);
                put_u64(&mut out, *remaining_bits);
                put_u64(&mut out, *served);
            }
            ServerMessage::StatsReport { id, metrics } => {
                out.push(TAG_STATS_REPORT);
                put_u64(&mut out, *id);
                put_u64(&mut out, metrics.len() as u64);
                for m in metrics {
                    encode_metric(&mut out, m);
                }
            }
            ServerMessage::TraceReport { id, traces } => {
                out.push(TAG_TRACE_REPORT);
                put_u64(&mut out, *id);
                put_u64(&mut out, traces.len() as u64);
                for t in traces {
                    encode_trace_tree(&mut out, t);
                }
            }
            ServerMessage::AuditReport { id, entries } => {
                out.push(TAG_AUDIT_REPORT);
                put_u64(&mut out, *id);
                put_u64(&mut out, entries.len() as u64);
                for e in entries {
                    encode_ledger_entry(&mut out, e);
                }
            }
            ServerMessage::Refused {
                id,
                error,
                trace_id,
            } => {
                out.push(TAG_REFUSED);
                put_u64(&mut out, *id);
                encode_error(&mut out, error);
                if version >= 3 {
                    put_opt_u64(&mut out, *trace_id);
                }
            }
            ServerMessage::Replicate {
                id,
                epoch,
                commit_index,
                entries,
            } => {
                out.push(TAG_REPLICATE);
                put_u64(&mut out, *id);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *commit_index);
                put_u64(&mut out, entries.len() as u64);
                for e in entries {
                    encode_log_entry(&mut out, e);
                }
            }
            ServerMessage::PeerStatusReport {
                id,
                epoch,
                high_water,
                applied,
            } => {
                out.push(TAG_PEER_STATUS_REPORT);
                put_u64(&mut out, *id);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *high_water);
                put_u64(&mut out, *applied);
            }
            ServerMessage::ClusterStatsReport { id, replicas } => {
                out.push(TAG_CLUSTER_STATS_REPORT);
                put_u64(&mut out, *id);
                put_u64(&mut out, replicas.len() as u64);
                for rep in replicas {
                    put_str(&mut out, &rep.node);
                    out.push(rep.reachable as u8);
                    put_u64(&mut out, rep.metrics.len() as u64);
                    for m in &rep.metrics {
                        encode_metric(&mut out, m);
                    }
                }
            }
            ServerMessage::HealthReport {
                id,
                role,
                epoch,
                applied,
                lag,
                wal_segments,
                queue_depth,
                unreachable,
                firing,
            } => {
                out.push(TAG_HEALTH_REPORT);
                put_u64(&mut out, *id);
                put_str(&mut out, role);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *applied);
                put_u64(&mut out, *lag);
                put_u64(&mut out, *wal_segments);
                put_u64(&mut out, *queue_depth);
                put_u64(&mut out, unreachable.len() as u64);
                for peer in unreachable {
                    put_str(&mut out, peer);
                }
                put_u64(&mut out, firing.len() as u64);
                for slo in firing {
                    put_str(&mut out, slo);
                }
            }
            ServerMessage::Event {
                id,
                seq,
                kind,
                detail,
                value,
            } => {
                out.push(TAG_EVENT);
                put_u64(&mut out, *id);
                put_u64(&mut out, *seq);
                out.push(match kind {
                    WireEventKind::Stage => EVENT_STAGE,
                    WireEventKind::Trace => EVENT_TRACE,
                    WireEventKind::Role => EVENT_ROLE,
                    WireEventKind::Slo => EVENT_SLO,
                });
                put_str(&mut out, detail);
                put_u64(&mut out, *value);
            }
            ServerMessage::Farewell { id } => {
                out.push(TAG_FAREWELL);
                put_u64(&mut out, *id);
            }
        }
        out
    }

    /// Decodes a payload produced by [`ServerMessage::encode`]; `None`
    /// for anything malformed.
    pub fn decode(payload: &[u8]) -> Option<ServerMessage> {
        Self::decode_for(payload, PROTOCOL_VERSION)
    }

    /// Decodes at a negotiated `version` (see
    /// [`ClientMessage::decode_for`]).
    pub fn decode_for(payload: &[u8], version: u16) -> Option<ServerMessage> {
        let mut r = Reader::new(payload);
        let msg = match r.u8()? {
            TAG_WELCOME => ServerMessage::Welcome {
                id: r.u64()?,
                version: read_u16(&mut r)?,
            },
            TAG_SESSION_ATTACHED => ServerMessage::SessionAttached {
                id: r.u64()?,
                remaining_bits: r.u64()?,
                token: if version >= 4 { r.u64()? } else { 0 },
            },
            TAG_ANSWER => ServerMessage::Answer {
                id: r.u64()?,
                response: decode_response(&mut r)?,
                trace_id: if version >= 3 {
                    read_opt_u64(&mut r)?
                } else {
                    None
                },
            },
            TAG_BATCH_ANSWER => {
                let id = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut slots = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    slots.push(match r.u8()? {
                        SLOT_OK => Ok(decode_response(&mut r)?),
                        SLOT_ERR => Err(decode_error(&mut r)?),
                        _ => return None,
                    });
                }
                ServerMessage::BatchAnswer { id, slots }
            }
            TAG_BUDGET_REPORT => ServerMessage::BudgetReport {
                id: r.u64()?,
                total_bits: r.u64()?,
                spent_bits: r.u64()?,
                remaining_bits: r.u64()?,
                served: r.u64()?,
            },
            TAG_STATS_REPORT => {
                let id = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut metrics = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    metrics.push(decode_metric(&mut r)?);
                }
                ServerMessage::StatsReport { id, metrics }
            }
            TAG_TRACE_REPORT => {
                let id = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut traces = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    traces.push(decode_trace_tree(&mut r)?);
                }
                ServerMessage::TraceReport { id, traces }
            }
            TAG_AUDIT_REPORT => {
                let id = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut entries = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    entries.push(decode_ledger_entry(&mut r)?);
                }
                ServerMessage::AuditReport { id, entries }
            }
            TAG_REFUSED => ServerMessage::Refused {
                id: r.u64()?,
                error: decode_error(&mut r)?,
                trace_id: if version >= 3 {
                    read_opt_u64(&mut r)?
                } else {
                    None
                },
            },
            TAG_REPLICATE if version >= 4 => {
                let id = r.u64()?;
                let epoch = r.u64()?;
                let commit_index = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut entries = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    entries.push(decode_log_entry(&mut r)?);
                }
                ServerMessage::Replicate {
                    id,
                    epoch,
                    commit_index,
                    entries,
                }
            }
            TAG_PEER_STATUS_REPORT if version >= 4 => ServerMessage::PeerStatusReport {
                id: r.u64()?,
                epoch: r.u64()?,
                high_water: r.u64()?,
                applied: r.u64()?,
            },
            TAG_CLUSTER_STATS_REPORT if version >= 5 => {
                let id = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut replicas = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    let node = r.str()?;
                    let reachable = match r.u8()? {
                        0 => false,
                        1 => true,
                        _ => return None,
                    };
                    let m = r.u64()?;
                    if m > bf_store::MAX_RECORD_LEN as u64 {
                        return None;
                    }
                    let mut metrics = Vec::with_capacity(bounded_capacity(m));
                    for _ in 0..m {
                        metrics.push(decode_metric(&mut r)?);
                    }
                    replicas.push(WireReplicaStats {
                        node,
                        reachable,
                        metrics,
                    });
                }
                ServerMessage::ClusterStatsReport { id, replicas }
            }
            TAG_HEALTH_REPORT if version >= 5 => {
                let id = r.u64()?;
                let role = r.str()?;
                let epoch = r.u64()?;
                let applied = r.u64()?;
                let lag = r.u64()?;
                let wal_segments = r.u64()?;
                let queue_depth = r.u64()?;
                let n = r.u64()?;
                if n > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut unreachable = Vec::with_capacity(bounded_capacity(n));
                for _ in 0..n {
                    unreachable.push(r.str()?);
                }
                let m = r.u64()?;
                if m > bf_store::MAX_RECORD_LEN as u64 {
                    return None;
                }
                let mut firing = Vec::with_capacity(bounded_capacity(m));
                for _ in 0..m {
                    firing.push(r.str()?);
                }
                ServerMessage::HealthReport {
                    id,
                    role,
                    epoch,
                    applied,
                    lag,
                    wal_segments,
                    queue_depth,
                    unreachable,
                    firing,
                }
            }
            TAG_EVENT if version >= 5 => ServerMessage::Event {
                id: r.u64()?,
                seq: r.u64()?,
                kind: match r.u8()? {
                    EVENT_STAGE => WireEventKind::Stage,
                    EVENT_TRACE => WireEventKind::Trace,
                    EVENT_ROLE => WireEventKind::Role,
                    EVENT_SLO => WireEventKind::Slo,
                    _ => return None,
                },
                detail: r.str()?,
                value: r.u64()?,
            },
            TAG_FAREWELL => ServerMessage::Farewell { id: r.u64()? },
            _ => return None,
        };
        r.done().then_some(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bf_store::{frame_bytes, read_frame, FrameRead};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn arb_string(rng: &mut StdRng) -> String {
        let len = rng.random_range(0..12usize);
        (0..len)
            .map(|_| char::from(rng.random_range(b'a'..=b'z')))
            .collect()
    }

    fn arb_request(rng: &mut StdRng) -> WireRequest {
        let kind = match rng.random_range(0..5u32) {
            0 => WireRequestKind::Histogram,
            1 => WireRequestKind::Cumulative,
            2 => WireRequestKind::Range {
                lo: rng.random_range(0..1000u64),
                hi: rng.random_range(0..1000u64),
            },
            3 => WireRequestKind::Linear {
                weight_bits: (0..rng.random_range(0..20usize))
                    .map(|_| rng.random::<f64>().to_bits())
                    .collect(),
            },
            _ => WireRequestKind::Kmeans {
                k: rng.random_range(1..10u64),
                iterations: rng.random_range(1..10u64),
                spec: match rng.random_range(0..5u32) {
                    0 => WireKmeansSpec::Full,
                    1 => WireKmeansSpec::Attribute,
                    2 => WireKmeansSpec::L1Threshold(rng.random::<f64>().to_bits()),
                    3 => WireKmeansSpec::PartitionMaxDiameter(rng.random::<f64>().to_bits()),
                    _ => WireKmeansSpec::Exact,
                },
            },
        };
        WireRequest {
            policy: arb_string(rng),
            data: arb_string(rng),
            epsilon_bits: rng.random::<f64>().to_bits(),
            kind,
        }
    }

    fn arb_response(rng: &mut StdRng) -> WireResponse {
        match rng.random_range(0..4u32) {
            0 => WireResponse::Histogram(
                (0..rng.random_range(0..16usize))
                    .map(|_| rng.random())
                    .collect(),
            ),
            1 => WireResponse::Prefixes(
                (0..rng.random_range(0..16usize))
                    .map(|_| rng.random())
                    .collect(),
            ),
            2 => WireResponse::Scalar(rng.random()),
            _ => WireResponse::Centroids(
                (0..rng.random_range(0..4usize))
                    .map(|_| {
                        (0..rng.random_range(0..4usize))
                            .map(|_| rng.random())
                            .collect()
                    })
                    .collect(),
            ),
        }
    }

    fn arb_opt_u64(rng: &mut StdRng) -> Option<u64> {
        rng.random::<bool>().then(|| rng.random())
    }

    fn arb_error(rng: &mut StdRng) -> WireError {
        match rng.random_range(0..18u32) {
            0 => WireError::QueueFull {
                analyst: arb_string(rng),
                capacity: rng.random(),
            },
            1 => WireError::WindowFull {
                capacity: rng.random(),
            },
            2 => WireError::BudgetExhausted {
                analyst: arb_string(rng),
                requested_bits: rng.random(),
                remaining_bits: rng.random(),
            },
            3 => WireError::BudgetRefused {
                analyst: arb_string(rng),
                requested_bits: rng.random(),
                remaining_bits: rng.random(),
            },
            4 => WireError::ShutDown,
            5 => WireError::UnknownPolicy(arb_string(rng)),
            6 => WireError::UnknownDataset(arb_string(rng)),
            7 => WireError::UnknownPoints(arb_string(rng)),
            8 => WireError::UnknownAnalyst(arb_string(rng)),
            9 => WireError::SessionEvicted(arb_string(rng)),
            10 => WireError::InvalidRequest(arb_string(rng)),
            11 => WireError::Protocol(arb_string(rng)),
            12 => WireError::Overloaded {
                depth: rng.random(),
                limit: rng.random(),
            },
            13 => WireError::DeadlineExceeded {
                analyst: arb_string(rng),
            },
            14 => WireError::NotLeader {
                leader: arb_string(rng),
            },
            15 => WireError::StaleReplica {
                lag_entries: rng.random(),
            },
            16 => WireError::LogDiverged {
                leader_high_water: rng.random(),
            },
            _ => WireError::Other(arb_string(rng)),
        }
    }

    fn arb_log_entry(rng: &mut StdRng) -> WireLogEntry {
        WireLogEntry {
            epoch: rng.random(),
            index: rng.random(),
            analyst: arb_string(rng),
            request_id: rng.random(),
            op: if rng.random() {
                WireLogOp::OpenSession {
                    total_bits: rng.random(),
                }
            } else {
                WireLogOp::Submit {
                    request: arb_request(rng),
                }
            },
        }
    }

    fn arb_metric(rng: &mut StdRng) -> WireMetric {
        match rng.random_range(0..3u32) {
            0 => WireMetric::Counter {
                name: arb_string(rng),
                value: rng.random(),
            },
            1 => WireMetric::Gauge {
                name: arb_string(rng),
                bits: rng.random(),
            },
            _ => WireMetric::Histogram {
                name: arb_string(rng),
                count: rng.random(),
                sum: rng.random(),
                max: rng.random(),
                p50: rng.random(),
                p99: rng.random(),
                p999: rng.random(),
            },
        }
    }

    fn arb_trace_tree(rng: &mut StdRng) -> TraceTree {
        let spans = (0..rng.random_range(0..5usize))
            .map(|_| TraceSpan {
                stage: Stage::ALL[rng.random_range(0..Stage::ALL.len())],
                start_ns: rng.random(),
                duration_ns: rng.random(),
                outcome: arb_string(rng),
                link: arb_opt_u64(rng),
            })
            .collect();
        TraceTree {
            id: TraceId(rng.random()),
            analyst: arb_string(rng),
            total_ns: rng.random(),
            outcome: arb_string(rng),
            spans,
        }
    }

    fn arb_ledger_entry(rng: &mut StdRng) -> LedgerEntry {
        LedgerEntry {
            seq: rng.random(),
            eps_bits: rng.random(),
            label: arb_string(rng),
            fingerprint: rng.random(),
        }
    }

    fn arb_client_message(rng: &mut StdRng) -> ClientMessage {
        let id = rng.random();
        match rng.random_range(0..15u32) {
            0 => ClientMessage::Hello {
                id,
                version: rng.random::<u32>() as u16,
            },
            1 => ClientMessage::OpenSession {
                id,
                analyst: arb_string(rng),
                total_bits: rng.random(),
            },
            2 => ClientMessage::Submit {
                id,
                analyst: arb_string(rng),
                request: arb_request(rng),
                request_id: arb_opt_u64(rng),
                deadline_micros: arb_opt_u64(rng),
                trace_id: arb_opt_u64(rng),
                token: arb_opt_u64(rng),
            },
            3 => ClientMessage::SubmitBatch {
                id,
                analyst: arb_string(rng),
                requests: (0..rng.random_range(0..5usize))
                    .map(|_| arb_request(rng))
                    .collect(),
                token: arb_opt_u64(rng),
            },
            4 => ClientMessage::Budget {
                id,
                analyst: arb_string(rng),
            },
            5 => ClientMessage::Stats { id },
            6 => ClientMessage::Traces { id },
            7 => ClientMessage::BudgetAudit {
                id,
                analyst: arb_string(rng),
                token: arb_opt_u64(rng),
            },
            8 => ClientMessage::LogCatchup {
                last_epoch: rng.random(),
                id,
                epoch: rng.random(),
                from_index: rng.random(),
            },
            9 => ClientMessage::ReplicateAck {
                id,
                epoch: rng.random(),
                index: rng.random(),
            },
            10 => ClientMessage::PeerStatus { id },
            11 => ClientMessage::ClusterStats { id },
            12 => ClientMessage::Health { id },
            13 => ClientMessage::Watch { id },
            _ => ClientMessage::Goodbye { id },
        }
    }

    fn arb_replica_stats(rng: &mut StdRng) -> WireReplicaStats {
        let reachable = rng.random();
        WireReplicaStats {
            node: arb_string(rng),
            reachable,
            metrics: if reachable {
                (0..rng.random_range(0..4usize))
                    .map(|_| arb_metric(rng))
                    .collect()
            } else {
                Vec::new()
            },
        }
    }

    fn arb_server_message(rng: &mut StdRng) -> ServerMessage {
        let id = rng.random();
        match rng.random_range(0..15u32) {
            0 => ServerMessage::Welcome {
                id,
                version: rng.random::<u32>() as u16,
            },
            1 => ServerMessage::SessionAttached {
                id,
                remaining_bits: rng.random(),
                token: rng.random(),
            },
            2 => ServerMessage::Answer {
                id,
                response: arb_response(rng),
                trace_id: arb_opt_u64(rng),
            },
            3 => ServerMessage::BatchAnswer {
                id,
                slots: (0..rng.random_range(0..5usize))
                    .map(|_| {
                        if rng.random() {
                            Ok(arb_response(rng))
                        } else {
                            Err(arb_error(rng))
                        }
                    })
                    .collect(),
            },
            4 => ServerMessage::BudgetReport {
                id,
                total_bits: rng.random(),
                spent_bits: rng.random(),
                remaining_bits: rng.random(),
                served: rng.random(),
            },
            5 => ServerMessage::Refused {
                id,
                error: arb_error(rng),
                trace_id: arb_opt_u64(rng),
            },
            6 => ServerMessage::StatsReport {
                id,
                metrics: (0..rng.random_range(0..6usize))
                    .map(|_| arb_metric(rng))
                    .collect(),
            },
            7 => ServerMessage::TraceReport {
                id,
                traces: (0..rng.random_range(0..4usize))
                    .map(|_| arb_trace_tree(rng))
                    .collect(),
            },
            8 => ServerMessage::AuditReport {
                id,
                entries: (0..rng.random_range(0..6usize))
                    .map(|_| arb_ledger_entry(rng))
                    .collect(),
            },
            9 => ServerMessage::Replicate {
                id,
                epoch: rng.random(),
                commit_index: rng.random(),
                entries: (0..rng.random_range(0..4usize))
                    .map(|_| arb_log_entry(rng))
                    .collect(),
            },
            10 => ServerMessage::PeerStatusReport {
                id,
                epoch: rng.random(),
                high_water: rng.random(),
                applied: rng.random(),
            },
            11 => ServerMessage::ClusterStatsReport {
                id,
                replicas: (0..rng.random_range(0..4usize))
                    .map(|_| arb_replica_stats(rng))
                    .collect(),
            },
            12 => ServerMessage::HealthReport {
                id,
                role: arb_string(rng),
                epoch: rng.random(),
                applied: rng.random(),
                lag: rng.random(),
                wal_segments: rng.random(),
                queue_depth: rng.random(),
                unreachable: (0..rng.random_range(0..3usize))
                    .map(|_| arb_string(rng))
                    .collect(),
                firing: (0..rng.random_range(0..3usize))
                    .map(|_| arb_string(rng))
                    .collect(),
            },
            13 => ServerMessage::Event {
                id,
                seq: rng.random(),
                kind: match rng.random_range(0..4u32) {
                    0 => WireEventKind::Stage,
                    1 => WireEventKind::Trace,
                    2 => WireEventKind::Role,
                    _ => WireEventKind::Slo,
                },
                detail: arb_string(rng),
                value: rng.random(),
            },
            _ => ServerMessage::Farewell { id },
        }
    }

    /// What a message looks like after crossing a connection negotiated
    /// down to `version`: fields the version never defined are lost.
    fn downgrade_client(msg: &ClientMessage, version: u16) -> ClientMessage {
        let mut m = msg.clone();
        match &mut m {
            ClientMessage::Submit {
                trace_id, token, ..
            } => {
                if version < 3 {
                    *trace_id = None;
                }
                if version < 4 {
                    *token = None;
                }
            }
            ClientMessage::BudgetAudit { token, .. } if version < 4 => {
                *token = None;
            }
            ClientMessage::SubmitBatch { token, .. } if version < 4 => {
                *token = None;
            }
            _ => {}
        }
        m
    }

    fn downgrade_server(msg: &ServerMessage, version: u16) -> ServerMessage {
        let mut m = msg.clone();
        match &mut m {
            ServerMessage::SessionAttached { token, .. } if version < 4 => {
                *token = 0;
            }
            ServerMessage::Answer { trace_id, .. } | ServerMessage::Refused { trace_id, .. }
                if version < 3 =>
            {
                *trace_id = None;
            }
            _ => {}
        }
        m
    }

    proptest! {
        /// Every client message round-trips encode → decode exactly.
        #[test]
        fn client_messages_round_trip(seed in 0u64..512) {
            let mut rng = StdRng::seed_from_u64(seed);
            let msg = arb_client_message(&mut rng);
            prop_assert_eq!(ClientMessage::decode(&msg.encode()), Some(msg));
        }

        /// Every server message round-trips encode → decode exactly.
        #[test]
        fn server_messages_round_trip(seed in 0u64..512) {
            let mut rng = StdRng::seed_from_u64(seed);
            let msg = arb_server_message(&mut rng);
            prop_assert_eq!(ServerMessage::decode(&msg.encode()), Some(msg));
        }

        /// The negotiation path: at every supported version, a message
        /// round-trips to its *downgraded* self — optional fields the
        /// version never defined are dropped, never garbled — and
        /// frames the version did not define at all refuse to decode.
        #[test]
        fn versioned_round_trips_downgrade_optional_fields(seed in 0u64..512) {
            let mut rng = StdRng::seed_from_u64(seed);
            let cm = arb_client_message(&mut rng);
            let sm = arb_server_message(&mut rng);
            for v in MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION {
                let peer_only = matches!(
                    cm,
                    ClientMessage::LogCatchup { .. }
                        | ClientMessage::ReplicateAck { .. }
                        | ClientMessage::PeerStatus { .. }
                );
                let cluster_only = matches!(
                    cm,
                    ClientMessage::ClusterStats { .. }
                        | ClientMessage::Health { .. }
                        | ClientMessage::Watch { .. }
                );
                if (v < 4 && peer_only) || (v < 5 && cluster_only) {
                    prop_assert_eq!(ClientMessage::decode_for(&cm.encode_for(v), v), None);
                } else {
                    prop_assert_eq!(
                        ClientMessage::decode_for(&cm.encode_for(v), v),
                        Some(downgrade_client(&cm, v))
                    );
                }
                let sm_peer_only = matches!(
                    sm,
                    ServerMessage::Replicate { .. } | ServerMessage::PeerStatusReport { .. }
                );
                let sm_cluster_only = matches!(
                    sm,
                    ServerMessage::ClusterStatsReport { .. }
                        | ServerMessage::HealthReport { .. }
                        | ServerMessage::Event { .. }
                );
                if (v < 4 && sm_peer_only) || (v < 5 && sm_cluster_only) {
                    prop_assert_eq!(ServerMessage::decode_for(&sm.encode_for(v), v), None);
                } else {
                    prop_assert_eq!(
                        ServerMessage::decode_for(&sm.encode_for(v), v),
                        Some(downgrade_server(&sm, v))
                    );
                }
            }
        }

        /// Log operations round-trip standalone — the encoding a
        /// `Record::Replicated` WAL frame carries must survive recovery.
        #[test]
        fn log_ops_round_trip(seed in 0u64..256) {
            let mut rng = StdRng::seed_from_u64(seed);
            let entry = arb_log_entry(&mut rng);
            prop_assert_eq!(WireLogOp::decode(&entry.op.encode()), Some(entry.op));
        }

        /// Metric samples survive obs-snapshot → wire → obs-snapshot
        /// bit-exactly (gauges carried as raw `f64` bits).
        #[test]
        fn metric_snapshot_conversions_round_trip(seed in 0u64..256) {
            let mut rng = StdRng::seed_from_u64(seed);
            let wire = arb_metric(&mut rng);
            prop_assert_eq!(WireMetric::from_snapshot(&wire.to_snapshot()), wire);
        }

        /// Engine request/response conversions are lossless (ε, weights
        /// and answers as exact bits).
        #[test]
        fn engine_conversions_round_trip(seed in 0u64..256) {
            let mut rng = StdRng::seed_from_u64(seed);
            let wire = arb_request(&mut rng);
            if let Ok(request) = wire.to_request() {
                prop_assert_eq!(WireRequest::from_request(&request), wire);
            }
            let resp = arb_response(&mut rng);
            prop_assert_eq!(WireResponse::from_response(&resp.to_response()), resp.clone());
        }
    }

    /// Trailing garbage after a well-formed message must not decode.
    #[test]
    fn trailing_garbage_is_rejected() {
        let msg = ClientMessage::Goodbye { id: 7 };
        let mut payload = msg.encode();
        payload.push(0);
        assert_eq!(ClientMessage::decode(&payload), None);
        assert_eq!(ClientMessage::decode(&[]), None);
        assert_eq!(ClientMessage::decode(&[200]), None);
        assert_eq!(ServerMessage::decode(&[]), None);
        assert_eq!(ServerMessage::decode(&[200]), None);
    }

    /// The corruption sweep: flip EVERY single byte (and every single
    /// bit of each byte position's value) of framed messages; the frame
    /// layer must reject or wait — a flipped frame is never misparsed
    /// into a different well-formed message.
    #[test]
    fn single_byte_flips_never_misparse() {
        let mut rng = StdRng::seed_from_u64(0xF1F1);
        for case in 0..32 {
            // Cycle through every negotiated version so the downgraded
            // encodings get the same corruption coverage as the native
            // one.
            let version = MIN_PROTOCOL_VERSION
                + (case as u16 / 2) % (PROTOCOL_VERSION - MIN_PROTOCOL_VERSION + 1);
            let payload = if case % 2 == 0 {
                arb_client_message(&mut rng).encode_for(version)
            } else {
                arb_server_message(&mut rng).encode_for(version)
            };
            let framed = frame_bytes(&payload);
            for pos in 0..framed.len() {
                for bit in [0x01u8, 0x10, 0x80] {
                    let mut damaged = framed.clone();
                    damaged[pos] ^= bit;
                    match read_frame(&damaged) {
                        // A bigger length field: the reader waits for
                        // bytes that never come — a stall, never a parse.
                        FrameRead::Incomplete => {}
                        // Checksum or length sanity caught it.
                        FrameRead::Corrupt => {}
                        FrameRead::Complete { payload: p, .. } => {
                            // The only acceptable "complete" readings are
                            // impossible: the flip changed some byte, so
                            // an intact checksum would be an FNV-1a
                            // collision one bit-flip away — fail loudly.
                            panic!(
                                "flip at byte {pos} (bit {bit:#x}) of case {case} \
                                 still parsed: {:?}",
                                p
                            );
                        }
                    }
                }
            }
        }
    }

    /// Partial frames (every prefix) wait for more bytes — a slow or
    /// segmented TCP stream never kills a connection.
    #[test]
    fn every_prefix_is_incomplete_not_corrupt() {
        let msg = ClientMessage::Submit {
            id: 42,
            analyst: "alice".into(),
            request: WireRequest {
                policy: "pol".into(),
                data: "ds".into(),
                epsilon_bits: 0.5f64.to_bits(),
                kind: WireRequestKind::Range { lo: 3, hi: 9 },
            },
            request_id: Some(42),
            deadline_micros: None,
            trace_id: Some(0xDEADBEEF),
            token: Some(0x70_6B),
        };
        let framed = frame_bytes(&msg.encode());
        for cut in 0..framed.len() {
            assert_eq!(
                read_frame(&framed[..cut]),
                FrameRead::Incomplete,
                "cut {cut}"
            );
        }
        // And the whole frame parses back to the message.
        match read_frame(&framed) {
            FrameRead::Complete { payload, consumed } => {
                assert_eq!(consumed, framed.len());
                assert_eq!(ClientMessage::decode(payload), Some(msg));
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }
}
