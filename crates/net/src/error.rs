//! The client-side error vocabulary.

use crate::proto::WireError;
use std::fmt;

/// Everything a network call can come back with.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed. The connection is dead; reconnect (the
    /// client's [`crate::Client::reconnect`] reattaches sessions).
    Io(std::io::Error),
    /// The peer broke the protocol: a corrupt frame, an undecodable
    /// message, a reply for an unknown correlation id, or a handshake
    /// out of order. The connection cannot be trusted and is closed.
    Protocol(String),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our version.
        ours: u16,
        /// The peer's version.
        theirs: u16,
    },
    /// The connection died with requests still in flight. Their answers
    /// are unknowable (some may have been served and charged); reconnect
    /// and query the budget before resubmitting.
    ConnectionLost {
        /// Correlation ids that were outstanding.
        in_flight: Vec<u64>,
    },
    /// The server refused the request with a typed error.
    Remote(WireError),
    /// No reply arrived within the client's configured timeout
    /// ([`crate::Client::set_timeout`]). The request may still be
    /// served and charged; retry with the same idempotency key
    /// ([`crate::Client::call_idempotent`]) to replay the durable
    /// answer rather than paying twice.
    TimedOut,
    /// A retry loop gave up: every attempt failed, `last` being the
    /// final failure. Raised by [`crate::Client::call_idempotent`] and
    /// [`crate::Client::reconnect_with`] once their attempt budget is
    /// spent.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<NetError>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, theirs {theirs}")
            }
            NetError::ConnectionLost { in_flight } => write!(
                f,
                "connection lost with {} request(s) in flight",
                in_flight.len()
            ),
            NetError::Remote(e) => write!(f, "server refused: {e}"),
            NetError::TimedOut => write!(f, "timed out waiting for a reply"),
            NetError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Remote(e) => Some(e),
            NetError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = NetError::VersionMismatch { ours: 1, theirs: 2 };
        assert!(e.to_string().contains("ours 1"));
        let e = NetError::Remote(WireError::UnknownPolicy("p".into()));
        assert!(e.to_string().contains("\"p\""));
        assert!(std::error::Error::source(&e).is_some());
        let e = NetError::ConnectionLost {
            in_flight: vec![1, 2],
        };
        assert!(e.to_string().contains("2 request(s)"));
        let e = NetError::RetriesExhausted {
            attempts: 3,
            last: Box::new(NetError::TimedOut),
        };
        assert!(e.to_string().contains("3 attempt(s)"));
        assert!(e.to_string().contains("timed out"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
