//! Totally ordered 1-D domains.
//!
//! Section 7 of the paper works over a domain `T = {x1, …, x|T|}` with a
//! total ordering `x1 ≤ … ≤ x|T|`. [`OrderedDomain`] captures that view:
//! a size, an optional mapping from value index to a real-valued coordinate
//! (e.g. kilometres per latitude bin, or dollars of capital loss), and
//! helpers for distance-threshold reasoning.

use crate::error::DomainError;

/// A totally ordered one-dimensional domain.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedDomain {
    name: String,
    size: usize,
    /// Physical width of one step between adjacent values, used to translate
    /// a physical threshold (e.g. "500 km") into a value-index threshold θ.
    step_width: f64,
}

impl OrderedDomain {
    /// Creates an ordered domain of `size` values with unit step width.
    ///
    /// # Errors
    ///
    /// [`DomainError::EmptyDomain`] if `size == 0`.
    pub fn new(name: impl Into<String>, size: usize) -> Result<Self, DomainError> {
        Self::with_step_width(name, size, 1.0)
    }

    /// Creates an ordered domain whose adjacent values are `step_width`
    /// physical units apart (e.g. 0.05° latitude ≈ 5.55 km).
    ///
    /// # Errors
    ///
    /// [`DomainError::EmptyDomain`] if `size == 0`.
    pub fn with_step_width(
        name: impl Into<String>,
        size: usize,
        step_width: f64,
    ) -> Result<Self, DomainError> {
        if size == 0 {
            return Err(DomainError::EmptyDomain);
        }
        assert!(step_width > 0.0, "step width must be positive");
        Ok(Self {
            name: name.into(),
            size,
            step_width,
        })
    }

    /// Domain name (attribute being ordered).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values `|T|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Physical width of one index step.
    pub fn step_width(&self) -> f64 {
        self.step_width
    }

    /// Ordinal distance `|x − y|` between two value indices.
    pub fn distance(&self, x: usize, y: usize) -> usize {
        x.abs_diff(y)
    }

    /// Physical distance between two value indices.
    pub fn physical_distance(&self, x: usize, y: usize) -> f64 {
        self.distance(x, y) as f64 * self.step_width
    }

    /// Converts a physical threshold into the largest value-index threshold
    /// θ such that indices within θ steps are within the physical threshold.
    ///
    /// A physical threshold smaller than one step clamps to θ = 1 (adjacent
    /// values are always secrets — the line graph of Section 7.1).
    pub fn theta_for_physical(&self, physical: f64) -> usize {
        assert!(physical > 0.0, "physical threshold must be positive");
        let theta = (physical / self.step_width).floor() as usize;
        theta.clamp(1, self.size.saturating_sub(1).max(1))
    }

    /// θ corresponding to "full domain" (complete graph / ordinary DP):
    /// every pair of values is a secret pair.
    pub fn theta_full(&self) -> usize {
        self.size.saturating_sub(1).max(1)
    }

    /// Validates an inclusive range `[lo, hi]` of value indices.
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidRange`] if `lo > hi` or `hi >= size`.
    pub fn check_range(&self, lo: usize, hi: usize) -> Result<(), DomainError> {
        if lo > hi || hi >= self.size {
            return Err(DomainError::InvalidRange {
                lo,
                hi,
                size: self.size,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert!(OrderedDomain::new("x", 0).is_err());
    }

    #[test]
    fn distances() {
        let d = OrderedDomain::with_step_width("lat", 400, 5.55).unwrap();
        assert_eq!(d.distance(10, 3), 7);
        assert!((d.physical_distance(0, 100) - 555.0).abs() < 1e-9);
    }

    #[test]
    fn theta_conversion() {
        // twitter latitude: 400 bins, ~5.55 km per bin.
        let d = OrderedDomain::with_step_width("lat", 400, 5.55).unwrap();
        assert_eq!(d.theta_for_physical(500.0), 90); // 500/5.55 = 90.09
        assert_eq!(d.theta_for_physical(5.0), 1); // sub-step clamps to 1
        assert_eq!(d.theta_full(), 399);
    }

    #[test]
    fn theta_never_exceeds_domain() {
        let d = OrderedDomain::new("x", 10).unwrap();
        assert_eq!(d.theta_for_physical(1e9), 9);
    }

    #[test]
    fn range_validation() {
        let d = OrderedDomain::new("x", 10).unwrap();
        assert!(d.check_range(0, 9).is_ok());
        assert!(d.check_range(3, 2).is_err());
        assert!(d.check_range(0, 10).is_err());
    }
}
