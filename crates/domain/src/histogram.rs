//! Histograms and cumulative histograms.
//!
//! `h_T(D)` (Definition in Section 2) counts the occurrences of every domain
//! value; `S_T(D)` (Definition 7.1) is the sequence of prefix sums over a
//! totally ordered domain. Both are represented with `f64` counts so they
//! double as containers for *noisy* answers.

use crate::error::DomainError;
use crate::partition::Partition;

/// A (possibly noisy) histogram over a domain of a given size: one count per
/// domain value.
///
/// # Examples
///
/// ```
/// use bf_domain::Histogram;
///
/// let h = Histogram::from_rows(4, &[0, 0, 2, 3]);
/// assert_eq!(h.counts(), &[2.0, 0.0, 1.0, 1.0]);
/// assert_eq!(h.range_count(0, 1).unwrap(), 2.0);
/// let cum = h.cumulative();
/// assert_eq!(cum.prefixes(), &[2.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<f64>,
}

/// A (possibly noisy) cumulative histogram: `s_i = Σ_{j ≤ i} c(x_j)`
/// (Definition 7.1).
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeHistogram {
    prefix: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram from raw counts.
    pub fn from_counts(counts: Vec<f64>) -> Self {
        Self { counts }
    }

    /// An all-zero histogram over `size` values.
    pub fn zeros(size: usize) -> Self {
        Self {
            counts: vec![0.0; size],
        }
    }

    /// Counts exact occurrences of each value among encoded rows.
    pub fn from_rows(domain_size: usize, rows: &[usize]) -> Self {
        let mut counts = vec![0.0; domain_size];
        for &r in rows {
            counts[r] += 1.0;
        }
        Self { counts }
    }

    /// Domain size `|T|`.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram has no cells.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Count of value `x`.
    pub fn count(&self, x: usize) -> f64 {
        self.counts[x]
    }

    /// All counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Mutable access to the counts (mechanisms add noise in place).
    pub fn counts_mut(&mut self) -> &mut [f64] {
        &mut self.counts
    }

    /// Total mass `Σ c(x)`.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Number of values with non-zero count.
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0.0).count()
    }

    /// Cumulative histogram `S_T` of this histogram (requires the natural
    /// index order to be the domain's total order).
    pub fn cumulative(&self) -> CumulativeHistogram {
        let mut prefix = Vec::with_capacity(self.counts.len());
        let mut acc = 0.0;
        for &c in &self.counts {
            acc += c;
            prefix.push(acc);
        }
        CumulativeHistogram { prefix }
    }

    /// Coarsens the histogram along a partition: `h_P(D)` from `h_T(D)`.
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidPartition`] when the partition covers a
    /// different domain size.
    pub fn coarsen(&self, partition: &Partition) -> Result<Histogram, DomainError> {
        if partition.domain_size() != self.len() {
            return Err(DomainError::InvalidPartition(format!(
                "partition covers {} values but histogram has {}",
                partition.domain_size(),
                self.len()
            )));
        }
        let mut out = vec![0.0; partition.num_blocks()];
        for (x, &c) in self.counts.iter().enumerate() {
            out[partition.block_of(x) as usize] += c;
        }
        Ok(Histogram { counts: out })
    }

    /// Exact range-count `q[lo, hi]` (inclusive) on this histogram.
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidRange`] for empty or out-of-bounds ranges.
    pub fn range_count(&self, lo: usize, hi: usize) -> Result<f64, DomainError> {
        if lo > hi || hi >= self.len() {
            return Err(DomainError::InvalidRange {
                lo,
                hi,
                size: self.len(),
            });
        }
        Ok(self.counts[lo..=hi].iter().sum())
    }

    /// L1 distance to another histogram — `||h(D1) − h(D2)||_1`, the
    /// quantity bounded by policy-specific sensitivity.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        assert_eq!(self.len(), other.len());
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Mean squared error against a reference histogram (Definition 2.4 with
    /// the sum taken over components, divided by the number of components).
    pub fn mse(&self, reference: &Histogram) -> f64 {
        assert_eq!(self.len(), reference.len());
        if self.is_empty() {
            return 0.0;
        }
        self.counts
            .iter()
            .zip(&reference.counts)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / self.len() as f64
    }
}

impl CumulativeHistogram {
    /// Builds from raw prefix sums.
    pub fn from_prefix(prefix: Vec<f64>) -> Self {
        Self { prefix }
    }

    /// Number of prefix counts `|T|`.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// Whether there are no counts.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Prefix count `s_i = Σ_{j ≤ i} c(x_j)` (0-based `i`).
    pub fn prefix(&self, i: usize) -> f64 {
        self.prefix[i]
    }

    /// All prefix counts.
    pub fn prefixes(&self) -> &[f64] {
        &self.prefix
    }

    /// Mutable access (mechanisms add noise / enforce constraints in place).
    pub fn prefixes_mut(&mut self) -> &mut [f64] {
        &mut self.prefix
    }

    /// Number of *distinct* prefix values, the sparsity parameter `p` in the
    /// error bound `O(p log³|T| / ε²)` of Section 7.1. Sorted input is
    /// guaranteed for exact cumulative histograms; for noisy ones this
    /// counts distinct values in sequence order.
    pub fn distinct_count(&self) -> usize {
        if self.prefix.is_empty() {
            return 0;
        }
        1 + self.prefix.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Range query `q[lo, hi] = s_hi − s_{lo−1}` (inclusive, 0-based).
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidRange`] for empty or out-of-bounds ranges.
    pub fn range_count(&self, lo: usize, hi: usize) -> Result<f64, DomainError> {
        if lo > hi || hi >= self.len() {
            return Err(DomainError::InvalidRange {
                lo,
                hi,
                size: self.len(),
            });
        }
        let upper = self.prefix[hi];
        let lower = if lo == 0 { 0.0 } else { self.prefix[lo - 1] };
        Ok(upper - lower)
    }

    /// Recovers the per-value histogram by differencing.
    pub fn to_histogram(&self) -> Histogram {
        let mut counts = Vec::with_capacity(self.prefix.len());
        let mut prev = 0.0;
        for &s in &self.prefix {
            counts.push(s - prev);
            prev = s;
        }
        Histogram::from_counts(counts)
    }

    /// Empirical CDF: prefix counts divided by the total `n` (the paper
    /// divides by `|D| = n`, which is public knowledge).
    pub fn cdf(&self) -> Vec<f64> {
        let n = self.prefix.last().copied().unwrap_or(0.0);
        if n == 0.0 {
            return vec![0.0; self.prefix.len()];
        }
        self.prefix.iter().map(|&s| s / n).collect()
    }

    /// Smallest value index whose CDF reaches `q ∈ [0,1]` (quantile lookup,
    /// one of the CDF applications named in Section 7).
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q));
        let n = self.prefix.last().copied().unwrap_or(0.0);
        let target = q * n;
        self.prefix
            .iter()
            .position(|&s| s >= target)
            .unwrap_or(self.prefix.len().saturating_sub(1))
    }

    /// Whether prefix counts are non-decreasing (the ordering constraint the
    /// constrained-inference step enforces).
    pub fn is_sorted(&self) -> bool {
        self.prefix.windows(2).all(|w| w[0] <= w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Histogram {
        Histogram::from_rows(5, &[0, 0, 2, 4, 4, 4])
    }

    #[test]
    fn from_rows_counts() {
        let h = h();
        assert_eq!(h.counts(), &[2.0, 0.0, 1.0, 0.0, 3.0]);
        assert_eq!(h.total(), 6.0);
        assert_eq!(h.support_size(), 3);
    }

    #[test]
    fn cumulative_and_back() {
        let c = h().cumulative();
        assert_eq!(c.prefixes(), &[2.0, 2.0, 3.0, 3.0, 6.0]);
        assert_eq!(c.to_histogram(), h());
        assert!(c.is_sorted());
        assert_eq!(c.distinct_count(), 3);
    }

    #[test]
    fn range_counts_agree() {
        let hist = h();
        let cum = hist.cumulative();
        for lo in 0..5 {
            for hi in lo..5 {
                assert_eq!(
                    hist.range_count(lo, hi).unwrap(),
                    cum.range_count(lo, hi).unwrap(),
                    "range [{lo},{hi}]"
                );
            }
        }
        assert!(hist.range_count(3, 2).is_err());
        assert!(cum.range_count(0, 5).is_err());
    }

    #[test]
    fn coarsen_by_partition() {
        let p = Partition::intervals(5, 2);
        let coarse = h().coarsen(&p).unwrap();
        assert_eq!(coarse.counts(), &[2.0, 1.0, 3.0]);
        let bad = Partition::intervals(4, 2);
        assert!(h().coarsen(&bad).is_err());
    }

    #[test]
    fn mse_and_l1() {
        let a = Histogram::from_counts(vec![1.0, 2.0]);
        let b = Histogram::from_counts(vec![2.0, 0.0]);
        assert_eq!(a.l1_distance(&b), 3.0);
        assert_eq!(a.mse(&b), (1.0 + 4.0) / 2.0);
    }

    #[test]
    fn cdf_and_quantiles() {
        let c = h().cumulative();
        let cdf = c.cdf();
        assert!((cdf[4] - 1.0).abs() < 1e-12);
        assert_eq!(c.quantile(0.0), 0);
        assert_eq!(c.quantile(0.5), 2); // s_2 = 3 >= 3
        assert_eq!(c.quantile(1.0), 4);
    }

    #[test]
    fn empty_cdf_is_zero() {
        let c = Histogram::zeros(3).cumulative();
        assert_eq!(c.cdf(), vec![0.0, 0.0, 0.0]);
    }
}
