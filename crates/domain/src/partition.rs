//! Domain partitions.
//!
//! A partition `P = {P1, …, Pp}` divides the domain into disjoint blocks
//! whose union is the whole domain. Partitions back:
//!
//! * the partitioned sensitive-information graph `G^P` (an adversary may
//!   learn which block an individual is in, but not where inside it), and
//! * histogram queries `h_P` over coarsened domains (Section 2).

use crate::domain::Domain;
use crate::error::DomainError;

/// A partition of the domain into `num_blocks` disjoint blocks, stored as
/// the block id of every domain value.
///
/// # Examples
///
/// ```
/// use bf_domain::Partition;
///
/// let p = Partition::intervals(10, 3); // {0..2}, {3..5}, {6..8}, {9}
/// assert_eq!(p.num_blocks(), 4);
/// assert!(p.same_block(0, 2));
/// assert!(!p.same_block(2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    block_of: Vec<u32>,
    num_blocks: usize,
}

impl Partition {
    /// Builds a partition from a per-value block assignment.
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidPartition`] when `block_of` is empty, or block
    /// ids are not exactly `0..num_blocks` (every block must be non-empty).
    pub fn new(block_of: Vec<u32>) -> Result<Self, DomainError> {
        if block_of.is_empty() {
            return Err(DomainError::InvalidPartition("no values".into()));
        }
        let num_blocks = block_of.iter().map(|&b| b as usize + 1).max().unwrap_or(0);
        let mut seen = vec![false; num_blocks];
        for &b in &block_of {
            seen[b as usize] = true;
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(DomainError::InvalidPartition(format!(
                "block {missing} is empty; block ids must be dense"
            )));
        }
        Ok(Self {
            block_of,
            num_blocks,
        })
    }

    /// The trivial partition: every value in its own block (`p = |T|`).
    pub fn singletons(domain_size: usize) -> Self {
        Self {
            block_of: (0..domain_size as u32).collect(),
            num_blocks: domain_size,
        }
    }

    /// The trivial partition with a single block covering the whole domain.
    pub fn single_block(domain_size: usize) -> Self {
        Self {
            block_of: vec![0; domain_size],
            num_blocks: 1,
        }
    }

    /// Partitions a 1-D ordered domain into contiguous intervals of width
    /// `width` (the last interval may be shorter).
    pub fn intervals(domain_size: usize, width: usize) -> Self {
        assert!(width >= 1);
        let block_of = (0..domain_size).map(|i| (i / width) as u32).collect();
        Self::new(block_of).expect("interval blocks are dense")
    }

    /// Partitions a domain by the value of one attribute: two domain values
    /// share a block iff they agree on attribute `attr`.
    pub fn by_attribute(domain: &Domain, attr: usize) -> Self {
        let block_of = domain
            .indices()
            .map(|i| domain.attribute_value(i, attr))
            .collect();
        Self::new(block_of).expect("attribute blocks are dense")
    }

    /// Number of blocks `p`.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Number of domain values covered.
    pub fn domain_size(&self) -> usize {
        self.block_of.len()
    }

    /// Block id of domain value `x`.
    pub fn block_of(&self, x: usize) -> u32 {
        self.block_of[x]
    }

    /// Whether `x` and `y` share a block.
    pub fn same_block(&self, x: usize, y: usize) -> bool {
        self.block_of[x] == self.block_of[y]
    }

    /// Sizes of every block.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_blocks];
        for &b in &self.block_of {
            sizes[b as usize] += 1;
        }
        sizes
    }

    /// Members of every block.
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let mut blocks = vec![Vec::new(); self.num_blocks];
        for (x, &b) in self.block_of.iter().enumerate() {
            blocks[b as usize].push(x);
        }
        blocks
    }

    /// The per-value assignment slice.
    pub fn assignments(&self) -> &[u32] {
        &self.block_of
    }

    /// Whether `other` is a refinement of `self`: every block of `other`
    /// lies inside a block of `self`. (Coarser histograms of a partition can
    /// be released exactly under `G^P`; see Section 5.)
    pub fn refines(&self, finer: &Partition) -> bool {
        if self.domain_size() != finer.domain_size() {
            return false;
        }
        // For each finer block, all members must share a coarse block.
        let mut coarse_of_finer: Vec<Option<u32>> = vec![None; finer.num_blocks()];
        for (x, &fb) in finer.block_of.iter().enumerate() {
            let cb = self.block_of[x];
            match coarse_of_finer[fb as usize] {
                None => coarse_of_finer[fb as usize] = Some(cb),
                Some(prev) if prev != cb => return false,
                _ => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_sparse_block_ids() {
        assert!(Partition::new(vec![0, 2]).is_err());
        assert!(Partition::new(vec![]).is_err());
        assert!(Partition::new(vec![0, 1, 1, 0]).is_ok());
    }

    #[test]
    fn intervals_partition() {
        let p = Partition::intervals(10, 3);
        assert_eq!(p.num_blocks(), 4);
        assert_eq!(p.block_sizes(), vec![3, 3, 3, 1]);
        assert!(p.same_block(0, 2));
        assert!(!p.same_block(2, 3));
    }

    #[test]
    fn by_attribute_partition() {
        let d = Domain::from_cardinalities(&[2, 3]).unwrap();
        let p = Partition::by_attribute(&d, 0);
        assert_eq!(p.num_blocks(), 2);
        assert!(p.same_block(d.encode(&[0, 0]).unwrap(), d.encode(&[0, 2]).unwrap()));
        assert!(!p.same_block(d.encode(&[0, 0]).unwrap(), d.encode(&[1, 0]).unwrap()));
    }

    #[test]
    fn refinement() {
        let coarse = Partition::intervals(8, 4);
        let fine = Partition::intervals(8, 2);
        assert!(coarse.refines(&fine));
        assert!(!fine.refines(&coarse));
        let singles = Partition::singletons(8);
        assert!(coarse.refines(&singles));
        assert!(Partition::single_block(8).refines(&coarse));
    }

    #[test]
    fn blocks_listing() {
        let p = Partition::new(vec![1, 0, 1, 0]).unwrap();
        assert_eq!(p.blocks(), vec![vec![1, 3], vec![0, 2]]);
    }
}
