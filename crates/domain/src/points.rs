//! Continuous point sets for k-means style analyses.
//!
//! The k-means experiments of Section 6 run over real-valued points
//! (lat/long, RGB, ℝ⁴). [`PointSet`] stores row-major `f64` coordinates
//! with the bounding box that defines the domain diameter `d(T)` used to
//! calibrate `q_sum` sensitivity.

use crate::dataset::Dataset;
use crate::grid::GridDomain;

/// A point in ℝ^dim.
pub type Point = Vec<f64>;

/// Axis-aligned bounding box of the domain.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundingBox {
    /// Lower corner per axis.
    pub lo: Vec<f64>,
    /// Upper corner per axis.
    pub hi: Vec<f64>,
}

impl BoundingBox {
    /// Builds a box, validating `lo[i] <= hi[i]`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len());
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "box corners must be ordered"
        );
        Self { lo, hi }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Side length along each axis.
    pub fn extents(&self) -> Vec<f64> {
        self.lo.iter().zip(&self.hi).map(|(a, b)| b - a).collect()
    }

    /// L1 diameter `d(T)`: the largest L1 distance between two points of
    /// the box (sum of extents). This is the paper's `d(T)` in the `q_sum`
    /// sensitivity `2·d(T)` for differential privacy.
    pub fn l1_diameter(&self) -> f64 {
        self.extents().iter().sum()
    }

    /// The largest per-axis extent: `max_A |A|` in Lemma 6.1 (attribute
    /// secret graph sensitivity is `2 · max_A |A|`).
    pub fn max_extent(&self) -> f64 {
        self.extents().iter().cloned().fold(0.0, f64::max)
    }

    /// Clamps a point into the box (used after noisy centroid updates).
    pub fn clamp(&self, p: &mut [f64]) {
        for (v, (l, h)) in p.iter_mut().zip(self.lo.iter().zip(&self.hi)) {
            *v = v.clamp(*l, *h);
        }
    }

    /// Whether the box contains `p`.
    pub fn contains(&self, p: &[f64]) -> bool {
        p.iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&v, (&l, &h))| l <= v && v <= h)
    }
}

/// A set of `n` points in ℝ^dim with its domain bounding box.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSet {
    dim: usize,
    /// Row-major coordinates, `n * dim` values.
    coords: Vec<f64>,
    bbox: BoundingBox,
}

impl PointSet {
    /// Builds a point set; every point must lie inside the box.
    pub fn new(points: Vec<Point>, bbox: BoundingBox) -> Self {
        let dim = bbox.dim();
        let mut coords = Vec::with_capacity(points.len() * dim);
        for p in &points {
            assert_eq!(p.len(), dim, "point dimensionality mismatch");
            debug_assert!(bbox.contains(p), "point outside bounding box");
            coords.extend_from_slice(p);
        }
        Self { dim, coords, bbox }
    }

    /// Builds from row-major coordinates.
    pub fn from_flat(dim: usize, coords: Vec<f64>, bbox: BoundingBox) -> Self {
        assert_eq!(bbox.dim(), dim);
        assert_eq!(coords.len() % dim.max(1), 0);
        Self { dim, coords, bbox }
    }

    /// Converts a discrete grid dataset into points at cell centers scaled
    /// by physical cell widths — how the twitter grid becomes km-scale
    /// coordinates for k-means.
    pub fn from_grid_dataset(grid: &GridDomain, dataset: &Dataset) -> Self {
        assert_eq!(grid.domain().size(), dataset.domain().size());
        let dim = grid.arity();
        let widths = grid.cell_widths();
        let mut coords = Vec::with_capacity(dataset.len() * dim);
        for &row in dataset.rows() {
            for (axis, c) in grid.coords(row).into_iter().enumerate() {
                coords.push((c as f64 + 0.5) * widths[axis]);
            }
        }
        let lo = vec![0.0; dim];
        let hi: Vec<f64> = grid
            .dims()
            .iter()
            .zip(widths)
            .map(|(&d, &w)| d as f64 * w)
            .collect();
        Self {
            dim,
            coords,
            bbox: BoundingBox::new(lo, hi),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Point `i` as a slice.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over points.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.coords.chunks_exact(self.dim)
    }

    /// The bounding box.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Keeps only the points at the given indices (subsampling).
    pub fn subset(&self, indices: &[usize]) -> PointSet {
        let mut coords = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            coords.extend_from_slice(self.point(i));
        }
        Self {
            dim: self.dim,
            coords,
            bbox: self.bbox.clone(),
        }
    }

    /// Squared L2 distance between two points.
    pub fn sq_l2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// L1 distance between two points.
    pub fn l1(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn bbox_diameters() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![3.0, 4.0]);
        assert_eq!(b.l1_diameter(), 7.0);
        assert_eq!(b.max_extent(), 4.0);
    }

    #[test]
    fn bbox_clamp() {
        let b = BoundingBox::new(vec![0.0], vec![1.0]);
        let mut p = vec![2.5];
        b.clamp(&mut p);
        assert_eq!(p, vec![1.0]);
        assert!(b.contains(&p));
    }

    #[test]
    fn pointset_accessors() {
        let b = BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]);
        let ps = PointSet::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], b);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.point(1), &[3.0, 4.0]);
        assert_eq!(ps.iter().count(), 2);
        let sub = ps.subset(&[1]);
        assert_eq!(sub.len(), 1);
        assert_eq!(sub.point(0), &[3.0, 4.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(PointSet::sq_l2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(PointSet::l1(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    fn grid_dataset_to_points() {
        let grid = GridDomain::with_cell_widths(vec![4, 3], vec![2.0, 1.0]).unwrap();
        let domain = Domain::from_cardinalities(&[4, 3]).unwrap();
        let ds = Dataset::from_rows(domain, vec![0, 11]).unwrap();
        let ps = PointSet::from_grid_dataset(&grid, &ds);
        assert_eq!(ps.len(), 2);
        // Cell (0,0) center = (0.5*2, 0.5*1).
        assert_eq!(ps.point(0), &[1.0, 0.5]);
        // Cell (3,2) center = (3.5*2, 2.5*1).
        assert_eq!(ps.point(1), &[7.0, 2.5]);
        assert_eq!(ps.bbox().hi, vec![8.0, 3.0]);
    }
}
