//! Error type shared by the domain layer.

use std::fmt;

/// Errors raised while constructing or indexing domains and datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// An attribute was declared with zero values.
    EmptyAttribute {
        /// Name of the offending attribute.
        name: String,
    },
    /// A domain was constructed with no attributes.
    EmptyDomain,
    /// The cross-product of attribute cardinalities overflowed `usize`.
    DomainTooLarge,
    /// A tuple had the wrong number of attribute values.
    ArityMismatch {
        /// Number of attributes in the domain.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// An attribute value index was out of range.
    ValueOutOfRange {
        /// Attribute position.
        attribute: usize,
        /// Supplied value index.
        value: u32,
        /// Cardinality of the attribute.
        cardinality: usize,
    },
    /// A dense domain index was out of range.
    IndexOutOfRange {
        /// Supplied index.
        index: usize,
        /// Domain size.
        size: usize,
    },
    /// A partition did not cover the domain or blocks overlapped.
    InvalidPartition(String),
    /// A range `[lo, hi]` was empty or exceeded the domain.
    InvalidRange {
        /// Lower endpoint (inclusive).
        lo: usize,
        /// Upper endpoint (inclusive).
        hi: usize,
        /// Domain size.
        size: usize,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::EmptyAttribute { name } => {
                write!(f, "attribute `{name}` must have at least one value")
            }
            DomainError::EmptyDomain => write!(f, "domain must have at least one attribute"),
            DomainError::DomainTooLarge => {
                write!(f, "domain size overflows usize")
            }
            DomainError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity mismatch: expected {expected} values, got {got}"
                )
            }
            DomainError::ValueOutOfRange {
                attribute,
                value,
                cardinality,
            } => write!(
                f,
                "value {value} out of range for attribute {attribute} (cardinality {cardinality})"
            ),
            DomainError::IndexOutOfRange { index, size } => {
                write!(f, "domain index {index} out of range (size {size})")
            }
            DomainError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            DomainError::InvalidRange { lo, hi, size } => {
                write!(f, "invalid range [{lo}, {hi}] over domain of size {size}")
            }
        }
    }
}

impl std::error::Error for DomainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DomainError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = DomainError::ValueOutOfRange {
            attribute: 1,
            value: 9,
            cardinality: 4,
        };
        assert!(e.to_string().contains("cardinality 4"));
        let e = DomainError::InvalidRange {
            lo: 3,
            hi: 2,
            size: 10,
        };
        assert!(e.to_string().contains("[3, 2]"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(DomainError::EmptyDomain);
        assert!(!e.to_string().is_empty());
    }
}
