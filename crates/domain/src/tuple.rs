//! Tuples: the records stored in a dataset.

use std::fmt;
use std::ops::Index;

/// A tuple `t ∈ T`: one attribute-value index per attribute.
///
/// Tuples are the decoded form of a dense domain index; datasets store the
/// dense indices and only materialize `Tuple`s at API boundaries.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<u32>,
}

impl Tuple {
    /// Wraps attribute values into a tuple.
    pub fn new(values: Vec<u32>) -> Self {
        Self { values }
    }

    /// The attribute values.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl Index<usize> for Tuple {
    type Output = u32;

    fn index(&self, i: usize) -> &u32 {
        &self.values[i]
    }
}

impl From<Vec<u32>> for Tuple {
    fn from(values: Vec<u32>) -> Self {
        Self::new(values)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let t = Tuple::new(vec![1, 0, 2]);
        assert_eq!(t.to_string(), "(1, 0, 2)");
        assert_eq!(t[2], 2);
        assert_eq!(t.arity(), 3);
    }

    #[test]
    fn from_vec() {
        let t: Tuple = vec![3u32, 4].into();
        assert_eq!(t.values(), &[3, 4]);
    }
}
