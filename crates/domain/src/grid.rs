//! Grid domains `[m1] × … × [mk]` with Lp geometry.
//!
//! Section 8.2.3 of the paper considers domains `T = [m]^k` encoding a 2-D
//! plane or 3-D space, with `d(x, y) = ||x − y||_p`. The twitter experiments
//! use a 400×300 lat/long grid; the skin experiments use the 256³ RGB cube.
//!
//! [`GridDomain`] is a thin geometric layer over [`Domain`]: it shares the
//! same dense index encoding and adds cell coordinates, Lp distances and
//! rectangles.

use crate::domain::Domain;
use crate::error::DomainError;

/// A `k`-dimensional grid domain with per-axis physical cell widths.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDomain {
    domain: Domain,
    dims: Vec<usize>,
    /// Physical width of one cell along each axis.
    cell_widths: Vec<f64>,
}

/// An axis-aligned rectangle `[l1, u1] × … × [lk, uk]` of grid cells
/// (inclusive endpoints), as used by range count queries in Section 8.2.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rectangle {
    /// Inclusive lower corner, one coordinate per axis.
    pub lo: Vec<usize>,
    /// Inclusive upper corner, one coordinate per axis.
    pub hi: Vec<usize>,
}

impl Rectangle {
    /// Builds a rectangle after validating `lo[i] <= hi[i]`.
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidRange`] when some axis is empty or the corner
    /// arities differ.
    pub fn new(lo: Vec<usize>, hi: Vec<usize>) -> Result<Self, DomainError> {
        if lo.len() != hi.len() {
            return Err(DomainError::ArityMismatch {
                expected: lo.len(),
                got: hi.len(),
            });
        }
        for (&l, &u) in lo.iter().zip(&hi) {
            if l > u {
                return Err(DomainError::InvalidRange {
                    lo: l,
                    hi: u,
                    size: usize::MAX,
                });
            }
        }
        Ok(Self { lo, hi })
    }

    /// Whether the rectangle contains the cell with the given coordinates.
    pub fn contains(&self, coords: &[usize]) -> bool {
        coords
            .iter()
            .zip(self.lo.iter().zip(&self.hi))
            .all(|(&c, (&l, &u))| l <= c && c <= u)
    }

    /// Whether this is a *point query*: `lo == hi` on every axis.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether two rectangles share at least one cell.
    pub fn intersects(&self, other: &Rectangle) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((&l1, &u1), (&l2, &u2))| l1 <= u2 && l2 <= u1)
    }

    /// Minimum L1 distance (in cells) between this rectangle and another:
    /// `d(X, Y) = min_{x∈X, y∈Y} ||x − y||_1`. Zero when they intersect.
    pub fn l1_gap(&self, other: &Rectangle) -> u64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .map(|((&l1, &u1), (&l2, &u2))| {
                if l1 > u2 {
                    (l1 - u2) as u64
                } else if l2 > u1 {
                    (l2 - u1) as u64
                } else {
                    0
                }
            })
            .sum()
    }

    /// Number of cells inside the rectangle.
    pub fn cell_count(&self) -> usize {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &u)| u - l + 1)
            .product()
    }
}

impl GridDomain {
    /// Builds a grid with unit cell widths.
    ///
    /// # Errors
    ///
    /// Propagates [`Domain`] construction errors (empty dims, overflow).
    pub fn new(dims: Vec<usize>) -> Result<Self, DomainError> {
        let widths = vec![1.0; dims.len()];
        Self::with_cell_widths(dims, widths)
    }

    /// Builds a grid with physical cell widths per axis (e.g. km per cell).
    ///
    /// # Errors
    ///
    /// Propagates [`Domain`] construction errors; panics on non-positive
    /// widths (programmer error).
    pub fn with_cell_widths(dims: Vec<usize>, cell_widths: Vec<f64>) -> Result<Self, DomainError> {
        assert_eq!(dims.len(), cell_widths.len(), "one width per axis");
        assert!(
            cell_widths.iter().all(|&w| w > 0.0),
            "cell widths must be positive"
        );
        let domain = Domain::from_cardinalities(&dims)?;
        Ok(Self {
            domain,
            dims,
            cell_widths,
        })
    }

    /// The underlying flat domain (shares the dense index encoding).
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes `k`.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells.
    pub fn size(&self) -> usize {
        self.domain.size()
    }

    /// Physical cell widths.
    pub fn cell_widths(&self) -> &[f64] {
        &self.cell_widths
    }

    /// Cell coordinates of a dense index.
    pub fn coords(&self, index: usize) -> Vec<usize> {
        self.domain
            .decode(index)
            .expect("index in range")
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }

    /// Dense index of cell coordinates.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors for out-of-range coordinates.
    pub fn index_of(&self, coords: &[usize]) -> Result<usize, DomainError> {
        let vals: Vec<u32> = coords.iter().map(|&c| c as u32).collect();
        self.domain.encode(&vals)
    }

    /// L1 distance in cells between two dense indices.
    pub fn l1(&self, x: usize, y: usize) -> u64 {
        self.domain.l1(x, y)
    }

    /// Physical L1 distance between two dense indices, using per-axis cell
    /// widths.
    pub fn physical_l1(&self, x: usize, y: usize) -> f64 {
        let cx = self.coords(x);
        let cy = self.coords(y);
        cx.iter()
            .zip(&cy)
            .zip(&self.cell_widths)
            .map(|((&a, &b), &w)| a.abs_diff(b) as f64 * w)
            .sum()
    }

    /// Largest L1 distance between any two cells (grid diameter in cells).
    pub fn l1_diameter(&self) -> u64 {
        self.domain.l1_diameter()
    }

    /// Converts a physical L1 threshold into a cell-count threshold θ using
    /// the *smallest* cell width (conservative: all pairs within the
    /// physical threshold along any single axis are protected).
    pub fn theta_for_physical(&self, physical: f64) -> u64 {
        assert!(physical > 0.0);
        let min_w = self
            .cell_widths
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        ((physical / min_w).floor() as u64).clamp(1, self.l1_diameter().max(1))
    }

    /// Partitions the grid uniformly into `blocks_per_axis[i]` blocks per
    /// axis, returning the block id of every cell. Used by the
    /// `partition|p` policies of Figure 1(f), where the 400×300 twitter grid
    /// is divided into p coarse cells.
    ///
    /// Block boundaries use ceiling division so every cell is covered even
    /// when the axis size is not divisible by the block count.
    pub fn uniform_partition(&self, blocks_per_axis: &[usize]) -> Vec<u32> {
        assert_eq!(blocks_per_axis.len(), self.arity());
        assert!(blocks_per_axis.iter().all(|&b| b >= 1));
        let block_sizes: Vec<usize> = self
            .dims
            .iter()
            .zip(blocks_per_axis)
            .map(|(&d, &b)| d.div_ceil(b))
            .collect();
        let mut out = Vec::with_capacity(self.size());
        for idx in 0..self.size() {
            let coords = self.coords(idx);
            let mut block = 0usize;
            for (axis, &c) in coords.iter().enumerate() {
                let b = c / block_sizes[axis];
                block = block * blocks_per_axis[axis] + b;
            }
            out.push(block as u32);
        }
        out
    }

    /// Validates a rectangle against the grid bounds.
    ///
    /// # Errors
    ///
    /// [`DomainError::InvalidRange`] when the rectangle leaves the grid;
    /// [`DomainError::ArityMismatch`] on wrong dimensionality.
    pub fn check_rectangle(&self, r: &Rectangle) -> Result<(), DomainError> {
        if r.lo.len() != self.arity() {
            return Err(DomainError::ArityMismatch {
                expected: self.arity(),
                got: r.lo.len(),
            });
        }
        for ((&u, &d), &l) in r.hi.iter().zip(&self.dims).zip(&r.lo) {
            if u >= d {
                return Err(DomainError::InvalidRange {
                    lo: l,
                    hi: u,
                    size: d,
                });
            }
        }
        Ok(())
    }

    /// All dense indices inside a rectangle. Intended for modest rectangle
    /// sizes (constraint predicates, tests).
    pub fn rectangle_cells(&self, r: &Rectangle) -> Vec<usize> {
        let mut cells = Vec::with_capacity(r.cell_count());
        let mut cursor = r.lo.clone();
        loop {
            cells.push(self.index_of(&cursor).expect("validated rectangle"));
            // Odometer increment within the rectangle bounds.
            let mut axis = self.arity();
            loop {
                if axis == 0 {
                    return cells;
                }
                axis -= 1;
                if cursor[axis] < r.hi[axis] {
                    cursor[axis] += 1;
                    for c in cursor.iter_mut().skip(axis + 1) {
                        *c = 0;
                    }
                    for (i, c) in cursor.iter_mut().enumerate().skip(axis + 1) {
                        *c = r.lo[i];
                    }
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let g = GridDomain::new(vec![4, 3]).unwrap();
        for i in 0..g.size() {
            let c = g.coords(i);
            assert_eq!(g.index_of(&c).unwrap(), i);
        }
    }

    #[test]
    fn physical_distance_uses_widths() {
        let g = GridDomain::with_cell_widths(vec![400, 300], vec![5.55, 5.55]).unwrap();
        let a = g.index_of(&[0, 0]).unwrap();
        let b = g.index_of(&[10, 20]).unwrap();
        assert_eq!(g.l1(a, b), 30);
        assert!((g.physical_l1(a, b) - 30.0 * 5.55).abs() < 1e-9);
    }

    #[test]
    fn theta_conversion_uses_min_width() {
        let g = GridDomain::with_cell_widths(vec![400, 300], vec![5.0, 10.0]).unwrap();
        assert_eq!(g.theta_for_physical(100.0), 20);
        assert_eq!(g.theta_for_physical(1.0), 1);
    }

    #[test]
    fn uniform_partition_counts() {
        let g = GridDomain::new(vec![4, 4]).unwrap();
        let part = g.uniform_partition(&[2, 2]);
        assert_eq!(part.len(), 16);
        let mut counts = [0usize; 4];
        for &b in &part {
            counts[b as usize] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
        // Cell (0,0) and (1,1) in same block; (0,0) and (2,0) differ.
        assert_eq!(
            part[g.index_of(&[0, 0]).unwrap()],
            part[g.index_of(&[1, 1]).unwrap()]
        );
        assert_ne!(
            part[g.index_of(&[0, 0]).unwrap()],
            part[g.index_of(&[2, 0]).unwrap()]
        );
    }

    #[test]
    fn uniform_partition_non_divisible() {
        let g = GridDomain::new(vec![5, 3]).unwrap();
        let part = g.uniform_partition(&[2, 2]);
        // Every cell gets a block and block ids are < 4.
        assert!(part.iter().all(|&b| b < 4));
    }

    #[test]
    fn rectangle_semantics() {
        let r1 = Rectangle::new(vec![0, 0], vec![2, 2]).unwrap();
        let r2 = Rectangle::new(vec![3, 3], vec![4, 4]).unwrap();
        let r3 = Rectangle::new(vec![2, 2], vec![5, 5]).unwrap();
        assert!(!r1.intersects(&r2));
        assert!(r1.intersects(&r3));
        assert_eq!(r1.l1_gap(&r2), 2);
        assert_eq!(r1.l1_gap(&r3), 0);
        assert_eq!(r1.cell_count(), 9);
        assert!(Rectangle::new(vec![2], vec![1]).is_err());
        assert!(Rectangle::new(vec![1, 1], vec![1, 1]).unwrap().is_point());
    }

    #[test]
    fn rectangle_cells_enumerates_all() {
        let g = GridDomain::new(vec![4, 4]).unwrap();
        let r = Rectangle::new(vec![1, 2], vec![2, 3]).unwrap();
        g.check_rectangle(&r).unwrap();
        let cells = g.rectangle_cells(&r);
        assert_eq!(cells.len(), 4);
        for &c in &cells {
            assert!(r.contains(&g.coords(c)));
        }
    }

    #[test]
    fn check_rectangle_bounds() {
        let g = GridDomain::new(vec![4, 4]).unwrap();
        let r = Rectangle::new(vec![0, 0], vec![4, 3]).unwrap();
        assert!(g.check_rectangle(&r).is_err());
        let r = Rectangle::new(vec![0], vec![3]).unwrap();
        assert!(g.check_rectangle(&r).is_err());
    }
}
