//! # bf-domain — discrete domains, datasets and histogram kernels
//!
//! This crate implements the data model underlying Blowfish privacy
//! (He, Machanavajjhala, Ding — SIGMOD 2014):
//!
//! * a dataset `D` of `n` tuples, each drawn from a finite domain
//!   `T = A1 × A2 × … × Am` built from categorical attributes
//!   ([`Attribute`], [`Domain`], [`Tuple`]),
//! * totally ordered 1-D domains used by the cumulative-histogram
//!   mechanisms of Section 7 ([`OrderedDomain`]),
//! * grid domains `[m]^k` with Lp geometry used by the location
//!   experiments and Section 8.2.3 ([`GridDomain`]),
//! * partitions of the domain used by partitioned sensitive information
//!   `S^P_pairs` ([`Partition`]),
//! * datasets, histograms and cumulative histograms with the exact
//!   query semantics the paper relies on ([`Dataset`], [`Histogram`],
//!   [`CumulativeHistogram`]),
//! * continuous point sets for k-means style analyses ([`PointSet`]).
//!
//! Every domain value is canonically encoded as a dense index in
//! `0..domain.size()`, so the rest of the stack (graphs over the domain,
//! count-query predicates, histograms) can use flat vectors instead of
//! hash maps.

pub mod attribute;
pub mod dataset;
pub mod domain;
pub mod error;
pub mod grid;
pub mod histogram;
pub mod ordered;
pub mod partition;
pub mod points;
pub mod tuple;

pub use attribute::Attribute;
pub use dataset::Dataset;
pub use domain::Domain;
pub use error::DomainError;
pub use grid::GridDomain;
pub use histogram::{CumulativeHistogram, Histogram};
pub use ordered::OrderedDomain;
pub use partition::Partition;
pub use points::{BoundingBox, Point, PointSet};
pub use tuple::Tuple;
