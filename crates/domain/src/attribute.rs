//! Categorical attributes.
//!
//! An attribute `A_i` in the paper is a finite set of values. We represent
//! values by dense indices `0..cardinality` and keep optional human-readable
//! labels for examples and debugging output.

use crate::error::DomainError;

/// A categorical attribute: one dimension of the domain `T = A1 × … × Am`.
///
/// Values are dense indices `0..cardinality()`. Ordinal attributes (age,
/// salary, latitude bins, …) simply interpret the index order as the value
/// order; this is what the distance-threshold secret graphs `G^{d,θ}` of the
/// paper do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    cardinality: usize,
    labels: Option<Vec<String>>,
}

impl Attribute {
    /// Creates an attribute with `cardinality` anonymous values.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::EmptyAttribute`] if `cardinality == 0`.
    pub fn new(name: impl Into<String>, cardinality: usize) -> Result<Self, DomainError> {
        let name = name.into();
        if cardinality == 0 {
            return Err(DomainError::EmptyAttribute { name });
        }
        Ok(Self {
            name,
            cardinality,
            labels: None,
        })
    }

    /// Creates an attribute from explicit value labels.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::EmptyAttribute`] if `labels` is empty.
    pub fn with_labels(name: impl Into<String>, labels: Vec<String>) -> Result<Self, DomainError> {
        let name = name.into();
        if labels.is_empty() {
            return Err(DomainError::EmptyAttribute { name });
        }
        Ok(Self {
            name,
            cardinality: labels.len(),
            labels: Some(labels),
        })
    }

    /// The attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of values, written `|A|` in the paper.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Label of value `v`, falling back to the index when the attribute is
    /// anonymous.
    pub fn label(&self, v: u32) -> String {
        match &self.labels {
            Some(labels) => labels
                .get(v as usize)
                .cloned()
                .unwrap_or_else(|| format!("<{v}>")),
            None => v.to_string(),
        }
    }

    /// Looks up a value index by label. `None` for anonymous attributes or
    /// unknown labels.
    pub fn value_of(&self, label: &str) -> Option<u32> {
        self.labels
            .as_ref()?
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }

    /// Maximum ordinal distance between two values, `|A| - 1`.
    ///
    /// This is the quantity `|A|` in Lemma 6.1 interpreted as the diameter of
    /// the attribute under the L1 metric on value indices.
    pub fn diameter(&self) -> usize {
        self.cardinality - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            Attribute::new("a", 0),
            Err(DomainError::EmptyAttribute { name: "a".into() })
        );
    }

    #[test]
    fn labels_round_trip() {
        let a = Attribute::with_labels(
            "disease",
            vec!["flu".into(), "cancer".into(), "none".into()],
        )
        .unwrap();
        assert_eq!(a.cardinality(), 3);
        assert_eq!(a.label(1), "cancer");
        assert_eq!(a.value_of("none"), Some(2));
        assert_eq!(a.value_of("plague"), None);
    }

    #[test]
    fn anonymous_labels_fall_back_to_index() {
        let a = Attribute::new("r", 4).unwrap();
        assert_eq!(a.label(3), "3");
        assert_eq!(a.value_of("3"), None);
    }

    #[test]
    fn diameter_is_cardinality_minus_one() {
        let a = Attribute::new("x", 256).unwrap();
        assert_eq!(a.diameter(), 255);
    }

    #[test]
    fn out_of_range_label_is_marked() {
        let a = Attribute::with_labels("g", vec!["m".into(), "f".into()]).unwrap();
        assert_eq!(a.label(7), "<7>");
    }
}
