//! The tuple domain `T = A1 × A2 × … × Am`.
//!
//! A [`Domain`] is an ordered list of [`Attribute`]s together with a
//! mixed-radix codec between attribute-value vectors and dense indices in
//! `0..size`. The dense encoding is row-major with the *last* attribute
//! varying fastest, matching the usual odometer order.

use crate::attribute::Attribute;
use crate::error::DomainError;
use crate::tuple::Tuple;

/// A finite multi-attribute domain.
///
/// # Examples
///
/// ```
/// use bf_domain::Domain;
///
/// // gender × age-group × region
/// let domain = Domain::from_cardinalities(&[2, 4, 5]).unwrap();
/// assert_eq!(domain.size(), 40);
/// let idx = domain.encode(&[1, 2, 3]).unwrap();
/// assert_eq!(domain.decode(idx).unwrap(), vec![1, 2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    attributes: Vec<Attribute>,
    /// `strides[i]` = product of cardinalities of attributes `i+1..m`.
    strides: Vec<usize>,
    size: usize,
}

impl Domain {
    /// Builds a domain from its attributes.
    ///
    /// # Errors
    ///
    /// * [`DomainError::EmptyDomain`] when `attributes` is empty.
    /// * [`DomainError::DomainTooLarge`] when `∏|Ai|` overflows `usize`.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, DomainError> {
        if attributes.is_empty() {
            return Err(DomainError::EmptyDomain);
        }
        let m = attributes.len();
        let mut strides = vec![1usize; m];
        let mut size = 1usize;
        for i in (0..m).rev() {
            strides[i] = size;
            size = size
                .checked_mul(attributes[i].cardinality())
                .ok_or(DomainError::DomainTooLarge)?;
        }
        Ok(Self {
            attributes,
            strides,
            size,
        })
    }

    /// Convenience constructor: anonymous attributes with the given
    /// cardinalities.
    pub fn from_cardinalities(cards: &[usize]) -> Result<Self, DomainError> {
        let attrs = cards
            .iter()
            .enumerate()
            .map(|(i, &c)| Attribute::new(format!("A{}", i + 1), c))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(attrs)
    }

    /// A 1-dimensional domain of the given size (used for ordered domains).
    pub fn line(size: usize) -> Result<Self, DomainError> {
        Self::from_cardinalities(&[size])
    }

    /// Number of attributes `m`.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Total number of domain values `|T|`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The attributes, in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute at position `i`.
    pub fn attribute(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }

    /// Encodes an attribute-value vector into a dense index.
    ///
    /// # Errors
    ///
    /// * [`DomainError::ArityMismatch`] for the wrong number of values.
    /// * [`DomainError::ValueOutOfRange`] when a value exceeds its
    ///   attribute's cardinality.
    pub fn encode(&self, values: &[u32]) -> Result<usize, DomainError> {
        if values.len() != self.arity() {
            return Err(DomainError::ArityMismatch {
                expected: self.arity(),
                got: values.len(),
            });
        }
        let mut idx = 0usize;
        for (i, (&v, attr)) in values.iter().zip(&self.attributes).enumerate() {
            if (v as usize) >= attr.cardinality() {
                return Err(DomainError::ValueOutOfRange {
                    attribute: i,
                    value: v,
                    cardinality: attr.cardinality(),
                });
            }
            idx += (v as usize) * self.strides[i];
        }
        Ok(idx)
    }

    /// Decodes a dense index into attribute values.
    ///
    /// # Errors
    ///
    /// [`DomainError::IndexOutOfRange`] when `index >= size()`.
    pub fn decode(&self, index: usize) -> Result<Vec<u32>, DomainError> {
        if index >= self.size {
            return Err(DomainError::IndexOutOfRange {
                index,
                size: self.size,
            });
        }
        let mut out = Vec::with_capacity(self.arity());
        let mut rest = index;
        for (i, _attr) in self.attributes.iter().enumerate() {
            out.push((rest / self.strides[i]) as u32);
            rest %= self.strides[i];
        }
        Ok(out)
    }

    /// Decodes a dense index into a [`Tuple`].
    pub fn decode_tuple(&self, index: usize) -> Result<Tuple, DomainError> {
        Ok(Tuple::new(self.decode(index)?))
    }

    /// Value of attribute `attr` inside the encoded index, without a full
    /// decode. Panics if `attr >= arity()`.
    pub fn attribute_value(&self, index: usize, attr: usize) -> u32 {
        debug_assert!(index < self.size);
        ((index / self.strides[attr]) % self.attributes[attr].cardinality()) as u32
    }

    /// Replaces the value of attribute `attr` inside the encoded index.
    ///
    /// # Errors
    ///
    /// [`DomainError::ValueOutOfRange`] when `value` exceeds the attribute's
    /// cardinality.
    pub fn with_attribute_value(
        &self,
        index: usize,
        attr: usize,
        value: u32,
    ) -> Result<usize, DomainError> {
        if (value as usize) >= self.attributes[attr].cardinality() {
            return Err(DomainError::ValueOutOfRange {
                attribute: attr,
                value,
                cardinality: self.attributes[attr].cardinality(),
            });
        }
        let old = self.attribute_value(index, attr) as usize;
        Ok(index - old * self.strides[attr] + (value as usize) * self.strides[attr])
    }

    /// Number of attributes on which `x` and `y` differ (Hamming distance on
    /// attribute vectors). This is exactly the shortest-path distance in the
    /// attribute secret graph `G^attr`.
    pub fn hamming(&self, x: usize, y: usize) -> usize {
        (0..self.arity())
            .filter(|&i| self.attribute_value(x, i) != self.attribute_value(y, i))
            .count()
    }

    /// L1 distance between `x` and `y` in the ordinal embedding: the sum of
    /// absolute value-index differences per attribute. This is the metric
    /// `d` used by `G^{d,θ}` for ordinal/grid data.
    pub fn l1(&self, x: usize, y: usize) -> u64 {
        (0..self.arity())
            .map(|i| {
                let a = self.attribute_value(x, i) as i64;
                let b = self.attribute_value(y, i) as i64;
                (a - b).unsigned_abs()
            })
            .sum()
    }

    /// Diameter of the domain under the L1 ordinal metric:
    /// `d(T) = Σ_i (|Ai| − 1)` (the largest L1 distance between any two
    /// points, Section 6 of the paper).
    pub fn l1_diameter(&self) -> u64 {
        self.attributes.iter().map(|a| a.diameter() as u64).sum()
    }

    /// Iterator over all dense indices `0..size()`.
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.size
    }

    /// Iterator over all tuples in odometer order. Intended for small
    /// domains (tests, brute-force verification).
    pub fn iter_tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.indices().map(move |i| {
            self.decode_tuple(i)
                .expect("index from indices() is always valid")
        })
    }

    /// Human-readable rendering of the value at `index`.
    pub fn render(&self, index: usize) -> String {
        match self.decode(index) {
            Ok(vals) => {
                let parts: Vec<String> = vals
                    .iter()
                    .zip(&self.attributes)
                    .map(|(&v, a)| a.label(v))
                    .collect();
                format!("({})", parts.join(", "))
            }
            Err(_) => format!("<invalid:{index}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Domain {
        // The running example of Section 8: A1={a1,a2}, A2={b1,b2},
        // A3={c1,c2,c3}.
        Domain::from_cardinalities(&[2, 2, 3]).unwrap()
    }

    #[test]
    fn size_is_product() {
        assert_eq!(abc().size(), 12);
        assert_eq!(
            Domain::from_cardinalities(&[400, 300]).unwrap().size(),
            120_000
        );
    }

    #[test]
    fn encode_decode_round_trip() {
        let d = abc();
        for i in d.indices() {
            let t = d.decode(i).unwrap();
            assert_eq!(d.encode(&t).unwrap(), i);
        }
    }

    #[test]
    fn encode_is_odometer_order() {
        let d = abc();
        assert_eq!(d.encode(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(d.encode(&[0, 0, 1]).unwrap(), 1);
        assert_eq!(d.encode(&[0, 1, 0]).unwrap(), 3);
        assert_eq!(d.encode(&[1, 0, 0]).unwrap(), 6);
        assert_eq!(d.encode(&[1, 1, 2]).unwrap(), 11);
    }

    #[test]
    fn encode_rejects_bad_input() {
        let d = abc();
        assert!(matches!(
            d.encode(&[0, 0]),
            Err(DomainError::ArityMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            d.encode(&[0, 0, 3]),
            Err(DomainError::ValueOutOfRange { attribute: 2, .. })
        ));
        assert!(matches!(
            d.decode(12),
            Err(DomainError::IndexOutOfRange {
                index: 12,
                size: 12
            })
        ));
    }

    #[test]
    fn attribute_value_matches_decode() {
        let d = abc();
        for i in d.indices() {
            let t = d.decode(i).unwrap();
            for (a, &v) in t.iter().enumerate() {
                assert_eq!(d.attribute_value(i, a), v);
            }
        }
    }

    #[test]
    fn with_attribute_value_changes_one_coordinate() {
        let d = abc();
        let x = d.encode(&[1, 0, 2]).unwrap();
        let y = d.with_attribute_value(x, 1, 1).unwrap();
        assert_eq!(d.decode(y).unwrap(), vec![1, 1, 2]);
        assert!(d.with_attribute_value(x, 2, 3).is_err());
    }

    #[test]
    fn hamming_and_l1() {
        let d = abc();
        let x = d.encode(&[0, 0, 0]).unwrap();
        let y = d.encode(&[1, 0, 2]).unwrap();
        assert_eq!(d.hamming(x, y), 2);
        assert_eq!(d.l1(x, y), 3);
        assert_eq!(d.l1_diameter(), 1 + 1 + 2);
    }

    #[test]
    fn line_domain() {
        let d = Domain::line(5).unwrap();
        assert_eq!(d.arity(), 1);
        assert_eq!(d.size(), 5);
        assert_eq!(d.l1(0, 4), 4);
    }

    #[test]
    fn render_uses_labels() {
        let a = Attribute::with_labels("g", vec!["m".into(), "f".into()]).unwrap();
        let b = Attribute::new("age", 3).unwrap();
        let d = Domain::new(vec![a, b]).unwrap();
        assert_eq!(d.render(d.encode(&[1, 2]).unwrap()), "(f, 2)");
    }

    #[test]
    fn overflow_detected() {
        let big = usize::MAX / 2;
        assert!(matches!(
            Domain::from_cardinalities(&[big, 3]),
            Err(DomainError::DomainTooLarge)
        ));
    }

    #[test]
    fn iter_tuples_covers_domain() {
        let d = Domain::from_cardinalities(&[2, 2]).unwrap();
        let all: Vec<Vec<u32>> = d.iter_tuples().map(|t| t.values().to_vec()).collect();
        assert_eq!(all, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }
}
