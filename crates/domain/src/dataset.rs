//! Datasets: multisets of tuples over a domain.
//!
//! A [`Dataset`] stores the dense-encoded value of each tuple. Tuple
//! position doubles as the individual identifier `t.id` — the paper assumes
//! the set of individuals is known in advance and fixed, so neighboring
//! databases only *change* values, never add or remove rows.

use crate::domain::Domain;
use crate::error::DomainError;
use crate::histogram::Histogram;
use crate::tuple::Tuple;

use rand::seq::SliceRandom;
use rand::Rng;

/// A dataset `D ∈ I_n`: `n` rows, each a dense-encoded domain value.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    domain: Domain,
    rows: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset from dense-encoded rows.
    ///
    /// # Errors
    ///
    /// [`DomainError::IndexOutOfRange`] when a row is not a valid domain
    /// index.
    pub fn from_rows(domain: Domain, rows: Vec<usize>) -> Result<Self, DomainError> {
        let size = domain.size();
        if let Some(&bad) = rows.iter().find(|&&r| r >= size) {
            return Err(DomainError::IndexOutOfRange { index: bad, size });
        }
        Ok(Self { domain, rows })
    }

    /// Builds a dataset from tuples.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors.
    pub fn from_tuples(domain: Domain, tuples: &[Tuple]) -> Result<Self, DomainError> {
        let rows = tuples
            .iter()
            .map(|t| domain.encode(t.values()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { domain, rows })
    }

    /// An empty dataset over a domain.
    pub fn empty(domain: Domain) -> Self {
        Self {
            domain,
            rows: Vec::new(),
        }
    }

    /// The domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of rows `n = |D|` (public knowledge in the paper's model).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Dense-encoded rows; the position is the individual id.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Value of individual `id`.
    pub fn row(&self, id: usize) -> usize {
        self.rows[id]
    }

    /// Decoded tuple of individual `id`.
    pub fn tuple(&self, id: usize) -> Tuple {
        self.domain
            .decode_tuple(self.rows[id])
            .expect("rows are validated on construction")
    }

    /// Returns a copy with individual `id` changed to domain value `x` —
    /// the tuple-change operation that generates Blowfish neighbors.
    ///
    /// # Errors
    ///
    /// [`DomainError::IndexOutOfRange`] for an invalid value.
    pub fn with_row(&self, id: usize, x: usize) -> Result<Dataset, DomainError> {
        if x >= self.domain.size() {
            return Err(DomainError::IndexOutOfRange {
                index: x,
                size: self.domain.size(),
            });
        }
        let mut rows = self.rows.clone();
        rows[id] = x;
        Ok(Self {
            domain: self.domain.clone(),
            rows,
        })
    }

    /// Complete histogram `h_T(D)`.
    pub fn histogram(&self) -> Histogram {
        Histogram::from_rows(self.domain.size(), &self.rows)
    }

    /// Number of rows matching a predicate over dense indices — the count
    /// query `q_φ(D) = Σ_t 1_{φ(t)}` of Section 8.
    pub fn count_where(&self, predicate: impl Fn(usize) -> bool) -> u64 {
        self.rows.iter().filter(|&&r| predicate(r)).count() as u64
    }

    /// Uniform subsample without replacement of `k` rows (used for the
    /// skin10/skin01 subsamples of Figure 1).
    pub fn sample(&self, k: usize, rng: &mut impl Rng) -> Dataset {
        let k = k.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        let rows = idx.into_iter().map(|i| self.rows[i]).collect();
        Self {
            domain: self.domain.clone(),
            rows,
        }
    }

    /// Uniform subsample keeping a fraction `frac ∈ (0,1]` of rows.
    pub fn sample_fraction(&self, frac: f64, rng: &mut impl Rng) -> Dataset {
        assert!(frac > 0.0 && frac <= 1.0, "fraction must be in (0,1]");
        let k = ((self.len() as f64) * frac).round() as usize;
        self.sample(k.max(1), rng)
    }

    /// Set of tuple positions on which two same-length datasets differ —
    /// `Δ(D1, D2)` restricted to ids (the paper's symmetric difference is
    /// over (id, value) pairs; with fixed ids this is the differing ids).
    pub fn differing_ids(&self, other: &Dataset) -> Vec<usize> {
        assert_eq!(self.len(), other.len(), "datasets must share the id space");
        self.rows
            .iter()
            .zip(&other.rows)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Dataset {
        let d = Domain::from_cardinalities(&[2, 3]).unwrap();
        Dataset::from_rows(d, vec![0, 1, 5, 5, 2]).unwrap()
    }

    #[test]
    fn construction_validates_rows() {
        let d = Domain::from_cardinalities(&[2, 3]).unwrap();
        assert!(Dataset::from_rows(d, vec![0, 6]).is_err());
    }

    #[test]
    fn tuples_round_trip() {
        let ds = tiny();
        let tuples: Vec<Tuple> = (0..ds.len()).map(|i| ds.tuple(i)).collect();
        let ds2 = Dataset::from_tuples(ds.domain().clone(), &tuples).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn histogram_counts() {
        let h = tiny().histogram();
        assert_eq!(h.counts(), &[1.0, 1.0, 1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn with_row_changes_one_value() {
        let ds = tiny();
        let ds2 = ds.with_row(0, 3).unwrap();
        assert_eq!(ds2.row(0), 3);
        assert_eq!(ds.differing_ids(&ds2), vec![0]);
        assert!(ds.with_row(0, 6).is_err());
    }

    #[test]
    fn count_where_matches_histogram() {
        let ds = tiny();
        assert_eq!(ds.count_where(|r| r == 5), 2);
        assert_eq!(ds.count_where(|r| r < 2), 2);
    }

    #[test]
    fn sampling_sizes() {
        let ds = tiny();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(ds.sample(3, &mut rng).len(), 3);
        assert_eq!(ds.sample(100, &mut rng).len(), 5);
        assert_eq!(ds.sample_fraction(0.4, &mut rng).len(), 2);
    }

    #[test]
    fn sample_preserves_multiset_membership() {
        let ds = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let s = ds.sample(4, &mut rng);
        for &r in s.rows() {
            assert!(ds.rows().contains(&r));
        }
    }
}
