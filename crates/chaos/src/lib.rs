//! # bf-chaos — seed-deterministic fault injection
//!
//! The ledger is the product: Blowfish serving is only trustworthy if a
//! crash, a dropped connection, or a slow disk can never double-charge
//! or resurrect ε. This crate is the adversary that proves it — a
//! zero-dependency fault-injection layer the store and wire layers
//! consult at their I/O boundaries:
//!
//! * `bf-store` asks its [`StorePlan`] before every WAL write+fsync
//!   (group-commit batches *and* compaction flushes): the plan can fail
//!   the write outright, persist a torn prefix, or fail the fsync after
//!   a complete write — the three ways a real disk dies.
//! * `bf-net` asks its [`NetPlan`] before every reply frame it writes:
//!   the plan can drop the connection, truncate the frame mid-header,
//!   or delay it past the client's patience — the three ways a real
//!   network dies.
//! * `bf-replica` asks its [`ReplicaPlan`] once per log entry the
//!   leader sequences: the plan can kill the leader at a deterministic
//!   log index, which is how the failover suite replays the same
//!   mid-burst crash every run.
//!
//! Faults fire on a **deterministic op clock**: every injection point
//! advances the plan's atomic counter and the schedule — scripted
//! `(op, fault)` pairs and/or an every-k-th rule — decides from the op
//! index alone. Same plan, same workload ⇒ same faults, so a chaos
//! sweep is reproducible down to the byte and a failing seed replays
//! under a debugger.
//!
//! The crate also carries [`splitmix64`] and [`ChaosRng`], the tiny
//! deterministic generator the sweep harnesses and the client's retry
//! jitter share: retries are deterministic too, or the sweep's
//! byte-identical-digest claim would be vacuous.
//!
//! Nothing here is compiled out in release builds on purpose: a plan of
//! [`FaultPlan::none`] is two relaxed atomic increments per op, and
//! keeping the hooks live is what lets the chaos example and CI drive
//! the *production* binary, not a special build.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// SplitMix64 — the one-instruction-ish mixer every deterministic
/// component downstream derives from (same constants as the engine's
/// noise keying, so a single `u64` seed fans out everywhere).
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny deterministic generator (SplitMix64 stream) for jitter and
/// schedule derivation. Not cryptographic; not meant to be.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator seeded with `seed` (two pre-mixes so small seeds
    /// diverge immediately).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: splitmix64(splitmix64(seed)),
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// A draw in `[0, bound)`; `bound == 0` returns 0. Modulo bias is
    /// irrelevant at jitter scales and determinism is what matters.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The ways a store write can die, in increasing order of subtlety.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// The write fails before any byte reaches the file (clean ENOSPC).
    FailWrite,
    /// Half the batch reaches the file, then the write fails — recovery
    /// must treat the suffix as a torn tail.
    TornWrite,
    /// The write completes but the fsync fails — durability unknown, the
    /// store must poison rather than guess.
    FailSync,
}

/// The ways a reply frame can die on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The connection drops before the reply is written (client sees
    /// EOF with the request in flight).
    DropConnection,
    /// Only a prefix of the reply frame is written, then the connection
    /// drops (client sees a torn frame, then EOF).
    TruncateReply,
    /// The reply is written late — past a short client timeout, on time
    /// for a patient one.
    DelayReplyMicros(u64),
}

/// The ways a replica can die. Consulted by the leader's sequencer once
/// per sequenced log entry, so a kill lands at a *deterministic log
/// index* — the failover suite replays the same mid-burst crash every
/// run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaFault {
    /// The leader dies cooperatively but abruptly: it stops sequencing,
    /// streaming, and acking, and drops every peer and client
    /// in-flight request on the floor (they resolve as shutdown).
    KillLeader,
}

/// A deterministic fault schedule over an atomic op clock.
///
/// Every injection point calls [`FaultPlan::next`], which advances the
/// clock (ops are numbered from 1) and returns the fault scheduled for
/// that op, if any: scripted `(op, fault)` entries take precedence,
/// then an optional every-k-th rule. The plan counts both ops seen and
/// faults injected, so harnesses can assert the schedule actually
/// fired.
#[derive(Debug, Default)]
pub struct FaultPlan<F> {
    scripted: BTreeMap<u64, F>,
    every_kth: Option<(u64, F)>,
    clock: AtomicU64,
    injected: AtomicU64,
}

impl<F: Clone> FaultPlan<F> {
    /// A plan that never fires (the hooks' cost floor: two relaxed
    /// atomic ops per call).
    #[must_use]
    pub fn none() -> Self {
        Self {
            scripted: BTreeMap::new(),
            every_kth: None,
            clock: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// A plan firing exactly at the scripted `(op, fault)` pairs
    /// (1-based op indices; duplicate indices keep the last entry).
    pub fn scripted(faults: impl IntoIterator<Item = (u64, F)>) -> Self {
        Self {
            scripted: faults.into_iter().collect(),
            ..Self::none()
        }
    }

    /// A plan firing `fault` at every k-th op (`k == 0` never fires).
    #[must_use]
    pub fn every_kth(k: u64, fault: F) -> Self {
        Self {
            every_kth: (k > 0).then_some((k, fault)),
            ..Self::none()
        }
    }

    /// Adds an every-k-th rule to a scripted plan (scripted entries
    /// still win on collision).
    #[must_use]
    pub fn with_every_kth(mut self, k: u64, fault: F) -> Self {
        self.every_kth = (k > 0).then_some((k, fault));
        self
    }

    /// Advances the op clock and returns the fault due at this op, if
    /// any.
    pub fn next(&self) -> Option<F> {
        let op = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let fault = self.scripted.get(&op).cloned().or_else(|| {
            self.every_kth
                .as_ref()
                .filter(|(k, _)| op.is_multiple_of(*k))
                .map(|(_, f)| f.clone())
        });
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Ops the clock has seen so far.
    pub fn ops(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    /// Faults the plan has actually injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Whether the plan can ever fire (`false` for [`FaultPlan::none`]) —
    /// lets hot paths skip fault bookkeeping entirely when no chaos is
    /// configured.
    pub fn is_armed(&self) -> bool {
        !self.scripted.is_empty() || self.every_kth.is_some()
    }
}

/// The store-side plan: one op per WAL write+fsync attempt.
pub type StorePlan = FaultPlan<StoreFault>;

/// The net-side plan: one op per reply frame written.
pub type NetPlan = FaultPlan<NetFault>;

/// The replica-side plan: one op per log entry the leader sequences.
pub type ReplicaPlan = FaultPlan<ReplicaFault>;

/// Capped exponential backoff with deterministic jitter: attempt `n`
/// (0-based) waits `base × 2ⁿ` capped at `cap`, plus a jitter draw in
/// `[0, wait/2]` from `rng`. Deterministic in `(rng state, n)`, so
/// retry traces replay byte-identically.
#[must_use]
pub fn backoff_micros(rng: &mut ChaosRng, base_micros: u64, cap_micros: u64, attempt: u32) -> u64 {
    let wait = base_micros
        .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
        .min(cap_micros);
    wait + rng.next_below(wait / 2 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values from the published SplitMix64 test vector
        // (seed 1234567's first outputs are well known); we pin two
        // draws so an accidental constant edit fails loudly.
        let mut rng = ChaosRng::new(42);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        let mut rng2 = ChaosRng::new(42);
        assert_eq!(rng2.next_u64(), a, "same seed, same stream");
        assert_eq!(rng2.next_u64(), b);
        assert_ne!(ChaosRng::new(43).next_u64(), a, "seed sensitivity");
    }

    #[test]
    fn next_below_honors_bound() {
        let mut rng = ChaosRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn scripted_plan_fires_exactly_where_scripted() {
        let plan = StorePlan::scripted([(2, StoreFault::FailWrite), (5, StoreFault::FailSync)]);
        let fired: Vec<_> = (1..=6).map(|_| plan.next()).collect();
        assert_eq!(
            fired,
            vec![
                None,
                Some(StoreFault::FailWrite),
                None,
                None,
                Some(StoreFault::FailSync),
                None
            ]
        );
        assert_eq!(plan.ops(), 6);
        assert_eq!(plan.injected(), 2);
        assert!(plan.is_armed());
    }

    #[test]
    fn every_kth_fires_periodically_and_scripted_wins() {
        let plan = NetPlan::scripted([(4, NetFault::DropConnection)])
            .with_every_kth(2, NetFault::TruncateReply);
        let fired: Vec<_> = (1..=6).map(|_| plan.next()).collect();
        assert_eq!(
            fired,
            vec![
                None,
                Some(NetFault::TruncateReply),
                None,
                Some(NetFault::DropConnection), // scripted beats periodic
                None,
                Some(NetFault::TruncateReply),
            ]
        );
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn none_plan_never_fires_and_zero_k_is_inert() {
        let plan = StorePlan::none();
        assert!(!plan.is_armed());
        for _ in 0..100 {
            assert_eq!(plan.next(), None);
        }
        assert_eq!(plan.injected(), 0);
        assert_eq!(plan.ops(), 100);
        let zero = StorePlan::every_kth(0, StoreFault::FailWrite);
        assert!(!zero.is_armed());
        assert_eq!(zero.next(), None);
    }

    #[test]
    fn backoff_grows_caps_and_replays() {
        let mut rng = ChaosRng::new(9);
        let waits: Vec<u64> = (0..8)
            .map(|n| backoff_micros(&mut rng, 100, 1600, n))
            .collect();
        // Base wait doubles until the cap; jitter adds at most 50%.
        for (n, &w) in waits.iter().enumerate() {
            let base = (100u64 << n.min(4)).min(1600);
            assert!(w >= base && w <= base + base / 2, "attempt {n}: {w}");
        }
        // Deterministic replay from the same rng state.
        let mut rng2 = ChaosRng::new(9);
        let replay: Vec<u64> = (0..8)
            .map(|n| backoff_micros(&mut rng2, 100, 1600, n))
            .collect();
        assert_eq!(waits, replay);
        // Huge attempt numbers saturate instead of overflowing.
        assert!(backoff_micros(&mut rng, 100, 1600, 63) <= 1600 + 800);
        assert!(backoff_micros(&mut rng, 100, 1600, 64) <= 1600 + 800);
    }
}
