//! # blowfish — policy-driven privacy for statistical databases
//!
//! A Rust implementation of **Blowfish privacy** (He, Machanavajjhala,
//! Ding — *Blowfish Privacy: Tuning Privacy-Utility Trade-offs using
//! Policies*, SIGMOD 2014): a class of privacy definitions that
//! generalizes ε-differential privacy with a **policy**
//! `P = (T, G, I_Q)` specifying
//!
//! * the domain `T` of tuples,
//! * a *discriminative secret graph* `G` — which pairs of values an
//!   adversary must not distinguish (the complete graph recovers
//!   ordinary differential privacy), and
//! * publicly known deterministic constraints `Q` (count queries,
//!   marginals) that induce correlations an adversary could exploit.
//!
//! Weaker secret graphs buy accuracy; declared constraints buy protection
//! against correlation attacks. The workspace crates are re-exported here:
//!
//! | module | contents |
//! |---|---|
//! | [`domain`] | domains, datasets, histograms, grids, partitions |
//! | [`graph`] | secret graphs, policy graphs, graph algorithms |
//! | [`core`] | policies, neighbors, sensitivity, Laplace, composition |
//! | [`constraints`] | Section 8: sparsity, policy graphs, closed forms |
//! | [`mechanisms`] | k-means, histogram, ordered / hierarchical / OH |
//! | [`data`] | seeded synthetic datasets for the paper's experiments |
//! | [`engine`] | multi-tenant serving: sessions → router → sensitivity cache → mechanisms |
//! | [`server`] | async front-end: fair per-analyst scheduling + cross-analyst release coalescing |
//! | [`store`] | durable ε-budget ledger: checksummed WAL, group commit, snapshots, crash recovery |
//! | [`net`] | wire protocol, TCP front-end and client library for multi-process serving |
//! | [`replica`] | Calvin-style deterministic replication: log shipping, quorum acks, ε-lossless failover |
//! | [`obs`] | metrics registry, request-stage spans, Prometheus-style rendering |
//! | [`chaos`] | seed-deterministic fault injection: scripted store/net fault plans, backoff jitter |
//! | [`rt`] | vendored minimal async runtime (executor, `block_on`, oneshot) |
//!
//! ## Serving repeated queries
//!
//! For one-shot analyses, call the mechanisms directly as below. To serve
//! *many* requests — multiple analysts, repeated queries, batches — use
//! the [`engine`]: it memoizes policy sensitivities across requests,
//! enforces one ε-ledger per analyst (sequential composition,
//! Theorem 4.1), and answers batched range queries from a single release.
//! See `examples/multi_analyst_serving.rs`.
//!
//! ## Quickstart
//!
//! Release a histogram and answer range queries under a
//! distance-threshold policy:
//!
//! ```
//! use blowfish::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // An ordered domain of 64 salary bins; adversaries may learn a
//! // person's salary to within 4 bins, but nothing finer.
//! let domain = Domain::line(64)?;
//! let policy = Policy::distance_threshold(domain.clone(), 4);
//!
//! // A toy dataset.
//! let rows: Vec<usize> = (0..500).map(|i| (i * 7) % 64).collect();
//! let dataset = Dataset::from_rows(domain, rows)?;
//!
//! // The Ordered Mechanism (Section 7) answers every range query with
//! // error independent of the domain size.
//! let epsilon = Epsilon::new(0.5)?;
//! let mechanism = OrderedMechanism::for_policy(&policy, epsilon);
//! let mut rng = StdRng::seed_from_u64(7);
//! let release = mechanism.release(&dataset.histogram().cumulative(), &mut rng)?;
//!
//! let noisy = release.range(10, 20);
//! let exact = dataset.histogram().range_count(10, 20)?;
//! assert!((noisy - exact).abs() < 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use bf_chaos as chaos;
pub use bf_constraints as constraints;
pub use bf_core as core;
pub use bf_data as data;
pub use bf_domain as domain;
pub use bf_engine as engine;
pub use bf_graph as graph;
pub use bf_mechanisms as mechanisms;
pub use bf_net as net;
pub use bf_obs as obs;
pub use bf_replica as replica;
pub use bf_server as server;
pub use bf_store as store;
pub use futures_lite as rt;

/// The most common types, one `use` away.
pub mod prelude {
    pub use bf_constraints::{Marginal, PolicyGraph};
    pub use bf_core::{
        BudgetAccountant, CountConstraint, Epsilon, LaplaceMechanism, Policy, Predicate, QueryClass,
    };
    pub use bf_domain::{
        BoundingBox, CumulativeHistogram, Dataset, Domain, GridDomain, Histogram, OrderedDomain,
        Partition, PointSet, Tuple,
    };
    pub use bf_engine::{Engine, EngineError, Request, RequestKind, Response};
    pub use bf_graph::SecretGraph;
    pub use bf_mechanisms::kmeans::{KmeansSecretSpec, PrivateKmeans};
    pub use bf_mechanisms::{
        HierarchicalMechanism, HistogramMechanism, OrderedHierarchicalMechanism, OrderedMechanism,
    };
    pub use bf_net::{Client, NetConfig, NetError, NetServer, RetryPolicy, WireError};
    pub use bf_obs::{TraceContext, TraceId, TraceTree};
    pub use bf_replica::{ClusterConfig, MemberConfig, Replica, ReplicaConfig, ShardMap};
    pub use bf_server::{Server, ServerConfig, ServerError, ServerStats, Ticket};
    pub use bf_store::{LedgerEntry, Store, StoreConfig, StoreError, StoreStats};
    pub use futures_lite::Executor;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compile() {
        let d = Domain::line(4).unwrap();
        let p = Policy::differential_privacy(d);
        assert_eq!(p.label(), "full");
    }
}
