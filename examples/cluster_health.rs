//! The cluster observability plane watching a three-replica fleet
//! lose a follower.
//!
//! ```text
//! cargo run --release --example cluster_health
//! ```
//!
//! A leader and two followers serve a small workload while the
//! observability plane is fully on: a declarative replication-lag SLO
//! evaluates on every scrape, one `ClusterStats` call federates every
//! member's metrics under a `replica` label, `Health` answers cheap
//! load-balancer probes, and a live `Watch` streams cluster events.
//! The demo then kills a follower and shows all three surfaces react:
//! the health report names the unreachable member, the lag SLO fires
//! (a dead peer confirms nothing, so it counts as maximally behind),
//! and the firing transition arrives as a pushed event on the watch
//! that was opened before the failure.

use blowfish::net::Client;
use blowfish::obs::{merge_labeled_snapshots, ClusterEventKind, SloObjective, SloSpec};
use blowfish::prelude::*;
use blowfish::replica::Replica;
use std::time::{Duration, Instant};

const SEED: u64 = 2014;
const QUORUM: usize = 2;
const PER_QUERY_EPS: f64 = 0.125;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Runs identically on every replica — the replicated-state script.
fn setup(engine: &Engine) {
    let domain = Domain::line(96).expect("domain");
    engine
        .register_policy("salaries", Policy::distance_threshold(domain.clone(), 6))
        .expect("policy");
    let rows: Vec<usize> = (0..9_600).map(|i| (i * 31) % 96).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).expect("rows"))
        .expect("dataset");
}

fn spawn(name: &str, slos: Vec<SloSpec>) -> Replica {
    let dir = format!("target/cluster-health-demo/{name}");
    let _ = std::fs::remove_dir_all(&dir);
    Replica::start(
        dir,
        "127.0.0.1:0",
        "127.0.0.1:0",
        ReplicaConfig {
            seed: SEED,
            quorum: QUORUM,
            name: name.into(),
            net: NetConfig {
                slos,
                ..NetConfig::default()
            },
            ..ReplicaConfig::default()
        },
        setup,
    )
    .expect("start replica")
}

fn await_applied(r: &Replica, target: u64, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while r.status().applied < target {
        assert!(Instant::now() < deadline, "{who} never caught up");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn main() {
    println!("== cluster observability plane: federated scrape, SLOs, live events ==\n");

    // One declarative objective: fleet replication lag must stay
    // under 2 entries. Evaluated against every scrape the leader's
    // client port serves; a dead peer counts as maximally behind.
    let slos = vec![SloSpec {
        name: "replication-lag".into(),
        objective: SloObjective::ReplicationLagUnder {
            metric: "replica_cluster_lag_entries".into(),
            max_entries: 2.0,
        },
    }];
    let leader = spawn("alpha", slos);
    let beta = spawn("beta", Vec::new());
    let gamma = spawn("gamma", Vec::new());
    leader.lead();
    let hint = leader.client_addr().to_string();
    beta.follow(leader.peer_addr(), &hint);
    gamma.follow(leader.peer_addr(), &hint);
    leader.set_peers(&[
        ("beta".into(), beta.peer_addr()),
        ("gamma".into(), gamma.peer_addr()),
    ]);
    println!("cluster: alpha (leader) + beta + gamma, quorum {QUORUM}\n");

    // A live watch, subscribed before anything interesting happens.
    let mut watcher = Client::connect(leader.client_addr()).expect("connect watcher");
    let mut watch = watcher.watch().expect("open watch");

    // A small replicated workload.
    let mut client = Client::connect(leader.client_addr()).expect("connect");
    client.open_session("hr", 4.0).expect("open session");
    for i in 0..6u64 {
        let lo = (i as usize * 13) % 64;
        let id = client
            .submit_tagged(
                "hr",
                &Request::range("salaries", "payroll", eps(PER_QUERY_EPS), lo, lo + 16),
                Some(i + 1),
                None,
            )
            .expect("submit");
        client.wait(id).expect("answer");
    }
    await_applied(&beta, 7, "beta");
    await_applied(&gamma, 7, "gamma");

    // --- Federated scrape: the whole fleet in one call -------------
    let replicas = client.cluster_stats().expect("cluster stats");
    println!("one ClusterStats call covered {} members:", replicas.len());
    for r in &replicas {
        println!(
            "  replica=\"{}\"  reachable={}  series={}",
            r.node,
            r.reachable,
            r.metrics.len()
        );
    }
    let merged = merge_labeled_snapshots(
        "replica",
        replicas
            .iter()
            .map(|r| {
                (
                    r.node.clone(),
                    r.metrics.iter().map(|m| m.to_snapshot()).collect(),
                )
            })
            .collect(),
    );
    let fleet_series = merged
        .iter()
        .filter(|m| m.name().starts_with("replica_log_index"))
        .count();
    println!("merged into one registry view: {fleet_series} replica-labeled log-index series\n");

    // --- Health while everything is fine ---------------------------
    let health = client.health().expect("health");
    println!(
        "health(alpha): role={} epoch={} applied={} lag={} unreachable={:?} firing={:?}",
        health.role, health.epoch, health.applied, health.lag, health.unreachable, health.firing
    );
    assert!(health.firing.is_empty(), "nothing should fire yet");

    // --- Kill a follower -------------------------------------------
    println!("\nkilling follower gamma…\n");
    gamma.kill();

    let health = client.health().expect("health");
    println!(
        "health(alpha): role={} lag={} unreachable={:?} firing={:?}",
        health.role, health.lag, health.unreachable, health.firing
    );
    assert_eq!(health.unreachable, vec!["gamma".to_string()]);
    assert_eq!(health.firing, vec!["replication-lag".to_string()]);

    // The SLO transition was pushed to the watch opened before the
    // failure — no polling required.
    let deadline = Instant::now() + Duration::from_secs(5);
    let fired = loop {
        assert!(Instant::now() < deadline, "SLO event never arrived");
        match watch.next(Duration::from_millis(100)).expect("watch") {
            Some(ev) if ev.kind == ClusterEventKind::Slo => break ev,
            Some(_) | None => continue,
        }
    };
    println!(
        "\npushed event: kind=slo detail={:?} firing={}",
        fired.detail,
        fired.value == 1
    );
    assert_eq!(fired.detail, "replication-lag");

    // The federated scrape still covers the fleet — the dead member
    // is reported as unreachable, not silently dropped.
    let replicas = client.cluster_stats().expect("cluster stats");
    let dead: Vec<&str> = replicas
        .iter()
        .filter(|r| !r.reachable)
        .map(|r| r.node.as_str())
        .collect();
    println!(
        "post-kill scrape: {} members, unreachable={dead:?}",
        replicas.len()
    );
    assert_eq!(dead, ["gamma"]);

    client.goodbye().expect("goodbye");
    gamma.shutdown().expect("shutdown gamma");
    beta.shutdown().expect("shutdown beta");
    leader.shutdown().expect("shutdown leader");
    println!("\nOK: health flipped, SLO fired, and the event streamed — the plane saw it all.");
}
