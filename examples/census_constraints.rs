//! Publishing histograms when marginals are already public — the
//! Section 8 scenario.
//!
//! A census bureau has already published the one-way marginal over
//! `gender` and now wants to release the full histogram over
//! `gender × age-group × region`. An adversary who knows the marginal can
//! combine it with noisy answers, so Blowfish calibrates noise to the
//! *constrained* sensitivity computed from the policy graph
//! (Definition 8.3 / Theorem 8.2) instead of the unconstrained value 2.
//!
//! Run with `cargo run --release --example census_constraints`.

use blowfish::constraints::policy_graph::PolicyGraph;
use blowfish::constraints::sparse::DEFAULT_SCAN_CAP;
use blowfish::constraints::Marginal;
use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // gender (2) × age-group (4) × region (5).
    let domain = Domain::new(vec![
        blowfish::domain::Attribute::with_labels("gender", vec!["f".into(), "m".into()])?,
        blowfish::domain::Attribute::new("age_group", 4)?,
        blowfish::domain::Attribute::new("region", 5)?,
    ])?;

    // A synthetic population of 5,000 people.
    let mut rng = StdRng::seed_from_u64(314);
    let rows: Vec<usize> = (0..5_000)
        .map(|i| (i * 17 + (i * i) % 13) % domain.size())
        .collect();
    let dataset = Dataset::from_rows(domain.clone(), rows)?;

    // Publicly known: the gender marginal.
    let marginal = Marginal::new(vec![0]);
    let queries = marginal.queries(&domain);
    let constraints = marginal.constraints(&dataset);
    println!("public marginal over `gender`: {} cells", queries.len());
    for (i, c) in constraints.iter().enumerate() {
        println!(
            "  count(gender={}) = {}",
            domain.attribute(0).label(i as u32),
            c.answer()
        );
    }

    // Build the policy graph and read off the constrained sensitivity.
    let gp = PolicyGraph::build(&domain, &SecretGraph::Full, &queries, DEFAULT_SCAN_CAP)?;
    println!(
        "\npolicy graph: alpha = {}, xi = {} -> S(h, P) = {}",
        gp.alpha(),
        gp.xi(),
        gp.sensitivity_bound()
    );
    println!(
        "Theorem 8.4 closed form: 2 * size(C) = {}",
        blowfish::constraints::thm_8_4_sensitivity(&domain, &marginal)?
    );

    // Release the full histogram with correctly calibrated noise.
    let epsilon = Epsilon::new(1.0)?;
    let policy = Policy::with_constraints(domain.clone(), SecretGraph::Full, constraints)?;
    policy.check_constraints(&dataset)?;
    let mechanism = HistogramMechanism::with_sensitivity(epsilon, gp.sensitivity_bound())?;
    let noisy = mechanism.release(&dataset, &mut rng);
    println!(
        "\nreleased {}-cell histogram; per-cell noise scale {} (naive DP would use 2/ε = {})",
        noisy.len(),
        mechanism.scale(),
        2.0 / epsilon.value()
    );
    println!(
        "first cells, noisy vs exact: {:?} vs {:?}",
        &noisy.counts()[..4]
            .iter()
            .map(|v| v.round())
            .collect::<Vec<_>>(),
        &dataset.histogram().counts()[..4]
    );
    println!("\nthe extra noise is the price of publishing the marginal exactly:");
    println!("without it, an adversary combining marginal + noisy cells learns individuals.");
    Ok(())
}
