//! Request-scoped distributed tracing and ε-provenance audit, end to
//! end over TCP:
//!
//! ```text
//! cargo run --release --example trace_audit
//! ```
//!
//! The example builds a WAL-backed engine behind the TCP front-end and
//! then:
//!
//! 1. **Traces requests over the wire.** Two analysts submit identical
//!    range queries stamped with client-assigned trace ids; the
//!    coalescing window folds them into one mechanism release.
//!    `Client::traces()` fetches the retained trace trees and the
//!    example prints each request's span waterfall — decode → queue →
//!    schedule → coalesce → wal_commit → release → reply — with the
//!    shared-release link id visible on both traces.
//! 2. **Audits the ε ledger.** `Client::audit()` replays every charge
//!    booked for an analyst straight out of the WAL (archived segments
//!    included), and the example cross-checks the per-record sum
//!    against the ledger the wire reports via `Client::budget()`.
//! 3. **Proves the side-channel claim.** The same seeded workload runs
//!    again with observability disabled entirely; answer digests must
//!    be byte-identical — tracing reads clocks and appends spans, but
//!    never touches noise, charging or scheduling.

use blowfish::net::{Client, NetConfig, NetServer};
use blowfish::obs::Stage;
use blowfish::prelude::*;
use blowfish::store::{fnv1a, StoreConfig};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0x7EAC_E0DE;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Builds the full stack on loopback, runs the traced workload, and
/// returns the answer digest plus (on the traced run) the retained
/// trace trees and the audit entries for "ann".
fn run(
    tracing_on: bool,
    dir: &std::path::Path,
) -> (
    u64,
    Vec<blowfish::obs::TraceTree>,
    Vec<blowfish::store::LedgerEntry>,
) {
    let store = Arc::new(
        Store::open_with(
            dir,
            StoreConfig {
                archive_replayed_segments: true,
                ..StoreConfig::default()
            },
        )
        .unwrap(),
    );
    store.obs().set_enabled(tracing_on);
    let engine = Engine::with_store(SEED, Arc::clone(&store));
    engine.obs().set_enabled(tracing_on);
    let domain = Domain::line(64).unwrap();
    engine
        .register_policy("salary", Policy::distance_threshold(domain.clone(), 4))
        .unwrap();
    let rows: Vec<usize> = (0..2_000).map(|i| (i * 13) % 64).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    let server = Arc::new(Server::new(
        Arc::new(engine),
        ServerConfig {
            coalesce_window: 8,
            ..ServerConfig::default()
        },
    ));
    let net = NetServer::bind(
        "127.0.0.1:0",
        server,
        NetConfig {
            tick_interval: Duration::from_millis(5),
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    let mut fold = |bits: u64| digest = fnv1a(&[digest.to_le_bytes(), bits.to_le_bytes()].concat());

    let mut client = Client::connect(net.local_addr()).unwrap();
    client.open_session("ann", 8.0).unwrap();
    client.open_session("bee", 8.0).unwrap();
    // Identical traced requests from two analysts: the window folds
    // them into one release, linked across both trace trees.
    for round in 0..4u64 {
        let req = Request::range(
            "salary",
            "payroll",
            eps(0.25),
            round as usize * 3,
            round as usize * 3 + 24,
        );
        let trace = |tag: u64| (round * 2 + tag).checked_add(0x100);
        let a = client
            .submit_traced("ann", &req, None, None, trace(0))
            .unwrap();
        let b = client
            .submit_traced("bee", &req, None, None, trace(1))
            .unwrap();
        fold(client.wait(a).unwrap().scalar().unwrap().to_bits());
        fold(client.wait(b).unwrap().scalar().unwrap().to_bits());
    }
    // Compact mid-run so part of the history lives in archive/ — the
    // audit must keep seeing it.
    store.compact().unwrap();
    let id = client
        .submit_tagged(
            "ann",
            &Request::range("salary", "payroll", eps(0.5), 10, 50),
            Some(1),
            None,
        )
        .unwrap();
    fold(client.wait(id).unwrap().scalar().unwrap().to_bits());

    let traces = client.traces().unwrap();
    let audit = client.audit("ann").unwrap();
    // Per-record provenance must sum to exactly what the ledger says.
    let booked: f64 = audit.iter().map(|e| e.epsilon()).sum();
    let spent = client.budget("ann").unwrap().spent;
    assert_eq!(
        booked.to_bits(),
        spent.to_bits(),
        "audit entries must sum to the ledger bit-for-bit"
    );
    client.goodbye().unwrap();
    net.shutdown().unwrap();
    (digest, traces, audit)
}

fn main() {
    println!("=== run 1: tracing ENABLED ===");
    let dir_on = blowfish::store::scratch_dir("trace-audit-on");
    let (digest_on, traces, audit) = run(true, &dir_on);

    // 1. Span waterfalls for the first coalesced pair.
    println!("-- {} trace trees retained --", traces.len());
    for tree in traces.iter().filter(|t| t.id.0 < 0x102) {
        println!(
            "   trace {} analyst={} outcome={} total={}µs",
            tree.id,
            tree.analyst,
            tree.outcome,
            tree.total_ns / 1_000
        );
        for span in &tree.spans {
            let link = span.link.map(|l| format!(" link={l}")).unwrap_or_default();
            println!(
                "      {:<10} +{:>7}µs {:>7}µs {}{}",
                span.stage.as_str(),
                span.start_ns / 1_000,
                span.duration_ns / 1_000,
                span.outcome,
                link
            );
        }
        assert!(
            tree.covers(&Stage::ALL),
            "every traced request covers all seven stages"
        );
    }

    // 2. The ε-provenance audit for "ann".
    println!("-- audit: {} ledger records for ann --", audit.len());
    for e in &audit {
        println!(
            "   seq={:<4} ε={:<8} fp={:016x} {}",
            e.seq,
            e.epsilon(),
            e.fingerprint,
            e.label
        );
    }

    // 3. Same seed on a fresh WAL, observability off: identical bytes.
    println!("=== run 2: tracing DISABLED ===");
    let dir_off = blowfish::store::scratch_dir("trace-audit-off");
    let (digest_off, no_traces, _) = run(false, &dir_off);
    assert!(no_traces.is_empty(), "disabled run must retain no traces");
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
    println!("digest on  = {digest_on:#018x}");
    println!("digest off = {digest_off:#018x}");
    assert_eq!(digest_on, digest_off, "tracing must be a pure side channel");
    println!("byte-identical: tracing changed nothing about the answers.");
}
