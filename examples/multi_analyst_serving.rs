//! Multi-analyst serving: the engine end-to-end.
//!
//! A hospital publishes a distance-threshold policy over length-of-stay
//! data and serves three analysts, each with their own ε-ledger:
//!
//! 1. register one policy and one dataset,
//! 2. open per-analyst sessions with different total budgets,
//! 3. serve histograms, batched range queries and linear queries,
//! 4. watch the sensitivity cache amortize the per-policy graph work,
//! 5. watch the budget enforcement refuse an over-draining analyst.
//!
//! Run with `cargo run --release --example multi_analyst_serving`.

use blowfish::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Setup ─────────────────────────────────────────────────────────
    // 365 length-of-stay bins (days). The policy: an adversary may learn
    // a patient's stay to within two weeks, but nothing finer.
    let domain = Domain::line(365)?;
    let policy = Policy::distance_threshold(domain.clone(), 14);

    // A synthetic admissions table: 50,000 stays, mostly short.
    let rows: Vec<usize> = (0..50_000)
        .map(|i| (((i * 37) % 97) * ((i * 13) % 11)) % 365)
        .collect();
    let dataset = Dataset::from_rows(domain, rows)?;
    let exact_total = dataset.len() as f64;

    let engine = Engine::with_seed(2014);
    engine.register_policy("los", policy)?;
    engine.register_dataset("admissions", dataset)?;

    // ── Sessions: one ε-ledger per analyst ────────────────────────────
    engine.open_session("epidemiologist", Epsilon::new(2.0)?)?;
    engine.open_session("billing", Epsilon::new(0.5)?)?;
    engine.open_session("intern", Epsilon::new(0.2)?)?;

    // ── The epidemiologist: a histogram, then a batch of range queries.
    let eps = Epsilon::new(0.5)?;
    let hist = engine.serve(
        "epidemiologist",
        &Request::histogram("los", "admissions", eps),
    )?;
    println!(
        "epidemiologist: histogram over {} bins (first cells: {:.1?})",
        hist.vector().unwrap().len(),
        &hist.vector().unwrap()[..4]
    );

    // Twelve monthly range queries, answered from ONE noisy release:
    // one ε=0.5 spend instead of twelve.
    let months: Vec<Request> = (0..12)
        .map(|m| Request::range("los", "admissions", eps, m * 30, m * 30 + 29))
        .collect();
    let answers = engine.serve_batch("epidemiologist", &months);
    print!("epidemiologist: monthly counts ");
    for a in &answers {
        print!("{:.0} ", a.as_ref().unwrap().scalar().unwrap());
    }
    println!();
    let snap = engine.session_snapshot("epidemiologist")?;
    println!(
        "epidemiologist: spent ε={:.2} of {:.2} across {} answers (batch = 1 spend)",
        snap.spent(),
        snap.total().value(),
        snap.served()
    );

    // ── Billing: a linear query (average reimbursement weight). ───────
    let weights: Vec<f64> = (0..365).map(|d| 1000.0 + 150.0 * d as f64).collect();
    let revenue = engine.serve(
        "billing",
        &Request::linear("los", "admissions", Epsilon::new(0.4)?, weights),
    )?;
    println!(
        "billing: projected revenue ≈ {:.0} (exact scale ~{:.0} patients)",
        revenue.scalar().unwrap(),
        exact_total
    );

    // Billing re-asks the histogram the epidemiologist already paid the
    // graph work for: same (policy, class) key, so the sensitivity comes
    // from the cache — sharing it across analysts is free, the policy is
    // public.
    engine.serve(
        "billing",
        &Request::histogram("los", "admissions", Epsilon::new(0.1)?),
    )?;

    // ── The intern: drains a small budget and gets refused. ───────────
    let small = Epsilon::new(0.15)?;
    engine.serve("intern", &Request::range("los", "admissions", small, 0, 6))?;
    match engine.serve("intern", &Request::range("los", "admissions", small, 7, 13)) {
        Err(EngineError::BudgetRefused {
            requested,
            remaining,
            ..
        }) => println!("intern: refused — requested ε={requested}, remaining ε={remaining:.2}"),
        other => println!("intern: unexpected {other:?}"),
    }

    // ── Cache: every request after the first reused the graph work. ───
    let stats = engine.cache_stats();
    println!(
        "sensitivity cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        stats.entries,
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );
    Ok(())
}
