//! Exactly-once serving under injected wire chaos, end to end.
//!
//! ```text
//! cargo run --release --example chaos_recovery
//! ```
//!
//! A WAL-backed engine serves over TCP while a seed-deterministic fault
//! plan kills reply frames: the first answer's connection is dropped,
//! the third is truncated mid-frame, the fifth is delayed. The client
//! survives all of it with [`Client::call_idempotent`] — reconnect,
//! deterministic backoff, resubmit under the same idempotency key — and
//! the ledger shows every request charged **exactly once**. The serving
//! process then restarts (new engine, different noise seed, same WAL)
//! and a pre-restart idempotency key still replays its answer
//! bit-identically from the recovered reply cache.

use blowfish::chaos::{NetFault, NetPlan};
use blowfish::engine::{Engine, Request, Store};
use blowfish::net::{Client, NetConfig, NetError, NetServer, RetryPolicy};
use blowfish::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const STORE_DIR: &str = "target/chaos-recovery-demo";

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn build_engine(seed: u64, store: Arc<Store>) -> Arc<Engine> {
    let engine = Engine::with_store(seed, store);
    let domain = Domain::line(128).expect("domain");
    engine
        .register_policy("salaries", Policy::distance_threshold(domain.clone(), 8))
        .expect("policy");
    let rows: Vec<usize> = (0..5_000).map(|i| (i * 37) % 128).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).expect("rows"))
        .expect("dataset");
    Arc::new(engine)
}

fn start_server(seed: u64, fault_plan: Option<Arc<NetPlan>>) -> NetServer {
    let store = Arc::new(Store::open(STORE_DIR).expect("open store"));
    let server = Arc::new(Server::with_defaults(build_engine(seed, store)));
    NetServer::bind(
        "127.0.0.1:0",
        server,
        NetConfig {
            fault_plan,
            ..NetConfig::default()
        },
    )
    .expect("bind")
}

fn main() {
    let _ = std::fs::remove_dir_all(STORE_DIR);

    // Phase 1: serve through scripted wire faults. The plan's op clock
    // ticks once per answer frame, so the schedule is exact: answer 1's
    // connection drops, answer 3 is torn mid-frame, answer 5 dawdles.
    let plan = Arc::new(NetPlan::scripted([
        (1, NetFault::DropConnection),
        (3, NetFault::TruncateReply),
        (5, NetFault::DelayReplyMicros(2_000)),
    ]));
    let net = start_server(0xC0FFEE, Some(Arc::clone(&plan)));
    let mut client = Client::connect(net.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    client.open_session("alice", 1.0).expect("session");
    for i in 0..6usize {
        let request = Request::range("salaries", "payroll", eps(0.1), 5 * i, 5 * i + 40);
        client
            .call_idempotent("alice", &request, &RetryPolicy::default())
            .expect("exactly-once call");
    }
    let budget = client.budget("alice").expect("budget");
    assert!(
        (budget.spent - 0.6).abs() < 1e-12,
        "6 × 0.1 with retries must charge exactly 0.6, got {}",
        budget.spent
    );
    println!(
        "phase 1: 6 calls through {} injected wire faults — spent ε = {:.2} (exactly once) ✓",
        plan.injected(),
        budget.spent
    );

    // A keyed answer to carry across the restart: its reply made it, so
    // the reply cache now holds it durably.
    let request = Request::range("salaries", "payroll", eps(0.2), 10, 90);
    let id = client
        .submit_tagged("alice", &request, Some(4242), None)
        .expect("submit");
    let before_restart = client.wait(id).expect("answer");

    // An already-expired deadline refuses typed — before any charge.
    let id = client
        .submit_tagged("alice", &request, Some(4243), Some(0))
        .expect("submit");
    match client.wait(id) {
        Err(NetError::Remote(WireError::DeadlineExceeded { .. })) => {
            println!("phase 1: zero-µs deadline refused before any charge ✓");
        }
        other => panic!("expected a deadline refusal, got {other:?}"),
    }

    // Phase 2: restart the serving process — new engine, **different**
    // noise seed, same WAL — and replay the pre-restart key. Identical
    // bytes can only come from the recovered reply cache.
    net.shutdown().expect("shutdown");
    let net = start_server(0xBEEF, None);
    let reattached = client.reconnect_to(net.local_addr()).expect("reconnect");
    println!(
        "phase 2: restarted on {}, reattached {:?}",
        net.local_addr(),
        reattached
    );
    let spent_before = client.budget("alice").expect("budget").spent;
    let id = client
        .submit_tagged("alice", &request, Some(4242), None)
        .expect("resubmit");
    let replayed = client.wait(id).expect("replay");
    assert_eq!(
        before_restart, replayed,
        "the recovered reply cache must answer bit-identically"
    );
    let spent_after = client.budget("alice").expect("budget").spent;
    assert_eq!(
        spent_before.to_bits(),
        spent_after.to_bits(),
        "a replay must cost zero ε"
    );
    println!("phase 2: pre-restart key replayed bit-identically at zero ε ✓");

    // The whole story is visible in one stats scrape.
    let metrics = client.stats().expect("stats");
    for needle in ["retries", "replay_cache_hits", "deadline_refusals"] {
        let m = metrics
            .iter()
            .find(|m| m.name().contains(needle))
            .unwrap_or_else(|| panic!("{needle} missing from the scrape"));
        println!("  scrape: {} present ✓", m.name());
    }
    client.goodbye().expect("goodbye");
    net.shutdown().expect("shutdown");
    println!("OK");
}
