//! A three-replica cluster surviving a leader kill without losing ε.
//!
//! ```text
//! cargo run --release --example replicated_cluster
//! ```
//!
//! Three replicas share one seed and one registration script — the
//! deterministic-replay preconditions. The leader sequences every write
//! into a replicated log, acks only after a quorum of 2 holds the entry
//! durable, and the followers replay the identical log through
//! identical engines. The demo then kills the leader mid-workload,
//! promotes the better-caught-up follower (epoch bump fences the old
//! leader), re-points the remaining follower, and proves the failover
//! invariant: **every charge the old leader acked is present exactly
//! once** — resubmitting the whole workload under the original
//! idempotency keys replays acked answers bit-identically at zero
//! additional ε, and the surviving replicas' ledgers agree byte for
//! byte.

use blowfish::chaos::{ReplicaFault, ReplicaPlan};
use blowfish::prelude::*;
use blowfish::replica::{Replica, ReplicaConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 2014;
const QUORUM: usize = 2;
const PER_QUERY_EPS: f64 = 0.125;
const BURST: u64 = 16;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Runs identically on every replica — the replicated-state script.
fn setup(engine: &Engine) {
    let domain = Domain::line(96).expect("domain");
    engine
        .register_policy("salaries", Policy::distance_threshold(domain.clone(), 6))
        .expect("policy");
    let rows: Vec<usize> = (0..9_600).map(|i| (i * 31) % 96).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).expect("rows"))
        .expect("dataset");
}

fn spawn(name: &str, plan: Option<Arc<ReplicaPlan>>) -> Replica {
    let dir = format!("target/replicated-cluster-demo/{name}");
    let _ = std::fs::remove_dir_all(&dir);
    Replica::start(
        dir,
        "127.0.0.1:0",
        "127.0.0.1:0",
        ReplicaConfig {
            seed: SEED,
            quorum: QUORUM,
            fault_plan: plan,
            ..ReplicaConfig::default()
        },
        setup,
    )
    .expect("start replica")
}

fn await_applied(r: &Replica, target: u64, who: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while r.status().applied < target {
        assert!(Instant::now() < deadline, "{who} never caught up");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn ledger_sig(r: &Replica, analyst: &str) -> Vec<(String, u64)> {
    r.engine()
        .ledger_history(analyst)
        .expect("ledger")
        .iter()
        .map(|e| (e.label.clone(), e.eps_bits))
        .collect()
}

fn query(rid: u64) -> Request {
    let lo = (rid % 24) as usize;
    Request::range("salaries", "payroll", eps(PER_QUERY_EPS), lo, lo + 40)
}

fn main() {
    // ── Phase 1: a three-replica cluster serves a quorum-acked burst ──
    // The leader's chaos plan kills it at its 10th sequenced entry:
    // 1 session open + 8 answered queries, then the 9th query dies.
    let plan = Arc::new(ReplicaPlan::scripted([(10, ReplicaFault::KillLeader)]));
    let leader = spawn("leader", Some(plan));
    let f1 = spawn("follower-1", None);
    let f2 = spawn("follower-2", None);
    leader.lead();
    let hint = leader.client_addr().to_string();
    f1.follow(leader.peer_addr(), &hint);
    f2.follow(leader.peer_addr(), &hint);
    println!(
        "cluster up: leader {} + followers {} / {} (quorum {QUORUM}, seed {SEED})",
        leader.client_addr(),
        f1.client_addr(),
        f2.client_addr()
    );

    let mut client = Client::connect(leader.client_addr()).expect("connect");
    client.open_session("alice", 4.0).expect("open");
    let mut acked: Vec<(u64, Response)> = Vec::new();
    for rid in 1..=BURST {
        match client.submit_tagged("alice", &query(rid), Some(rid), None) {
            Ok(id) => match client.wait(id) {
                Ok(resp) => acked.push((rid, resp)),
                Err(e) => {
                    println!("rid {rid}: leader died mid-burst ({e})");
                    break;
                }
            },
            Err(e) => {
                println!("rid {rid}: leader died mid-burst ({e})");
                break;
            }
        }
    }
    println!(
        "burst: {} of {BURST} queries acked before the scripted kill",
        acked.len()
    );
    assert!(leader.status().dead, "the chaos plan must have fired");

    // ── Phase 2: operator failover — promote, fence, re-point ──
    // `promote_over` probes the survivors first and refuses a candidate
    // whose durable log is shorter than a peer's — the guard that keeps
    // quorum-acked entries from being dropped by a bad pick.
    let (promoted, other, pname) = match f1.promote_over(&[f2.peer_addr(), leader.peer_addr()]) {
        Ok(()) => (&f1, &f2, "follower-1"),
        Err(e) => {
            println!("follower-1 refused: {e}");
            f2.promote_over(&[f1.peer_addr(), leader.peer_addr()])
                .expect("some survivor holds the longest log");
            (&f2, &f1, "follower-2")
        }
    };
    other.follow(promoted.peer_addr(), &promoted.client_addr().to_string());
    let st = promoted.status();
    println!(
        "{pname} promoted: epoch {} (old leader fenced), log {} fully replayed",
        st.epoch, st.applied
    );
    assert!(st.leader && st.applied == st.commit_index);

    // ── Phase 3: resubmit everything under the original keys ──
    let mut c2 = Client::connect(promoted.client_addr()).expect("connect new leader");
    c2.open_session("alice", 4.0).expect("reattach");
    let mut replayed = 0u64;
    for rid in 1..=BURST {
        let id = c2
            .submit_tagged("alice", &query(rid), Some(rid), None)
            .expect("resubmit");
        let resp = c2.wait(id).expect("answer after failover");
        if let Some((_, first)) = acked.iter().find(|(r, _)| *r == rid) {
            assert_eq!(
                &resp, first,
                "rid {rid}: acked answer changed across failover"
            );
            replayed += 1;
        }
    }
    println!(
        "resubmitted all {BURST} keys: {replayed} acked answers replayed bit-identically, \
         {} served fresh",
        BURST - replayed
    );

    // ── Phase 4: ε conservation, byte for byte ──
    let snap = promoted
        .engine()
        .session_snapshot("alice")
        .expect("session");
    let expected = BURST as f64 * PER_QUERY_EPS;
    assert_eq!(
        snap.spent().to_bits(),
        expected.to_bits(),
        "every key must be charged exactly once"
    );
    let sig = ledger_sig(promoted, "alice");
    assert_eq!(sig.len() as u64, BURST);
    await_applied(other, promoted.status().applied, "re-pointed follower");
    assert_eq!(
        sig,
        ledger_sig(other, "alice"),
        "surviving replicas must agree byte for byte"
    );
    println!(
        "ε conserved: spent {} = {BURST} × {PER_QUERY_EPS}, ledgers identical on both survivors",
        snap.spent()
    );

    f2.shutdown().expect("shutdown f2");
    f1.shutdown().expect("shutdown f1");
    leader.shutdown().expect("shutdown old leader");
    println!("replicated cluster demo complete");
}
