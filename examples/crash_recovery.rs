//! Kill-and-restart demo of the durable ε-budget ledger.
//!
//! Run in two phases against the same store directory:
//!
//! ```text
//! cargo run --release --example crash_recovery -- crash    # aborts mid-serving
//! cargo run --release --example crash_recovery -- recover  # resumes the ledger
//! ```
//!
//! The `crash` phase registers a policy and dataset, opens a session
//! with ε = 1.0, acknowledges charges worth 0.7, and then calls
//! `std::process::abort()` — no destructors, no flush, the hardest
//! software crash available. The `recover` phase reopens the store,
//! reattaches the session, and shows the ledger refusing exactly what
//! the pre-crash ledger would have refused.

use blowfish::engine::{Engine, EngineError, Request, Store};
use blowfish::prelude::*;
use std::sync::Arc;

const STORE_DIR: &str = "target/crash-recovery-demo";

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn build_engine(store: Arc<Store>) -> Engine {
    let engine = Engine::with_store(0xC0FFEE, store);
    let domain = Domain::line(128).expect("domain");
    engine
        .register_policy("salaries", Policy::distance_threshold(domain.clone(), 8))
        .expect("policy");
    let rows: Vec<usize> = (0..5_000).map(|i| (i * 37) % 128).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).expect("rows"))
        .expect("dataset");
    engine
}

fn crash() {
    // A fresh run: clear any previous demo state.
    let _ = std::fs::remove_dir_all(STORE_DIR);
    let store = Arc::new(Store::open(STORE_DIR).expect("open store"));
    let engine = build_engine(store);
    engine.open_session("alice", eps(1.0)).expect("session");
    // Partial ranges only: a whole-domain count is zero-sensitivity
    // under Blowfish neighbors and would be served free.
    for (e, lo, hi) in [(0.3, 10, 40), (0.25, 20, 90), (0.15, 0, 63)] {
        engine
            .serve(
                "alice",
                &Request::range("salaries", "payroll", eps(e), lo, hi),
            )
            .expect("serve");
    }
    println!(
        "crash phase: acknowledged 3 charges (ε = 0.70 of 1.00), remaining {:.2} — aborting now",
        engine.session_remaining("alice").expect("remaining")
    );
    // No drop, no flush, no snapshot. The WAL already has everything.
    std::process::abort();
}

fn recover() {
    let store = Arc::new(Store::open(STORE_DIR).expect("open store"));
    let report = store.recovery_report();
    let recovered = store.recovered_state().sessions["alice"];
    println!(
        "recover phase: replayed {} records from {} segment(s){}",
        report.records_applied,
        report.segments_replayed,
        if report.tail_skipped {
            " (torn tail skipped)"
        } else {
            ""
        }
    );
    assert!(
        (recovered.spent - 0.70).abs() < 1e-12,
        "ledger must survive"
    );

    let engine = build_engine(store);
    engine.open_session("alice", eps(1.0)).expect("reattach");
    let remaining = engine.session_remaining("alice").expect("remaining");
    println!("reattached alice: spent 0.70, remaining {remaining:.2}");

    // The recovered ledger refuses what the pre-crash ledger would have.
    let refused = engine
        .serve(
            "alice",
            &Request::range("salaries", "payroll", eps(0.5), 5, 15),
        )
        .expect_err("0.5 > 0.3 remaining must refuse");
    assert!(matches!(refused, EngineError::BudgetRefused { .. }));
    println!("over-budget request (ε = 0.50 > 0.30): refused ✓");
    engine
        .serve(
            "alice",
            &Request::range("salaries", "payroll", eps(0.3), 5, 15),
        )
        .expect("0.3 fits");
    println!("fitting request (ε = 0.30): served ✓");
    engine.checkpoint().expect("compact");
    println!("checkpointed: next recovery loads the snapshot. OK");
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("crash") => crash(),
        Some("recover") => recover(),
        _ => {
            // Self-contained mode for `cargo run --example`: crash in a
            // child process (true abort), then recover in this one.
            let exe = std::env::current_exe().expect("current exe");
            let status = std::process::Command::new(&exe)
                .arg("crash")
                .status()
                .expect("spawn crash phase");
            assert!(!status.success(), "crash phase must die by abort");
            println!("child crashed as intended (status {status})");
            recover();
        }
    }
}
