//! Location clustering under Blowfish policies — the Section 6 scenario.
//!
//! A location dataset (the twitter-like generator) is clustered with
//! private k-means under a ladder of policies: ordinary differential
//! privacy, distance thresholds of 1000/100 km ("an adversary cannot
//! pinpoint me within 100 km"), and a partitioned policy where only the
//! within-cell location is secret.
//!
//! Run with `cargo run --release --example location_clustering`.

use blowfish::data::seeded_rng;
use blowfish::data::twitter::{twitter_grid, twitter_like_sized};
use blowfish::mechanisms::kmeans::{init_random, lloyd_kmeans, objective};
use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(2024);
    let dataset = twitter_like_sized(20_000, &mut rng);
    let grid = twitter_grid();
    let points = PointSet::from_grid_dataset(&grid, &dataset);
    println!(
        "clustering {} check-ins over a {:.0} x {:.0} km region",
        points.len(),
        points.bbox().extents()[0],
        points.bbox().extents()[1]
    );

    let policies = [
        ("differential privacy", KmeansSecretSpec::Full),
        ("blowfish θ=1000 km", KmeansSecretSpec::L1Threshold(1000.0)),
        ("blowfish θ=100 km", KmeansSecretSpec::L1Threshold(100.0)),
        (
            "partition (50 km blocks)",
            KmeansSecretSpec::PartitionMaxDiameter(100.0),
        ),
    ];

    let epsilon = Epsilon::new(0.3)?;
    let k = 4;
    let iterations = 10;
    let trials = 5;

    println!(
        "\n{:<26} {:>18} {:>14}",
        "policy", "objective ratio", "q_sum noise"
    );
    for (name, spec) in policies {
        let mut ratio_sum = 0.0;
        for t in 0..trials {
            let mut trial_rng = StdRng::seed_from_u64(77 + t);
            let init = init_random(&points, k, &mut trial_rng);
            let baseline = lloyd_kmeans(&points, &init, iterations);
            let mech = PrivateKmeans::new(k, iterations, epsilon, spec);
            let private = mech.run(&points, &init, &mut trial_rng);
            ratio_sum += objective(&points, &private) / objective(&points, &baseline);
        }
        println!(
            "{:<26} {:>18.3} {:>14.1}",
            name,
            ratio_sum / trials as f64,
            spec.qsum_sensitivity(points.bbox())
        );
    }
    println!("\nratios near 1.0 mean the private clustering matches the non-private one.");
    Ok(())
}
