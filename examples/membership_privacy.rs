//! Membership privacy via the ⊥ extension — the future-work sketch at
//! the end of the paper's Section 3.1, implemented.
//!
//! The core paper model assumes everyone's presence in the dataset is
//! public (only *values* are secret). With the ⊥ extension, absence
//! itself becomes a secret: edges (⊥, x) in the extended secret graph
//! make "present with value x" indistinguishable from "absent".
//!
//! Scenario: a support group publishes attendance statistics over 16
//! severity levels. Membership in the group is itself sensitive, but only
//! for the low-severity levels (high-severity members are referred
//! through public channels anyway).
//!
//! Run with `cargo run --release --example membership_privacy`.

use blowfish::core::unbounded::{BotEdges, UnboundedDataset, UnboundedPolicy};
use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = Domain::line(16)?;
    let base = Policy::distance_threshold(domain.clone(), 2);

    // Three membership rules, weakest to strongest.
    let policies = [
        ("values only (paper core)", BotEdges::None),
        (
            "membership secret for levels 0-7",
            BotEdges::Values((0..16).map(|x| x < 8).collect()),
        ),
        ("membership always secret", BotEdges::All),
    ];

    // 40 potential members; 28 attend.
    let mut rows: Vec<Option<usize>> = (0..28).map(|i| Some((i * 5) % 16)).collect();
    rows.extend(std::iter::repeat_n(None, 12));
    let dataset = UnboundedDataset::new(16, rows)?;
    println!(
        "universe {} individuals, {} present",
        dataset.universe_size(),
        dataset.present_count()
    );

    let epsilon = Epsilon::new(0.5)?;
    let mut rng = StdRng::seed_from_u64(5);
    println!(
        "\n{:<36} {:>10} {:>12} {:>14}",
        "policy", "S(h,P)", "S(S_T,P)", "#neighbors"
    );
    for (name, bot) in policies {
        let policy = UnboundedPolicy::new(base.clone(), bot);
        println!(
            "{:<36} {:>10} {:>12} {:>14}",
            name,
            policy.histogram_sensitivity(),
            policy.cumulative_histogram_sensitivity(),
            dataset.neighbors(&policy).len()
        );
    }

    // Release the histogram under the strongest rule.
    let policy = UnboundedPolicy::new(base, BotEdges::All);
    let mech = LaplaceMechanism::new(epsilon, policy.histogram_sensitivity())?;
    let noisy = mech.release(dataset.histogram().counts(), &mut rng);
    println!(
        "\nnoisy histogram under full membership protection (first 8 levels):\n{:?}",
        &noisy[..8].iter().map(|v| v.round()).collect::<Vec<_>>()
    );
    println!("exact:\n{:?}", &dataset.histogram().counts()[..8]);
    println!("\nnote: the released total is now noisy too — |D| is no longer public.");
    Ok(())
}
