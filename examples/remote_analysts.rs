//! Multi-process serving over TCP: N client **processes** hammer one
//! serving process on loopback, and every in-process guarantee holds
//! across the wire.
//!
//! Run self-contained (spawns its own clients):
//!
//! ```text
//! cargo run --release --example remote_analysts
//! ```
//!
//! The parent process builds a WAL-backed engine, wraps it in the async
//! server and binds the TCP front-end; then it spawns `ANALYSTS` copies
//! of itself as true client processes, each opening its own session and
//! serving `QUERIES` range queries serially over its own connection.
//! Afterwards it proves three things:
//!
//! 1. **Ledger exactness.** Each client reports its spent ε (exact
//!    bits); after the serving process shuts down, the WAL is reopened
//!    and the recovered spent must equal both the client-observed spend
//!    and the locally recomputed charge sum — bit for bit.
//! 2. **Determinism.** The whole multi-process run executes twice with
//!    the same engine seed; per-analyst answer digests must be
//!    byte-identical, no matter how the kernel interleaved the four
//!    connections (release noise is a pure function of the release's
//!    identity, not of arrival order).
//! 3. **Concurrency.** All clients run as overlapping OS processes —
//!    this is the deployment scenario the in-process examples cannot
//!    exercise.

use blowfish::net::{Client, NetConfig, NetServer};
use blowfish::prelude::*;
use blowfish::store::fnv1a;
use std::collections::BTreeMap;
use std::sync::Arc;

const ANALYSTS: usize = 4;
const QUERIES: usize = 8;
const SEED: u64 = 0xBEEF_CAFE;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// The i-th query of one analyst. Endpoints **and** ε are offset per
/// analyst, so the four processes submit fully disjoint release
/// identities: requests sharing `(policy, data, ε)` would —
/// correctly — be folded into shared releases whose composition depends
/// on which coalescing window the kernel's scheduling landed them in,
/// and this example is out to demonstrate the opposite regime
/// (disjoint streams → byte-identical same-seed runs, however the
/// connections interleave).
fn analyst_epsilon(analyst_index: usize, i: usize) -> f64 {
    0.01 * (i + 1) as f64 + 0.001 * (analyst_index + 1) as f64
}

fn query(analyst_index: usize, i: usize) -> Request {
    let lo = analyst_index * 3 + i;
    let e = eps(analyst_epsilon(analyst_index, i));
    Request::range("salaries", "payroll", e, lo, lo + 20)
}

/// Client-process mode: serve QUERIES queries serially, then print
/// `analyst answers_digest spent_bits` for the parent to collect.
fn run_client(addr: &str, analyst: &str, analyst_index: usize) {
    let mut client = Client::connect(addr).expect("connect");
    let remaining = client.open_session(analyst, 1.0).expect("open session");
    assert_eq!(remaining, 1.0, "fresh session");
    let mut digest_bytes = Vec::with_capacity(QUERIES * 8);
    for i in 0..QUERIES {
        let response = client
            .call(analyst, &query(analyst_index, i))
            .expect("serve");
        let answer = response.scalar().expect("scalar answer");
        digest_bytes.extend_from_slice(&answer.to_bits().to_le_bytes());
    }
    let budget = client.budget(analyst).expect("budget");
    client.goodbye().expect("goodbye");
    println!(
        "{analyst} {:016x} {:016x}",
        fnv1a(&digest_bytes),
        budget.spent.to_bits()
    );
}

/// One full multi-process run: serve, shut down, return per-analyst
/// `(digest, spent bits)` plus the serving stats.
fn run_serving(dir: &std::path::Path) -> BTreeMap<String, (u64, u64)> {
    let store = Arc::new(Store::open(dir).expect("open store"));
    let engine = Engine::with_store(SEED, store);
    let domain = Domain::line(128).expect("domain");
    engine
        .register_policy("salaries", Policy::distance_threshold(domain.clone(), 8))
        .expect("policy");
    let rows: Vec<usize> = (0..5_000).map(|i| (i * 37) % 128).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).expect("rows"))
        .expect("dataset");
    let server = Arc::new(Server::with_defaults(Arc::new(engine)));
    let net = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).expect("bind");
    let addr = net.local_addr().to_string();

    // Spawn every client process first, then wait — they overlap.
    let exe = std::env::current_exe().expect("current exe");
    let children: Vec<(String, std::process::Child)> = (0..ANALYSTS)
        .map(|a| {
            let analyst = format!("analyst-{a}");
            let child = std::process::Command::new(&exe)
                .args(["client", &addr, &analyst, &a.to_string()])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn client process");
            (analyst, child)
        })
        .collect();
    let mut reports = BTreeMap::new();
    for (analyst, child) in children {
        let out = child.wait_with_output().expect("client process");
        assert!(out.status.success(), "client {analyst} failed");
        let line = String::from_utf8(out.stdout).expect("utf8");
        let mut parts = line.split_whitespace();
        assert_eq!(parts.next(), Some(analyst.as_str()));
        let digest = u64::from_str_radix(parts.next().expect("digest"), 16).expect("hex");
        let spent_bits = u64::from_str_radix(parts.next().expect("spent"), 16).expect("hex");
        reports.insert(analyst, (digest, spent_bits));
    }
    let stats = net.shutdown().expect("shutdown");
    assert_eq!(stats.answered as usize, ANALYSTS * QUERIES);
    reports
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("client") {
        let index: usize = args[4].parse().expect("analyst index");
        run_client(&args[2], &args[3], index);
        return;
    }

    // The exact spend each analyst's ledger must show: charges
    // accumulate serially per analyst, so the recomputed sum is
    // bit-identical to the server-side ledger.
    let expected_spent = |analyst_index: usize| -> u64 {
        let mut sum = 0.0f64;
        for i in 0..QUERIES {
            sum += analyst_epsilon(analyst_index, i);
        }
        sum.to_bits()
    };

    let dir_a = std::path::PathBuf::from("target/remote-analysts-demo-a");
    let dir_b = std::path::PathBuf::from("target/remote-analysts-demo-b");
    for dir in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(dir);
    }

    println!("run 1: {ANALYSTS} client processes × {QUERIES} queries over loopback …");
    let first = run_serving(&dir_a);
    for (a, (analyst, (_, spent_bits))) in first.iter().enumerate() {
        assert_eq!(
            *spent_bits,
            expected_spent(a),
            "{analyst}: client-observed spend must equal the charge sum"
        );
    }

    // Ledger exactness across restart: reopen the WAL the serving
    // process left behind; recovered spent must match bit for bit.
    let recovered = Store::open(&dir_a).expect("reopen WAL");
    for (analyst, (_, spent_bits)) in &first {
        let session = &recovered.recovered_state().sessions[analyst.as_str()];
        assert_eq!(
            session.spent.to_bits(),
            *spent_bits,
            "{analyst}: WAL-recovered spent must equal the acknowledged spend"
        );
        assert_eq!(session.served as usize, QUERIES);
    }
    drop(recovered);
    println!("ledgers exact: {ANALYSTS} analysts, recovered == charged, bit-identical ✓");

    println!("run 2: same seed, fresh store, same workload …");
    let second = run_serving(&dir_b);
    assert_eq!(
        first, second,
        "same-seed multi-process runs must be byte-identical"
    );
    println!("same-seed runs byte-identical across {ANALYSTS} racing processes ✓");
    println!("OK");
}
