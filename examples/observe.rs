//! End-to-end observability: trace a serving stack, scrape it over the
//! wire, and prove the instrumentation never touches the answers.
//!
//! ```text
//! cargo run --release --example observe
//! ```
//!
//! The example builds a WAL-backed engine behind the TCP front-end,
//! drives a mixed workload (singles, batches, coalescing collisions from
//! two analysts), then:
//!
//! 1. **Scrapes over the wire.** `Client::stats()` fetches one
//!    `StatsReport` frame carrying every counter, gauge and histogram
//!    summary across all four layers (net → server → engine → store) and
//!    renders it Prometheus-style.
//! 2. **Walks the span journal.** The engine-side journal records each
//!    request's stage timings (decode → queue → schedule → coalesce →
//!    wal_commit → release → reply); the example prints the per-stage
//!    latency summaries.
//! 3. **Proves the side-channel claim.** The same workload runs twice
//!    from the same seed — once with metrics enabled, once fully
//!    disabled — and the answer digests must be byte-identical:
//!    instrumentation reads clocks and bumps atomics, but never touches
//!    RNG derivation, charge ordering or scheduling.

use blowfish::net::{Client, NetConfig, NetServer, WireMetric};
use blowfish::obs::{render_prometheus, MetricSnapshot};
use blowfish::prelude::*;
use blowfish::store::fnv1a;
use std::sync::Arc;

const SEED: u64 = 0x0B5E_59AB;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Builds the full stack on loopback and runs the workload; returns the
/// per-analyst answer digest plus (on the metrics-on run) the scraped
/// report.
fn run(metrics_on: bool, dir: &std::path::Path) -> (u64, Vec<WireMetric>) {
    let store = Arc::new(Store::open(dir).unwrap());
    store.obs().set_enabled(metrics_on);
    let engine = Engine::with_store(SEED, store);
    engine.obs().set_enabled(metrics_on);
    let domain = Domain::line(64).unwrap();
    engine
        .register_policy("salary", Policy::distance_threshold(domain.clone(), 4))
        .unwrap();
    let rows: Vec<usize> = (0..2_000).map(|i| (i * 13) % 64).collect();
    engine
        .register_dataset("payroll", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    let server = Arc::new(Server::new(Arc::new(engine), ServerConfig::default()));
    let net = NetServer::bind("127.0.0.1:0", server, NetConfig::default()).unwrap();

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
    let mut fold = |bits: u64| digest = fnv1a(&[digest.to_le_bytes(), bits.to_le_bytes()].concat());

    // Two analysts: overlapping ranges collide in the coalescing window,
    // a batch exercises the shared-release fold, singles exercise the
    // plain path.
    let mut alice = Client::connect(net.local_addr()).unwrap();
    let mut bob = Client::connect(net.local_addr()).unwrap();
    alice.open_session("alice", 8.0).unwrap();
    bob.open_session("bob", 8.0).unwrap();
    for i in 0..6 {
        let req = Request::range("salary", "payroll", eps(0.25), i, i + 20);
        fold(
            alice
                .call("alice", &req)
                .unwrap()
                .scalar()
                .unwrap()
                .to_bits(),
        );
        fold(bob.call("bob", &req).unwrap().scalar().unwrap().to_bits());
    }
    let batch: Vec<Request> = (0..5)
        .map(|i| Request::range("salary", "payroll", eps(0.5), i * 3, i * 3 + 30))
        .collect();
    for slot in alice.call_batch("alice", &batch).unwrap() {
        fold(slot.unwrap().scalar().unwrap().to_bits());
    }
    fold(
        alice
            .call("alice", &Request::histogram("salary", "payroll", eps(0.5)))
            .unwrap()
            .vector()
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .fold(0u64, |acc, b| acc ^ b),
    );

    let report = alice.stats().unwrap();
    alice.goodbye().unwrap();
    bob.goodbye().unwrap();
    net.shutdown().unwrap();
    (digest, report)
}

fn main() {
    println!("=== run 1: metrics ENABLED ===");
    let dir_on = blowfish::store::scratch_dir("observe-on");
    let (digest_on, report) = run(true, &dir_on);

    // 1. The wire-scraped report, rendered Prometheus-style.
    let snaps: Vec<MetricSnapshot> = report.iter().map(WireMetric::to_snapshot).collect();
    let text = render_prometheus(&snaps);
    println!("-- scraped {} metrics over the wire --", report.len());
    for line in text.lines().filter(|l| {
        l.starts_with("net_request_ns")
            || l.starts_with("server_answered_total")
            || l.starts_with("server_releases_total")
            || l.starts_with("engine_epsilon_spent")
            || l.starts_with("store_commits_total")
            || l.starts_with("net_tick_")
    }) {
        println!("   {line}");
    }

    // 2. Per-stage latency summaries from the span histograms.
    println!("-- request stages (ns) --");
    for m in &report {
        if let WireMetric::Histogram {
            name,
            count,
            p50,
            p99,
            ..
        } = m
        {
            if name.starts_with("span_stage_ns") && *count > 0 {
                println!("   {name:<34} count={count:<4} p50={p50:<9} p99={p99}");
            }
        }
    }

    // 3. Same seed on a fresh WAL, metrics off: byte-identical answers.
    println!("=== run 2: metrics DISABLED ===");
    let dir_off = blowfish::store::scratch_dir("observe-off");
    let (digest_off, _) = run(false, &dir_off);
    let _ = std::fs::remove_dir_all(&dir_on);
    let _ = std::fs::remove_dir_all(&dir_off);
    println!("digest on  = {digest_on:#018x}");
    println!("digest off = {digest_off:#018x}");
    assert_eq!(
        digest_on, digest_off,
        "instrumentation must be a pure side channel"
    );
    println!("byte-identical: observability changed nothing about the answers.");
}
