//! Quickstart: the Blowfish workflow end-to-end.
//!
//! 1. Define a domain and a policy (which pairs of values are secret).
//! 2. Check how much noise the policy buys you vs differential privacy.
//! 3. Release a histogram and answer range queries.
//!
//! Run with `cargo run --release --example quickstart`.

use blowfish::core::sensitivity::cumulative_histogram_sensitivity;
use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A domain of 256 salary bins ($500 each). The policy: an adversary
    // may learn someone's salary bracket to within θ = 8 bins ($4,000)
    // but nothing finer. Differential privacy is the θ = 255 special
    // case (the complete secret graph).
    let domain = Domain::line(256)?;
    let blowfish_policy = Policy::distance_threshold(domain.clone(), 8);
    let dp_policy = Policy::differential_privacy(domain.clone());

    println!("policy                  cumulative-histogram sensitivity");
    for policy in [&dp_policy, &blowfish_policy] {
        println!(
            "{:<22} {:>10}",
            policy.label(),
            cumulative_histogram_sensitivity(policy)
        );
    }

    // A synthetic salary table: 10,000 people, log-normal-ish shape.
    let mut rng = StdRng::seed_from_u64(42);
    let rows: Vec<usize> = (0..10_000)
        .map(|i| (((i * 37) % 97) + ((i * 13) % 41)) % 256)
        .collect();
    let dataset = Dataset::from_rows(domain, rows)?;
    let cumulative = dataset.histogram().cumulative();

    // Release under both policies at the same ε and compare range-query
    // error on "how many people earn between $20k and $40k?".
    let epsilon = Epsilon::new(0.5)?;
    let (lo, hi) = (40, 80);
    let exact = dataset.histogram().range_count(lo, hi)?;
    println!("\nexact count in [{lo}, {hi}]: {exact}");

    for policy in [&dp_policy, &blowfish_policy] {
        let mechanism = OrderedMechanism::for_policy(policy, epsilon);
        // Average absolute error over repeated releases.
        let trials = 200;
        let mut abs_err = 0.0;
        for _ in 0..trials {
            let release = mechanism.release(&cumulative, &mut rng)?;
            abs_err += (release.range(lo, hi) - exact).abs();
        }
        println!(
            "{:<22} mean |error| = {:.2}  (noise scale {})",
            policy.label(),
            abs_err / trials as f64,
            mechanism.scale()
        );
    }

    // Quantiles from the noisy CDF — another Section 7 application.
    let mechanism = OrderedMechanism::for_policy(&blowfish_policy, epsilon);
    let release = mechanism.release(&cumulative, &mut rng)?;
    let n = dataset.len() as f64;
    println!(
        "\nnoisy quartiles (bin index): q25={} q50={} q75={}",
        release.quantile(0.25, n),
        release.quantile(0.5, n),
        release.quantile(0.75, n)
    );
    Ok(())
}
