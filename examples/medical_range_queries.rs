//! Range queries over a sparse ordinal attribute — the Section 7
//! scenario, cast as a medical-billing analysis.
//!
//! A hospital publishes statistics over patient out-of-pocket costs
//! (ordinal domain of 4,357 dollar values, extremely sparse — the
//! adult-capital-loss-like generator). Analysts ask range queries
//! ("how many patients paid between $1,500 and $2,000?"). We compare:
//!
//! * the hierarchical mechanism (differential privacy baseline),
//! * the Ordered Hierarchical Mechanism at several θ, and
//! * the pure Ordered Mechanism (θ = 1, with constrained inference).
//!
//! Run with `cargo run --release --example medical_range_queries`.

use blowfish::data::adult::adult_capital_loss_like_sized;
use blowfish::data::seeded_rng;
use blowfish::mechanisms::range_workload::{evaluate_range_mse, random_ranges};
use blowfish::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = seeded_rng(99);
    let dataset = adult_capital_loss_like_sized(48_842, &mut rng);
    let histogram = dataset.histogram();
    let size = histogram.len();
    println!(
        "domain size {size}, {} rows, {} distinct values (p = {} distinct cumulative counts)",
        dataset.len(),
        histogram.support_size(),
        histogram.cumulative().distinct_count()
    );

    let epsilon = Epsilon::new(0.5)?;
    let workload = random_ranges(size, 2_000, &mut rng);
    let trials = 10;

    println!("\n{:<28} {:>16}", "mechanism", "range MSE");
    for theta in [size, 500, 50, 1] {
        let mech = OrderedHierarchicalMechanism::new(epsilon, theta, 16);
        let mut mse = 0.0;
        for _ in 0..trials {
            let release = mech.release(histogram.counts(), &mut rng);
            mse += evaluate_range_mse(&release, histogram.counts(), &workload);
        }
        let label = if theta == size {
            "hierarchical (DP)".to_string()
        } else {
            format!("ordered-hierarchical θ={theta}")
        };
        println!("{label:<28} {:>16.2}", mse / trials as f64);
    }

    // The pure ordered mechanism with isotonic boosting — strongest on
    // sparse data under the line-graph policy.
    let policy = Policy::distance_threshold(Domain::line(size)?, 1);
    let ordered = OrderedMechanism::for_policy(&policy, epsilon).with_nonnegativity();
    let cumulative = histogram.cumulative();
    let mut mse = 0.0;
    for _ in 0..trials {
        let release = ordered.release(&cumulative, &mut rng)?;
        mse += evaluate_range_mse(&release, histogram.counts(), &workload);
    }
    println!(
        "{:<28} {:>16.2}",
        "ordered + inference (θ=1)",
        mse / trials as f64
    );
    println!(
        "\nTheorem 7.1 bound at θ=1 (before inference): {:.2}",
        4.0 / (epsilon.value() * epsilon.value())
    );
    Ok(())
}
