//! Async serving: the front-end end-to-end.
//!
//! Eight epidemiology teams hit one Blowfish server with the *same*
//! monthly length-of-stay dashboard queries at the same time. The
//! server's coalescing window folds the identical `(policy, data, ε,
//! range)` requests from different sessions together, and since the
//! twelve monthly ranges also share `(policy, data, ε)`, the dispatcher
//! folds THEM into shared Ordered releases (serve_batch's grouping,
//! applied cross-analyst) — a handful of releases answer ~a hundred
//! requests, every team pays ε once per release it was answered from on
//! its own ledger, and the deficit-round-robin scheduler keeps any one
//! team from starving the rest.
//!
//! 1. build the engine (policy + dataset) and one session per team,
//! 2. start the server with a background driver thread,
//! 3. spawn one async task per team on the vendored executor; each task
//!    submits its dashboard and awaits the tickets,
//! 4. read the coalescing amplification off the server stats.
//!
//! Run with `cargo run --release --example async_serving`.

use blowfish::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Engine: one policy, one dataset, eight sessions ───────────────
    let domain = Domain::line(365)?;
    let engine = Arc::new(Engine::with_seed(2014));
    engine.register_policy("los", Policy::distance_threshold(domain.clone(), 14))?;
    let rows: Vec<usize> = (0..50_000)
        .map(|i| (((i * 37) % 97) * ((i * 13) % 11)) % 365)
        .collect();
    engine.register_dataset("admissions", Dataset::from_rows(domain, rows)?)?;

    let teams: Vec<String> = (1..=8).map(|i| format!("team-{i}")).collect();
    for team in &teams {
        engine.open_session(team, Epsilon::new(2.0)?)?;
    }

    // ── Server: fair scheduling + a 2-tick coalescing window ──────────
    let server = Arc::new(Server::new(
        Arc::clone(&engine),
        ServerConfig {
            coalesce_window: 2,
            ..ServerConfig::default()
        },
    ));
    let driver = server.start_driver(Duration::from_millis(1));

    // ── Clients: one async task per team on the vendored executor ─────
    let executor = Executor::new(4);
    let eps = Epsilon::new(0.1)?;
    let handles: Vec<_> = teams
        .iter()
        .map(|team| {
            let server = Arc::clone(&server);
            let team = team.clone();
            executor.spawn(async move {
                // The shared dashboard: every team asks for the same 12
                // monthly counts — prime coalescing fodder.
                let tickets: Vec<Ticket> = (0..12)
                    .map(|m| {
                        server
                            .submit(
                                &team,
                                Request::range("los", "admissions", eps, m * 30, m * 30 + 29),
                            )
                            .expect("submission accepted")
                    })
                    .collect();
                let mut monthly = Vec::with_capacity(12);
                for t in tickets {
                    monthly.push(t.await.expect("answered").scalar().unwrap());
                }
                (team, monthly)
            })
        })
        .collect();

    let mut results: Vec<(String, Vec<f64>)> = handles
        .into_iter()
        .map(|h| h.join().expect("task completed"))
        .collect();
    results.sort_by(|a, b| a.0.cmp(&b.0));
    driver.stop();

    for (team, monthly) in &results {
        let total: f64 = monthly.iter().sum();
        println!(
            "{team}: 12 monthly counts (total ≈ {total:.0}, first quarter {:.0?})",
            &monthly[..3]
        );
    }

    // Identical queries got identical (shared-release) answers…
    let first = &results[0].1;
    assert!(
        results.iter().all(|(_, m)| m == first),
        "identical coalesced queries must share answers"
    );
    // …but every team paid from its own ledger: ε per shared release it
    // was answered from — at most one charge per request, usually far
    // fewer (the 12 same-ε monthly ranges ride shared Ordered releases).
    for team in &teams {
        let snap = engine.session_snapshot(team)?;
        assert!(
            snap.spent() <= 1.2 + 1e-9 && snap.spent() >= 0.1 - 1e-12,
            "between one charge total and one per request, got {}",
            snap.spent()
        );
        assert!(
            (snap.spent() - snap.served() as f64 * 0.1).abs() < 1e-9,
            "every charge is exactly ε=0.1"
        );
        println!(
            "{team}: spent ε={:.1} of 2.0 across {} shared releases",
            snap.spent(),
            snap.served()
        );
    }

    // ── The amplification: releases ≪ requests ────────────────────────
    let stats = server.stats();
    println!(
        "server: {} requests answered from {} mechanism releases \
         ({:.1}× coalescing amplification, {} ticks)",
        stats.answered,
        stats.releases,
        stats.amplification(),
        stats.ticks
    );
    assert_eq!(stats.answered, 96);
    assert!(
        stats.releases < stats.answered,
        "coalescing must perform fewer releases than requests"
    );
    Ok(())
}
