//! End-to-end tests of the async serving front-end: deterministic
//! cross-analyst coalescing, fairness under a flooding analyst, a
//! multi-thread scheduler stress, and a property test pinning coalesced
//! answers to sequential `Engine::serve` answers.

use blowfish::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn engine_with(seed: u64, size: usize, theta: u64) -> Arc<Engine> {
    let engine = Engine::with_seed(seed);
    let domain = Domain::line(size).unwrap();
    engine
        .register_policy("pol", Policy::distance_threshold(domain.clone(), theta))
        .unwrap();
    let rows: Vec<usize> = (0..size * 5).map(|i| (i * 11) % size).collect();
    engine
        .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    Arc::new(engine)
}

/// N waiters from N different sessions, one release, N independent ε
/// charges — and the whole run is deterministic: same seed + same
/// submission order ⇒ byte-identical answers.
#[test]
fn same_seed_coalescing_is_deterministic() {
    let run = || -> (Vec<u64>, ServerStats) {
        let engine = engine_with(42, 128, 3);
        let n = 6;
        for i in 0..n {
            engine
                .open_session(format!("analyst-{i}"), eps(2.0))
                .unwrap();
        }
        let server = Server::with_defaults(Arc::clone(&engine));
        let tickets: Vec<Ticket> = (0..n)
            .map(|i| {
                server
                    .submit(
                        &format!("analyst-{i}"),
                        Request::range("pol", "ds", eps(0.25), 16, 63),
                    )
                    .unwrap()
            })
            .collect();
        server.pump_until_idle();
        let bits: Vec<u64> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().scalar().unwrap().to_bits())
            .collect();
        // N independent ε charges, one per answered waiter.
        for i in 0..n {
            let snap = engine.session_snapshot(&format!("analyst-{i}")).unwrap();
            assert!((snap.spent() - 0.25).abs() < 1e-12);
            assert_eq!(snap.ledger().len(), 1);
        }
        (bits, server.stats())
    };
    let (bits_a, stats_a) = run();
    let (bits_b, stats_b) = run();
    assert_eq!(bits_a, bits_b, "same-seed runs must be byte-identical");
    // All six answers share one release's noise.
    assert!(bits_a.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(stats_a.releases, 1);
    assert_eq!(stats_a.answered, 6);
    assert_eq!(stats_a, stats_b);
}

/// A flooding analyst cannot starve a light one: the light analyst's
/// requests all resolve while the flooder still has a backlog.
#[test]
fn fairness_under_a_flooding_analyst() {
    let engine = engine_with(7, 256, 2);
    engine.open_session("flooder", eps(1e9)).unwrap();
    engine.open_session("light", eps(1e9)).unwrap();
    let server = Server::new(
        Arc::clone(&engine),
        ServerConfig {
            queue_capacity: 4096,
            quantum: 4,
            coalesce_window: 0,
            admission_control: true,
            ..ServerConfig::default()
        },
    );
    // 400 distinct flooder requests, then 12 light ones behind them.
    let flood: Vec<Ticket> = (0..400)
        .map(|i| {
            server
                .submit(
                    "flooder",
                    Request::range("pol", "ds", eps(1e-6), i % 200, i % 200 + 19),
                )
                .unwrap()
        })
        .collect();
    let light: Vec<Ticket> = (0..12)
        .map(|i| {
            server
                .submit(
                    "light",
                    Request::range("pol", "ds", eps(1e-6), i * 3, i * 3 + 50),
                )
                .unwrap()
        })
        .collect();
    // 3 ticks × quantum 4 drain 12 requests per analyst.
    for _ in 0..3 {
        server.tick();
    }
    assert!(
        light.iter().all(|t| t.try_take().is_some()),
        "light analyst fully served in 3 ticks"
    );
    let flood_done = flood.iter().filter(|t| t.try_take().is_some()).count();
    assert_eq!(flood_done, 12, "flooder got exactly its fair share so far");
    server.pump_until_idle();
    assert!(flood.iter().all(|t| t.try_take().is_some()));
}

/// Many threads submitting concurrently while a background driver ticks:
/// every ticket resolves, the books balance, and each analyst's ledger
/// was charged exactly once per answered request.
#[test]
fn multi_thread_scheduler_stress() {
    let engine = engine_with(99, 64, 2);
    let threads = 8;
    let per_thread = 40;
    for t in 0..threads {
        engine.open_session(format!("t{t}"), eps(1e6)).unwrap();
    }
    let server = Arc::new(Server::new(
        Arc::clone(&engine),
        ServerConfig {
            queue_capacity: 4096,
            quantum: 8,
            coalesce_window: 1,
            admission_control: true,
            ..ServerConfig::default()
        },
    ));
    let driver = server.start_driver(std::time::Duration::from_micros(200));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let analyst = format!("t{t}");
                let mut answered = 0u64;
                for i in 0..per_thread {
                    // A mix of coalescible (same range) and unique work.
                    let req = if i % 2 == 0 {
                        Request::range("pol", "ds", eps(0.001), 10, 40)
                    } else {
                        Request::range(
                            "pol",
                            "ds",
                            eps(0.001),
                            (t * 5 + i) % 32,
                            (t * 5 + i) % 32 + 8,
                        )
                    };
                    let ticket = server.submit(&analyst, req).unwrap();
                    if ticket.wait().is_ok() {
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();
    let answered: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    driver.stop();
    assert_eq!(answered, (threads * per_thread) as u64);
    let stats = server.stats();
    assert_eq!(stats.submitted, answered);
    assert_eq!(stats.answered, answered);
    assert_eq!(stats.failed, 0);
    // The shared even-iteration range coalesces across threads, so the
    // engine released strictly fewer times than it answered.
    assert!(
        stats.releases < stats.answered,
        "coalescing must amplify: {} releases for {} answers",
        stats.releases,
        stats.answered
    );
    for t in 0..threads {
        let snap = engine.session_snapshot(&format!("t{t}")).unwrap();
        assert_eq!(snap.served(), per_thread as u64, "one charge per answer");
        assert!((snap.spent() - per_thread as f64 * 0.001).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coalesced serving is pinned to sequential serving: on same-seed
    /// engines, the answer a waiter gets from a coalesced group equals
    /// the answer `Engine::serve` gives the same first request.
    #[test]
    fn coalesced_answers_match_sequential_serve(
        seed in 0u64..500,
        size_pow in 4u32..8,
        theta in 1u64..5,
        lo_frac in 0usize..50,
        width in 1usize..40,
        waiters in 1usize..6,
    ) {
        let size = 1usize << size_pow;
        let lo = (lo_frac * size / 100).min(size - 1);
        let hi = (lo + width).min(size - 1);
        let request = Request::range("pol", "ds", eps(0.5), lo, hi);

        // Sequential reference: one analyst, plain serve.
        let sequential = {
            let engine = engine_with(seed, size, theta);
            engine.open_session("a0", eps(1.0)).unwrap();
            engine.serve("a0", &request).unwrap().scalar().unwrap()
        };

        // Coalesced: N analysts through the server, same seed.
        let engine = engine_with(seed, size, theta);
        for i in 0..waiters {
            engine.open_session(format!("a{i}"), eps(1.0)).unwrap();
        }
        let server = Server::with_defaults(Arc::clone(&engine));
        let tickets: Vec<Ticket> = (0..waiters)
            .map(|i| server.submit(&format!("a{i}"), request.clone()).unwrap())
            .collect();
        server.pump_until_idle();
        for t in tickets {
            let coalesced = t.wait().unwrap().scalar().unwrap();
            prop_assert_eq!(
                coalesced.to_bits(),
                sequential.to_bits(),
                "coalesced answer diverged from sequential serve"
            );
        }
        prop_assert_eq!(server.stats().releases, 1);
    }
}
