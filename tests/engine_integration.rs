//! Integration tests for the serving engine: budget isolation across
//! analysts, batch semantics, and cache behavior through the public
//! facade.

use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn build_engine(size: usize, theta: u64, seed: u64) -> Engine {
    let engine = Engine::with_seed(seed);
    let domain = Domain::line(size).unwrap();
    engine
        .register_policy("pol", Policy::distance_threshold(domain.clone(), theta))
        .unwrap();
    let rows: Vec<usize> = (0..20 * size).map(|i| (i * 11) % size).collect();
    engine
        .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    engine
}

/// Two analysts drain separate budgets with randomized request streams;
/// neither ledger ever exceeds its total, refusals leave ledgers
/// untouched, and one analyst's spending never appears in the other's
/// ledger.
#[test]
fn two_analysts_never_exceed_their_epsilon_totals() {
    let engine = build_engine(64, 3, 99);
    let totals = [("alice", 1.0f64), ("bob", 0.35f64)];
    for (name, total) in totals {
        engine.open_session(name, eps(total)).unwrap();
    }

    let mut rng = StdRng::seed_from_u64(7);
    let mut refused = [0u32; 2];
    for step in 0..200 {
        let (who, idx) = if step % 2 == 0 {
            ("alice", 0)
        } else {
            ("bob", 1)
        };
        let e = eps(rng.random_range(0.01..0.08));
        let request = match rng.random_range(0..4u32) {
            0 => Request::histogram("pol", "ds", e),
            1 => Request::cumulative_histogram("pol", "ds", e),
            2 => {
                let lo = rng.random_range(0..32usize);
                Request::range("pol", "ds", e, lo, lo + rng.random_range(0..32usize))
            }
            _ => {
                let w: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64).collect();
                Request::linear("pol", "ds", e, w)
            }
        };
        match engine.serve(who, &request) {
            Ok(_) => {}
            Err(EngineError::BudgetRefused { analyst, .. }) => {
                assert_eq!(analyst, who);
                refused[idx] += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }

        // Invariant after every step: spent ≤ total (+fp dust) for BOTH.
        for (name, total) in totals {
            let snap = engine.session_snapshot(name).unwrap();
            assert!(
                snap.spent() <= total + 1e-9,
                "{name} exceeded budget: {} > {total}",
                snap.spent()
            );
            let ledger_sum: f64 = snap.ledger().iter().map(|(_, e)| e).sum();
            assert!((ledger_sum - snap.spent()).abs() < 1e-9);
        }
    }

    // With 100 requests each at ε ≥ 0.01 against totals of 1.0 and 0.35,
    // both analysts must eventually have been refused.
    assert!(refused[0] > 0, "alice was never refused");
    assert!(refused[1] > 0, "bob was never refused");
    // And bob's small budget refused more often than alice's.
    assert!(refused[1] > refused[0]);
}

/// The batch path spends once per group and matches the corresponding
/// single-range semantics (finite noisy counts near the truth).
#[test]
fn batched_ranges_spend_once_and_answer_all() {
    let engine = build_engine(256, 2, 5);
    engine.open_session("carol", eps(1.0)).unwrap();
    let e = eps(0.8);
    let requests: Vec<Request> = (0..16)
        .map(|i| Request::range("pol", "ds", e, i * 16, i * 16 + 15))
        .collect();
    let answers = engine.serve_batch("carol", &requests);
    let dataset = engine.dataset("ds").unwrap();
    let hist = dataset.histogram();
    for (req, ans) in requests.iter().zip(&answers) {
        let noisy = ans.as_ref().unwrap().scalar().unwrap();
        assert!(noisy.is_finite());
        if let RequestKind::Range { lo, hi } = req.kind {
            let truth = hist.range_count(lo, hi).unwrap();
            // θ/ε noise on two prefixes: far inside ±200 with overwhelming
            // probability at these scales.
            assert!((noisy - truth).abs() < 200.0, "{noisy} vs {truth}");
        }
    }
    let snap = engine.session_snapshot("carol").unwrap();
    assert!((snap.spent() - 0.8).abs() < 1e-12, "batch must spend once");
}

/// Serving through the facade fills the shared cache: a new analyst
/// asking an already-served class is a pure cache hit.
#[test]
fn cache_is_shared_across_analysts() {
    let engine = build_engine(128, 4, 12);
    engine.open_session("alice", eps(1.0)).unwrap();
    engine.open_session("bob", eps(1.0)).unwrap();
    engine
        .serve("alice", &Request::range("pol", "ds", eps(0.1), 10, 90))
        .unwrap();
    let misses_before = engine.cache_stats().misses;
    engine
        .serve("bob", &Request::range("pol", "ds", eps(0.1), 10, 90))
        .unwrap();
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, misses_before, "bob's request must not miss");
    assert!(stats.hits >= 1);
}
