//! Replicated-serving integration suite: byte-identical replicas,
//! ε-lossless failover under a scripted mid-burst leader kill, and
//! same-seed cluster determinism.
//!
//! The guarantees under test (see `bf-replica`'s crate docs):
//!
//! 1. Every replica that applied index *i* has **byte-identical**
//!    per-analyst ledgers, reply caches and answers at *i* — replication
//!    is deterministic replay, not answer shipping.
//! 2. Killing the leader at an arbitrary log index loses **zero acked
//!    ε**: a promoted follower serves every client-acked charge exactly
//!    once, and retried requests replay their durable answers at zero
//!    additional ε.
//! 3. Two clusters with the same seed and the same submission order
//!    produce byte-identical answers and ledgers — the property that
//!    makes cross-datacenter divergence detectable by digest comparison.

use blowfish::chaos::{ReplicaFault, ReplicaPlan};
use blowfish::prelude::*;
use blowfish::replica::{Replica, ReplicaConfig};
use blowfish::store::scratch_dir;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Identical on every replica, like the seed — the deterministic-replay
/// precondition.
fn setup(engine: &Engine) {
    let domain = Domain::line(48).unwrap();
    engine
        .register_policy("pol", Policy::distance_threshold(domain.clone(), 3))
        .unwrap();
    let rows: Vec<usize> = (0..480).map(|i| (i * 13) % 48).collect();
    engine
        .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
}

fn spawn(tag: &str, seed: u64, quorum: usize, plan: Option<Arc<ReplicaPlan>>) -> Replica {
    Replica::start(
        scratch_dir(tag),
        "127.0.0.1:0",
        "127.0.0.1:0",
        ReplicaConfig {
            seed,
            quorum,
            fault_plan: plan,
            ..ReplicaConfig::default()
        },
        setup,
    )
    .unwrap()
}

fn await_applied(r: &Replica, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while r.status().applied < target {
        assert!(
            Instant::now() < deadline,
            "replica stuck at applied={} waiting for {target}",
            r.status().applied
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The cross-replica comparable ledger signature: `(label, exact ε
/// bits)` in charge order. WAL sequence numbers are local bookkeeping
/// (replication records interleave differently per replica) and are
/// deliberately excluded.
fn ledger_sig(r: &Replica, analyst: &str) -> Vec<(String, u64)> {
    r.engine()
        .ledger_history(analyst)
        .unwrap()
        .iter()
        .map(|e| (e.label.clone(), e.eps_bits))
        .collect()
}

fn call(client: &mut Client, analyst: &str, rid: u64) -> Result<Response, NetError> {
    // Vary the query with the rid so answers are distinguishable.
    let lo = (rid % 16) as usize;
    let request = Request::range("pol", "ds", eps(0.125), lo, lo + 24);
    let id = client.submit_tagged(analyst, &request, Some(rid), None)?;
    client.wait(id)
}

#[test]
fn three_replicas_converge_to_byte_identical_state() {
    let leader = spawn("failover-conv-l", 71, 2, None);
    let f1 = spawn("failover-conv-f1", 71, 2, None);
    let f2 = spawn("failover-conv-f2", 71, 2, None);
    leader.lead();
    let hint = leader.client_addr().to_string();
    f1.follow(leader.peer_addr(), &hint);
    f2.follow(leader.peer_addr(), &hint);

    let mut client = Client::connect(leader.client_addr()).unwrap();
    assert_eq!(client.open_session("alice", 4.0).unwrap(), 4.0);
    let answers: Vec<Response> = (1..=12)
        .map(|rid| call(&mut client, "alice", rid).unwrap())
        .collect();

    // 1 open + 12 submissions; quorum 2 acked every one, now let both
    // followers finish replay.
    await_applied(&leader, 13);
    await_applied(&f1, 13);
    await_applied(&f2, 13);

    let sig = ledger_sig(&leader, "alice");
    assert_eq!(sig.len(), 12);
    assert_eq!(sig, ledger_sig(&f1, "alice"), "f1 ledger diverged");
    assert_eq!(sig, ledger_sig(&f2, "alice"), "f2 ledger diverged");

    // Every replica's durable reply cache holds the exact answer the
    // client saw — same bits, derived independently by local replay.
    for (i, answer) in answers.iter().enumerate() {
        let rid = (i + 1) as u64;
        for r in [&leader, &f1, &f2] {
            assert_eq!(
                r.engine().cached_reply("alice", rid).as_ref(),
                Some(answer),
                "replica answer diverged at rid {rid}"
            );
        }
    }

    // Followers serve reads locally (the scale-out path).
    let mut fc = Client::connect(f2.client_addr()).unwrap();
    let budget = fc.budget("alice").unwrap();
    assert_eq!(budget.served, 12);
    assert_eq!(budget.spent.to_bits(), (12.0 * 0.125f64).to_bits());

    client.goodbye().unwrap();
    f2.shutdown().unwrap();
    f1.shutdown().unwrap();
    leader.shutdown().unwrap();
}

#[test]
fn leader_kill_mid_burst_loses_no_acked_epsilon_and_double_charges_nothing() {
    // The chaos plan kills the leader at its 8th sequenced entry:
    // 1 session open + 6 answered submissions, then the 7th submission
    // hits the fault mid-burst.
    let plan = Arc::new(ReplicaPlan::scripted([(8, ReplicaFault::KillLeader)]));
    let leader = spawn("failover-kill-l", 72, 2, Some(plan));
    let f1 = spawn("failover-kill-f1", 72, 2, None);
    let f2 = spawn("failover-kill-f2", 72, 2, None);
    leader.lead();
    let hint = leader.client_addr().to_string();
    f1.follow(leader.peer_addr(), &hint);
    f2.follow(leader.peer_addr(), &hint);

    let mut client = Client::connect(leader.client_addr()).unwrap();
    client.open_session("alice", 4.0).unwrap();
    let mut acked: Vec<(u64, Response)> = Vec::new();
    let mut burst_error = None;
    for rid in 1..=20 {
        match call(&mut client, "alice", rid) {
            Ok(resp) => acked.push((rid, resp)),
            Err(e) => {
                burst_error = Some(e);
                break;
            }
        }
    }
    assert_eq!(acked.len(), 6, "the scripted kill fires on the 7th query");
    assert!(
        matches!(
            burst_error,
            Some(NetError::Remote(WireError::NotLeader { .. }))
        ),
        "the killed leader must refuse, got {burst_error:?}"
    );
    assert!(leader.status().dead);

    // Operator failover: `promote_over` probes the survivors and only
    // promotes the candidate holding the longest durable log — try one,
    // and its refusal names the peer to promote instead.
    let (promoted, other) = match f1.promote_over(&[f2.peer_addr(), leader.peer_addr()]) {
        Ok(()) => (&f1, &f2),
        Err(e) => {
            assert!(matches!(e, blowfish::replica::ReplicaError::Behind { .. }));
            f2.promote_over(&[f1.peer_addr(), leader.peer_addr()])
                .unwrap();
            (&f2, &f1)
        }
    };
    other.follow(promoted.peer_addr(), &promoted.client_addr().to_string());
    let st = promoted.status();
    assert!(st.leader);
    assert_eq!(st.epoch, 1, "promotion fences the old epoch");
    assert_eq!(st.applied, st.commit_index, "promotion finishes replay");

    // The client reconnects (cluster-aware: it only needs *a* member;
    // NotLeader redirects hop to the promoted node) and resubmits the
    // whole burst under the same idempotency keys.
    let mut c2 =
        Client::connect_cluster([other.client_addr(), promoted.client_addr()].as_slice()).unwrap();
    if let Err(e) = c2.open_session("alice", 4.0) {
        // Landed on the follower: it refuses the write with the
        // promoted leader's address, and the client hops there.
        let NetError::Remote(WireError::NotLeader { leader }) = e else {
            panic!("expected NotLeader from the follower, got {e:?}");
        };
        assert_eq!(leader, promoted.client_addr().to_string());
        c2.reconnect_to(promoted.client_addr()).unwrap();
        c2.open_session("alice", 4.0).unwrap();
    }
    for rid in 1..=20u64 {
        let resp = match call(&mut c2, "alice", rid) {
            Ok(resp) => resp,
            Err(NetError::Remote(WireError::NotLeader { .. })) => {
                // First hop landed on the follower: hop to the hinted
                // leader (reattaching the session) and resubmit.
                c2.reconnect_to(promoted.client_addr()).unwrap();
                call(&mut c2, "alice", rid).unwrap()
            }
            Err(e) => panic!("resubmit of rid {rid} failed: {e:?}"),
        };
        if let Some((_, first)) = acked.iter().find(|(r, _)| *r == rid) {
            assert_eq!(
                &resp, first,
                "acked rid {rid} must replay byte-identically after failover"
            );
        }
    }

    // Exactly-once accounting: 20 distinct keys, one 0.125 charge each —
    // replays and the failover added nothing.
    let snap = promoted.engine().session_snapshot("alice").unwrap();
    assert_eq!(snap.spent().to_bits(), (20.0 * 0.125f64).to_bits());
    let sig = ledger_sig(promoted, "alice");
    assert_eq!(sig.len(), 20, "each key charged exactly once");

    // The re-following peer converges to the promoted leader's state.
    await_applied(other, promoted.status().applied);
    assert_eq!(sig, ledger_sig(other, "alice"));

    f2.shutdown().unwrap();
    f1.shutdown().unwrap();
    leader.shutdown().unwrap();
}

#[test]
fn same_seed_clusters_agree_byte_for_byte() {
    let run = |tag: &str| -> (Vec<Response>, Vec<(String, u64)>) {
        let leader = spawn(&format!("{tag}-l"), 99, 2, None);
        let follower = spawn(&format!("{tag}-f"), 99, 2, None);
        leader.lead();
        follower.follow(leader.peer_addr(), &leader.client_addr().to_string());

        let mut client = Client::connect(leader.client_addr()).unwrap();
        client.open_session("alice", 4.0).unwrap();
        client.open_session("bob", 2.0).unwrap();
        let mut answers = Vec::new();
        for rid in 1..=8 {
            answers.push(call(&mut client, "alice", rid).unwrap());
            answers.push(call(&mut client, "bob", 100 + rid).unwrap());
        }
        let mut sig = ledger_sig(&leader, "alice");
        sig.extend(ledger_sig(&leader, "bob"));

        // Both replicas in the cluster agree before we compare across
        // clusters.
        await_applied(&follower, leader.status().applied);
        let mut fsig = ledger_sig(&follower, "alice");
        fsig.extend(ledger_sig(&follower, "bob"));
        assert_eq!(sig, fsig, "intra-cluster divergence in {tag}");

        client.goodbye().unwrap();
        follower.shutdown().unwrap();
        leader.shutdown().unwrap();
        (answers, sig)
    };

    let (answers_a, sig_a) = run("failover-twin-a");
    let (answers_b, sig_b) = run("failover-twin-b");
    assert_eq!(answers_a, answers_b, "same-seed clusters must agree");
    assert_eq!(sig_a, sig_b);
}
