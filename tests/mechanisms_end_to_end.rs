//! End-to-end mechanism behaviour: the qualitative claims of the paper's
//! evaluation, checked statistically with fixed seeds.

use blowfish::data::adult::adult_capital_loss_like_sized;
use blowfish::data::seeded_rng;
use blowfish::data::synthetic::paper_synthetic;
use blowfish::mechanisms::kmeans::{
    init_random, lloyd_kmeans, objective, KmeansSecretSpec, PrivateKmeans,
};
use blowfish::mechanisms::ordered_hierarchical::optimal_split;
use blowfish::mechanisms::range_workload::{evaluate_range_mse, random_ranges};
use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Figure 2(b)'s monotone trend: range-query MSE decreases as θ shrinks
/// on the sparse adult-like attribute.
#[test]
fn range_mse_decreases_with_theta_on_adult() {
    let mut rng = seeded_rng(501);
    let dataset = adult_capital_loss_like_sized(20_000, &mut rng);
    let histogram = dataset.histogram();
    let size = histogram.len();
    let workload = random_ranges(size, 400, &mut rng);
    let eps = Epsilon::new(0.5).unwrap();
    let trials = 6;

    let mut last = f64::INFINITY;
    for theta in [size, 500, 50, 1] {
        let mech = OrderedHierarchicalMechanism::new(eps, theta, 16);
        let mut mse = 0.0;
        for t in 0..trials {
            let mut run_rng = StdRng::seed_from_u64(600 + t);
            let release = mech.release(histogram.counts(), &mut run_rng);
            mse += evaluate_range_mse(&release, histogram.counts(), &workload);
        }
        mse /= trials as f64;
        assert!(
            mse < last * 1.3,
            "theta={theta}: mse {mse} should not regress past {last}"
        );
        last = last.min(mse);
    }
}

/// The ordered mechanism's |T|-independence (Theorem 7.1): MSE at θ=1
/// stays flat as the domain grows 64 → 4096, while the hierarchical
/// baseline grows.
#[test]
fn ordered_error_is_domain_size_independent() {
    let eps = Epsilon::new(0.4).unwrap();
    let trials = 8;
    let mut ordered_mses = Vec::new();
    let mut hierarchical_mses = Vec::new();
    for size in [64usize, 1024] {
        let mut rng = seeded_rng(size as u64);
        let counts: Vec<f64> = (0..size).map(|i| ((i * 31) % 23) as f64).collect();
        let workload = random_ranges(size, 400, &mut rng);
        let om = OrderedHierarchicalMechanism::new(eps, 1, 16);
        let hm = OrderedHierarchicalMechanism::new(eps, size, 16);
        let mut om_mse = 0.0;
        let mut hm_mse = 0.0;
        for _ in 0..trials {
            om_mse += evaluate_range_mse(&om.release(&counts, &mut rng), &counts, &workload);
            hm_mse += evaluate_range_mse(&hm.release(&counts, &mut rng), &counts, &workload);
        }
        ordered_mses.push(om_mse / trials as f64);
        hierarchical_mses.push(hm_mse / trials as f64);
    }
    // Ordered: flat within 2x. Hierarchical: grows by more than 2x.
    assert!(
        ordered_mses[1] < ordered_mses[0] * 2.0,
        "ordered MSE grew with |T|: {ordered_mses:?}"
    );
    assert!(
        hierarchical_mses[1] > hierarchical_mses[0] * 2.0,
        "hierarchical MSE should grow with |T|: {hierarchical_mses:?}"
    );
}

/// The OH mechanism's optimal split (Eq. 15) beats a naive 50/50 split
/// empirically at mid-range θ.
#[test]
fn optimal_split_beats_even_split() {
    let size = 2048usize;
    let theta = 64usize;
    let fanout = 16usize;
    let eps = Epsilon::new(0.5).unwrap();
    let mut rng = seeded_rng(777);
    let counts: Vec<f64> = (0..size).map(|i| ((i * 13) % 7) as f64).collect();
    let workload = random_ranges(size, 400, &mut rng);
    let star = optimal_split(size, theta, fanout);
    assert!(star > 0.0 && star < 1.0);
    let opt = OrderedHierarchicalMechanism::new(eps, theta, fanout);
    let even = OrderedHierarchicalMechanism::new(eps, theta, fanout).with_split(0.5);
    let trials = 12;
    let mut opt_mse = 0.0;
    let mut even_mse = 0.0;
    for t in 0..trials {
        let mut run_rng = StdRng::seed_from_u64(800 + t);
        opt_mse += evaluate_range_mse(&opt.release(&counts, &mut run_rng), &counts, &workload);
        even_mse += evaluate_range_mse(&even.release(&counts, &mut run_rng), &counts, &workload);
    }
    assert!(
        opt_mse < even_mse * 1.1,
        "optimal split {opt_mse} should not lose to even split {even_mse}"
    );
}

/// Figure 1(c)'s qualitative claim on the synthetic dataset: Blowfish
/// with θ = 0.25 clusters much better than the Laplace mechanism at
/// small ε.
#[test]
fn kmeans_blowfish_beats_laplace_on_synthetic() {
    let mut rng = seeded_rng(901);
    let points = paper_synthetic(&mut rng);
    let eps = Epsilon::new(0.2).unwrap();
    let trials = 8;
    let mut lap = 0.0;
    let mut bf = 0.0;
    for t in 0..trials {
        let mut trial_rng = StdRng::seed_from_u64(910 + t);
        let init = init_random(&points, 4, &mut trial_rng);
        let baseline = objective(&points, &lloyd_kmeans(&points, &init, 10));
        let m_lap = PrivateKmeans::new(4, 10, eps, KmeansSecretSpec::Full);
        let m_bf = PrivateKmeans::new(4, 10, eps, KmeansSecretSpec::L1Threshold(0.25));
        lap += objective(&points, &m_lap.run(&points, &init, &mut trial_rng)) / baseline;
        bf += objective(&points, &m_bf.run(&points, &init, &mut trial_rng)) / baseline;
    }
    assert!(
        bf * 1.5 < lap,
        "blowfish ratio {bf} should clearly beat laplace {lap}"
    );
}

/// Histograms over the policy partition are released exactly under `G^P`
/// (Section 5: sensitivity 0).
#[test]
fn partition_histogram_exact_release_end_to_end() {
    use blowfish::core::sensitivity::partition_histogram_sensitivity;
    let domain = Domain::line(12).unwrap();
    let part = Partition::intervals(12, 3);
    let policy = Policy::partitioned(domain.clone(), part.clone());
    assert_eq!(partition_histogram_sensitivity(&policy, &part), 0.0);

    let ds = Dataset::from_rows(domain, (0..60).map(|i| i % 12).collect()).unwrap();
    let eps = Epsilon::new(0.1).unwrap();
    let mech = LaplaceMechanism::new(eps, 0.0).unwrap();
    let mut rng = seeded_rng(1001);
    let coarse = ds.histogram().coarsen(&part).unwrap();
    let released = mech.release(coarse.counts(), &mut rng);
    assert_eq!(released, coarse.counts().to_vec());
}

/// The full pipeline under a budget accountant: sequential spends across
/// two mechanisms stay within the total.
#[test]
fn budgeted_pipeline() {
    let domain = Domain::line(32).unwrap();
    let ds = Dataset::from_rows(domain.clone(), (0..200).map(|i| i % 32).collect()).unwrap();
    let mut acct = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
    let mut rng = seeded_rng(1100);

    // Spend 0.4 on a histogram...
    let e1 = Epsilon::new(0.4).unwrap();
    acct.spend("histogram", e1).unwrap();
    let policy = Policy::distance_threshold(domain.clone(), 2);
    let _h = HistogramMechanism::for_policy(&policy, e1)
        .unwrap()
        .release(&ds, &mut rng);

    // ...and 0.6 on range queries.
    let e2 = Epsilon::new(0.6).unwrap();
    acct.spend("ranges", e2).unwrap();
    let om = OrderedMechanism::for_policy(&policy, e2);
    let _r = om.release(&ds.histogram().cumulative(), &mut rng).unwrap();

    assert!(acct.remaining() < 1e-9);
    assert_eq!(acct.ledger().len(), 2);
}
