//! End-to-end tests of PR 8's observability surface: request-scoped
//! distributed tracing over the wire (client-assigned trace ids, span
//! trees covering every pipeline stage, linked coalesced-release spans)
//! and the ε-provenance audit API (`Client::audit` replaying the WAL's
//! ledger history bit-for-bit, archived segments included).

use blowfish::net::{Client, NetConfig, NetError, NetServer, WireError};
use blowfish::obs::Stage;
use blowfish::prelude::*;
use blowfish::store::StoreConfig;
use std::sync::Arc;
use std::time::Duration;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn build_net(
    seed: u64,
    store: Option<Arc<Store>>,
    server_config: ServerConfig,
    net_config: NetConfig,
) -> NetServer {
    let engine = match store {
        Some(store) => Engine::with_store(seed, store),
        None => Engine::with_seed(seed),
    };
    let domain = Domain::line(64).unwrap();
    engine
        .register_policy("pol", Policy::distance_threshold(domain.clone(), 2))
        .unwrap();
    let rows: Vec<usize> = (0..640).map(|i| (i * 7) % 64).collect();
    engine
        .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    let server = Arc::new(Server::new(Arc::new(engine), server_config));
    NetServer::bind("127.0.0.1:0", server, net_config).unwrap()
}

/// Two analysts submit the identical range request with trace ids; the
/// coalescing window folds them into one release. Both trace trees must
/// cover all seven stages end to end, and their release spans must carry
/// the same link id — amplification readable off either trace alone.
#[test]
fn traced_request_covers_all_seven_stages_with_linked_coalesced_release() {
    let dir = blowfish::store::scratch_dir("trace-seven-stages");
    let store = Arc::new(Store::open(&dir).unwrap());
    let net = build_net(
        51,
        Some(store),
        ServerConfig {
            coalesce_window: 8,
            ..ServerConfig::default()
        },
        NetConfig {
            tick_interval: Duration::from_millis(10),
            ..NetConfig::default()
        },
    );
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.open_session("ann", 4.0).unwrap();
    client.open_session("bee", 4.0).unwrap();
    // Identical requests within one window: one shared release.
    let req = Request::range("pol", "ds", eps(0.5), 8, 40);
    let a = client
        .submit_traced("ann", &req, None, None, Some(0xA11CE))
        .unwrap();
    let b = client
        .submit_traced("bee", &req, None, None, Some(0xB0B))
        .unwrap();
    assert!(client.wait(a).unwrap().scalar().is_some());
    assert!(client.wait(b).unwrap().scalar().is_some());

    let traces = client.traces().unwrap();
    let find = |id: u64| {
        traces
            .iter()
            .find(|t| t.id.0 == id)
            .unwrap_or_else(|| panic!("trace {id:#x} not retained in {traces:?}"))
    };
    let ann = find(0xA11CE);
    let bee = find(0xB0B);
    assert_eq!(ann.analyst, "ann");
    assert_eq!(bee.analyst, "bee");
    for tree in [ann, bee] {
        assert_eq!(tree.outcome, "ok");
        assert!(
            tree.covers(&Stage::ALL),
            "trace {} must cover all seven stages: {:?}",
            tree.id,
            tree.spans
        );
        assert!(tree.total_ns > 0);
    }
    // The shared release is linked across both waiters' traces.
    let link_of = |tree: &blowfish::obs::TraceTree| {
        tree.spans
            .iter()
            .find(|s| s.stage == Stage::Release)
            .and_then(|s| s.link)
    };
    let la = link_of(ann);
    let lb = link_of(bee);
    assert!(la.is_some(), "coalesced release span must carry a link id");
    assert_eq!(la, lb, "both waiters must share the release's link id");
    // Exactly one release backed both answers.
    assert_eq!(net.server().stats().releases, 1);
    net.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// An untraced request produces no tree; a refused traced request
/// finishes with a non-"ok" outcome and echoes the trace id on the
/// refusal frame.
#[test]
fn refused_traced_request_lands_with_refusal_outcome() {
    let net = build_net(52, None, ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.open_session("tiny", 0.25).unwrap();
    // Untraced baseline: no tree appears for it.
    client
        .call("tiny", &Request::range("pol", "ds", eps(0.1), 0, 10))
        .unwrap();
    // Over budget: admission control refuses after the trace began.
    let id = client
        .submit_traced(
            "tiny",
            &Request::range("pol", "ds", eps(5.0), 0, 10),
            None,
            None,
            Some(77),
        )
        .unwrap();
    assert!(client.wait(id).is_err());
    let traces = client.traces().unwrap();
    let refused = traces.iter().find(|t| t.id.0 == 77).unwrap();
    assert_ne!(refused.outcome, "ok");
    assert_eq!(traces.len(), 1, "the untraced call must leave no tree");
    net.shutdown().unwrap();
}

/// `Client::audit` must replay the analyst's WAL ledger history
/// bit-for-bit — agreeing with the store's own scan, surviving
/// compaction into `archive/`, and agreeing again after a fresh
/// process recovers from disk.
#[test]
fn audit_over_the_wire_matches_recovered_ledger_bit_for_bit() {
    let dir = blowfish::store::scratch_dir("trace-audit-ledger");
    let config = StoreConfig {
        archive_replayed_segments: true,
        ..StoreConfig::default()
    };
    let wire_entries = {
        let store = Arc::new(Store::open_with(&dir, config.clone()).unwrap());
        let net = build_net(
            53,
            Some(Arc::clone(&store)),
            ServerConfig::default(),
            NetConfig::default(),
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("aud", 4.0).unwrap();
        for i in 0..3 {
            client
                .call("aud", &Request::range("pol", "ds", eps(0.25), i, i + 20))
                .unwrap();
        }
        // Compact mid-history: the charges above move to archive/, and
        // the audit must keep seeing them.
        store.compact().unwrap();
        // Tagged requests additionally write Replied records.
        let id = client
            .submit_tagged(
                "aud",
                &Request::range("pol", "ds", eps(0.25), 30, 50),
                Some(9),
                None,
            )
            .unwrap();
        client.wait(id).unwrap();
        let entries = client.audit("aud").unwrap();
        // The wire report agrees with the engine's own scan exactly.
        let direct = net.server().engine().ledger_history("aud").unwrap();
        assert_eq!(entries, direct);
        client.goodbye().unwrap();
        net.shutdown().unwrap();
        entries
    };
    assert!(
        wire_entries.len() >= 4,
        "3 charges + 1 tagged charge at minimum, got {wire_entries:?}"
    );
    assert!(
        wire_entries.windows(2).all(|w| w[0].seq < w[1].seq),
        "seq must be strictly increasing in WAL order"
    );
    // Every charge in this workload was for ε = 0.25 (the replay-carry
    // convention books 0 ε on records that ride a coalesced charge).
    assert!(wire_entries
        .iter()
        .all(|e| e.epsilon() == 0.0 || (e.epsilon() - 0.25).abs() < 1e-12));
    // Each entry's fingerprint is recomputable from its label alone.
    assert!(wire_entries
        .iter()
        .all(|e| e.fingerprint == blowfish::store::fnv1a(e.label.as_bytes())));
    // A brand-new process scanning the same directory reproduces the
    // identical entries — the audit is a property of the bytes on disk.
    let fresh = Store::open_with(&dir, config).unwrap();
    assert_eq!(fresh.ledger_history("aud").unwrap(), wire_entries);
    drop(fresh);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Per-record provenance is gated: a connection that never attached the
/// analyst's session is refused `BudgetAudit` (aggregate frames stay
/// open to every client — the documented trusted-curator model), and
/// reattaching with the session's original ε total unlocks it.
#[test]
fn audit_requires_an_attached_session_on_the_connection() {
    let dir = blowfish::store::scratch_dir("trace-audit-gate");
    let store = Arc::new(Store::open(&dir).unwrap());
    let net = build_net(
        55,
        Some(store),
        ServerConfig::default(),
        NetConfig::default(),
    );
    let mut owner = Client::connect(net.local_addr()).unwrap();
    owner.open_session("aud", 4.0).unwrap();
    owner
        .call("aud", &Request::range("pol", "ds", eps(0.25), 0, 20))
        .unwrap();

    let mut stranger = Client::connect(net.local_addr()).unwrap();
    let err = stranger.audit("aud").unwrap_err();
    assert!(
        matches!(err, NetError::Remote(WireError::InvalidRequest(_))),
        "unattached connection must be refused, got {err:?}"
    );
    // The aggregate snapshot is still open to any client.
    assert!(stranger.budget("aud").is_ok());
    // Reattaching needs the session's original ε total — that is the
    // capability the gate checks — and then the audit serves.
    stranger.open_session("aud", 4.0).unwrap();
    assert_eq!(stranger.audit("aud").unwrap(), owner.audit("aud").unwrap());
    net.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Tracing is a pure side channel: the same seed and the same request
/// stream produce byte-identical answers whether every request is
/// traced or the whole observability layer is disabled.
#[test]
fn same_seed_answers_identical_tracing_on_and_off() {
    let run = |traced: bool| -> Vec<u64> {
        let net = build_net(54, None, ServerConfig::default(), NetConfig::default());
        if !traced {
            net.server().engine().obs().set_enabled(false);
        }
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("d", 10.0).unwrap();
        let answers = (0..8u64)
            .map(|i| {
                let trace_id = traced.then_some(1000 + i);
                let id = client
                    .submit_traced(
                        "d",
                        &Request::range("pol", "ds", eps(0.25), i as usize, i as usize + 16),
                        None,
                        None,
                        trace_id,
                    )
                    .unwrap();
                client.wait(id).unwrap().scalar().unwrap().to_bits()
            })
            .collect();
        if traced {
            let traces = client.traces().unwrap();
            assert!(!traces.is_empty(), "traced run must retain trees");
        }
        net.shutdown().unwrap();
        answers
    };
    assert_eq!(run(true), run(false));
}
