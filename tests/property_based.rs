//! Property-based tests (proptest) on the core data structures and
//! invariants.

use blowfish::core::sensitivity::brute_force_sensitivity;
use blowfish::mechanisms::hierarchical::IntervalTree;
use blowfish::mechanisms::isotonic::{isotonic_regression, isotonic_regression_weighted};
use blowfish::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Domain encode/decode is a bijection on valid tuples.
    #[test]
    fn domain_codec_round_trip(cards in proptest::collection::vec(1usize..6, 1..4)) {
        let domain = Domain::from_cardinalities(&cards).unwrap();
        for idx in domain.indices() {
            let vals = domain.decode(idx).unwrap();
            prop_assert_eq!(domain.encode(&vals).unwrap(), idx);
            for (a, &v) in vals.iter().enumerate() {
                prop_assert_eq!(domain.attribute_value(idx, a), v);
            }
        }
    }

    /// Cumulative histogram and differencing are inverse operations, and
    /// range counts agree between the two representations.
    #[test]
    fn cumulative_round_trip(counts in proptest::collection::vec(0u32..50, 1..40)) {
        let h = Histogram::from_counts(counts.iter().map(|&c| c as f64).collect());
        let cum = h.cumulative();
        prop_assert_eq!(cum.to_histogram(), h.clone());
        prop_assert!(cum.is_sorted());
        let n = h.len();
        for lo in 0..n.min(6) {
            for hi in lo..n {
                prop_assert_eq!(
                    h.range_count(lo, hi).unwrap(),
                    cum.range_count(lo, hi).unwrap()
                );
            }
        }
    }

    /// Isotonic regression returns a sorted sequence, preserves the sum,
    /// and never does worse (L2) than the best constant sequence.
    #[test]
    fn isotonic_invariants(values in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let z = isotonic_regression(&values);
        prop_assert_eq!(z.len(), values.len());
        prop_assert!(z.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        let sum_in: f64 = values.iter().sum();
        let sum_out: f64 = z.iter().sum();
        prop_assert!((sum_in - sum_out).abs() < 1e-6);
        // Optimality vs the constant-mean competitor (always monotone).
        let mean = sum_in / values.len() as f64;
        let cost_z: f64 = z.iter().zip(&values).map(|(a, b)| (a - b) * (a - b)).sum();
        let cost_mean: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
        prop_assert!(cost_z <= cost_mean + 1e-6);
    }

    /// Weighted isotonic regression with uniform weights equals the
    /// unweighted projection.
    #[test]
    fn weighted_isotonic_uniform_matches(values in proptest::collection::vec(-50.0f64..50.0, 1..30)) {
        let w = vec![2.5; values.len()];
        let a = isotonic_regression(&values);
        let b = isotonic_regression_weighted(&values, Some(&w));
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    /// Interval-tree range decomposition exactly covers the requested
    /// range (sums match brute-force sums) for arbitrary fanouts/sizes.
    #[test]
    fn interval_tree_decomposition_exact(
        size in 1usize..80,
        fanout in 2usize..8,
        seed in 0u64..1000,
    ) {
        let tree = IntervalTree::build(size, fanout);
        let counts: Vec<f64> = (0..size).map(|i| ((i as u64 * seed) % 17) as f64).collect();
        let node_counts = tree.exact_counts(&counts);
        let lo = (seed as usize * 7) % size;
        let hi = lo + ((seed as usize * 13) % (size - lo));
        let expect: f64 = counts[lo..=hi].iter().sum();
        let got: f64 = tree.decompose(lo, hi).into_iter().map(|id| node_counts[id]).sum();
        prop_assert!((expect - got).abs() < 1e-9);
    }

    /// Secret-graph closed-form distances always match BFS on the
    /// materialized graph for random small domains.
    #[test]
    fn secret_graph_distances_match_bfs(
        c1 in 2usize..5,
        c2 in 2usize..5,
        theta in 1u64..5,
    ) {
        let domain = Domain::from_cardinalities(&[c1, c2]).unwrap();
        for graph in [
            SecretGraph::Full,
            SecretGraph::Attribute,
            SecretGraph::L1Threshold { theta },
        ] {
            let explicit = graph.materialize(&domain);
            for x in domain.indices() {
                for y in domain.indices() {
                    prop_assert_eq!(
                        graph.distance(&domain, x, y),
                        explicit.distance(x, y),
                        "{} ({}, {})", graph.label(), x, y
                    );
                }
            }
        }
    }

    /// Policy-specific sensitivity never exceeds the differential-privacy
    /// (complete graph) sensitivity — Lemma 5.2's utility direction — for
    /// random queries.
    #[test]
    fn policy_sensitivity_never_exceeds_dp(
        weights in proptest::collection::vec(-10.0f64..10.0, 4),
        theta in 1u64..4,
    ) {
        let domain = Domain::line(4).unwrap();
        let dp = Policy::differential_privacy(domain.clone());
        let bf = Policy::distance_threshold(domain, theta);
        let w = weights.clone();
        let q = move |d: &Dataset| vec![d.rows().iter().map(|&r| w[r]).sum::<f64>()];
        let s_dp = brute_force_sensitivity(&dp, 2, &q, 1e6).unwrap();
        let s_bf = brute_force_sensitivity(&bf, 2, &q, 1e6).unwrap();
        prop_assert!(s_bf <= s_dp + 1e-9);
    }

    /// Partitions built from intervals always refine correctly and block
    /// ids stay dense.
    #[test]
    fn interval_partitions_valid(size in 1usize..60, width in 1usize..20) {
        let p = Partition::intervals(size, width);
        prop_assert_eq!(p.domain_size(), size);
        let sizes = p.block_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), size);
        prop_assert!(sizes.iter().all(|&s| s >= 1 && s <= width));
        // Coarser always refines finer singletons.
        prop_assert!(p.refines(&Partition::singletons(size)));
    }

    /// Laplace release of an all-zero vector has empirical mean near zero
    /// (unbiasedness smoke test, small n for speed).
    #[test]
    fn laplace_unbiased_smoke(seed in 0u64..50) {
        use rand::SeedableRng;
        let mech = LaplaceMechanism::new(Epsilon::new(1.0).unwrap(), 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let out = mech.release(&vec![0.0; 2000], &mut rng);
        let mean = out.iter().sum::<f64>() / out.len() as f64;
        prop_assert!(mean.abs() < 0.25, "mean {}", mean);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sensitivities served from the engine's cache always equal freshly
    /// computed closed forms, for random policies and query classes —
    /// both on the first (miss) and second (hit) lookup.
    #[test]
    fn cached_sensitivities_match_fresh(
        size in 2usize..40,
        theta in 1u64..8,
        family in 0u32..3,
        lo_frac in 0.0f64..1.0,
        width_frac in 0.0f64..1.0,
        weights in proptest::collection::vec(-20.0f64..20.0, 40),
    ) {
        use blowfish::engine::SensitivityCache;
        let domain = Domain::line(size).unwrap();
        let policy = match family {
            0 => Policy::differential_privacy(domain),
            1 => Policy::distance_threshold(domain, theta),
            _ => {
                let width = (theta as usize).clamp(1, size);
                Policy::partitioned(domain, Partition::intervals(size, width))
            }
        };
        let lo = ((size - 1) as f64 * lo_frac) as usize;
        let hi = (lo + (((size - 1 - lo) as f64) * width_frac) as usize).min(size - 1);
        let classes = [
            QueryClass::Histogram,
            QueryClass::CumulativeHistogram,
            QueryClass::Range { lo, hi },
            QueryClass::Linear { weights: weights[..size].to_vec() },
            QueryClass::KmeansSumCells,
        ];
        let cache = SensitivityCache::new();
        for class in &classes {
            let fresh = class.sensitivity(&policy);
            let miss = cache.sensitivity(&policy, class);
            let hit = cache.sensitivity(&policy, class);
            prop_assert_eq!(miss, fresh, "miss diverged for {}", class.label());
            prop_assert_eq!(hit, fresh, "hit diverged for {}", class.label());
        }
        prop_assert_eq!(cache.stats().entries, classes.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The Ordered Mechanism's released prefixes are always sorted after
    /// inference, for arbitrary sparse histograms.
    #[test]
    fn ordered_release_always_sorted(
        counts in proptest::collection::vec(0u32..30, 2..64),
        seed in 0u64..100,
    ) {
        use rand::SeedableRng;
        let h = Histogram::from_counts(counts.iter().map(|&c| c as f64).collect());
        let mech = OrderedMechanism::line_graph(Epsilon::new(0.2).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let release = mech.release(&h.cumulative(), &mut rng).unwrap();
        prop_assert!(release.prefixes().windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }

    /// OH releases answer every prefix finitely for arbitrary θ, fanout
    /// and domain size (structure correctness under odd alignments).
    #[test]
    fn oh_release_all_prefixes_finite(
        size in 2usize..120,
        theta in 1usize..40,
        fanout in 2usize..6,
        seed in 0u64..50,
    ) {
        use rand::SeedableRng;
        let counts: Vec<f64> = (0..size).map(|i| (i % 5) as f64).collect();
        let mech = OrderedHierarchicalMechanism::new(
            Epsilon::new(1.0).unwrap(),
            theta,
            fanout,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let release = mech.release(&counts, &mut rng);
        for i in 0..size {
            prop_assert!(release.prefix(i).is_finite(), "prefix {} of {}", i, size);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Corollary 8.3 invariants on random interval constraint families
    /// over line-graph secrets: the policy graph always builds (interval
    /// constraints are sparse w.r.t. the line graph), and
    /// `2 ≤ bound ≤ 2·max(|Q|, 1)` with `α ≤ |Q|` and `ξ ≤ |Q| + 1`.
    #[test]
    fn policy_graph_invariants_on_random_intervals(
        sizes in proptest::collection::vec(1usize..6, 1..6),
    ) {
        use blowfish::constraints::policy_graph::PolicyGraph;
        use blowfish::constraints::sparse::DEFAULT_SCAN_CAP;
        let domain_size: usize = sizes.iter().sum();
        let domain = Domain::line(domain_size).unwrap();
        // Contiguous disjoint intervals covering the domain.
        let mut queries = Vec::new();
        let mut start = 0usize;
        for &w in &sizes {
            let vals: Vec<usize> = (start..start + w).collect();
            queries.push(Predicate::of_values(domain_size, &vals));
            start += w;
        }
        let gp = PolicyGraph::build(&domain, &SecretGraph::line(), &queries, DEFAULT_SCAN_CAP)
            .unwrap();
        let q = queries.len();
        prop_assert!(gp.alpha() <= q);
        prop_assert!(gp.xi() <= q + 1);
        let bound = gp.sensitivity_bound();
        prop_assert!(bound >= 2.0);
        prop_assert!(bound <= 2.0 * q.max(1) as f64);
    }

    /// Marginal queries always partition the domain: every value
    /// satisfies exactly one cell, and size(C) matches the query count.
    #[test]
    fn marginal_queries_partition_domain(
        cards in proptest::collection::vec(2usize..5, 2..4),
        attr_mask in proptest::collection::vec(proptest::bool::ANY, 2..4),
    ) {
        use blowfish::constraints::Marginal;
        let domain = Domain::from_cardinalities(&cards).unwrap();
        let attrs: Vec<usize> = attr_mask
            .iter()
            .take(cards.len())
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        prop_assume!(!attrs.is_empty());
        let m = Marginal::new(attrs);
        let queries = m.queries(&domain);
        prop_assert_eq!(queries.len(), m.size(&domain));
        for x in domain.indices() {
            let hits = queries.iter().filter(|q| q.eval(x)).count();
            prop_assert_eq!(hits, 1, "value {} in {} cells", x, hits);
        }
    }

    /// The ⊥ extension's closed-form sensitivities bound every enumerated
    /// neighbor, for random masks and datasets.
    #[test]
    fn unbounded_sensitivity_bounds_neighbors(
        mask in proptest::collection::vec(proptest::bool::ANY, 4..8),
        present in proptest::collection::vec(proptest::option::of(0usize..4), 1..5),
        theta in 1u64..3,
    ) {
        use blowfish::core::unbounded::{BotEdges, UnboundedDataset, UnboundedPolicy};
        let size = mask.len();
        let rows: Vec<Option<usize>> = present
            .iter()
            .map(|o| o.map(|v| v % size))
            .collect();
        let base = Policy::distance_threshold(Domain::line(size).unwrap(), theta);
        let policy = UnboundedPolicy::new(base, BotEdges::Values(mask));
        let ds = UnboundedDataset::new(size, rows).unwrap();
        let h = ds.histogram();
        let s_hist = policy.histogram_sensitivity();
        let s_cum = policy.cumulative_histogram_sensitivity();
        for n in ds.neighbors(&policy) {
            let hn = n.histogram();
            prop_assert!(h.l1_distance(&hn) <= s_hist + 1e-9);
            let c: f64 = h
                .cumulative()
                .prefixes()
                .iter()
                .zip(hn.cumulative().prefixes())
                .map(|(a, b)| (a - b).abs())
                .sum();
            prop_assert!(c <= s_cum + 1e-9);
        }
    }

    /// Wavelet reconstruction with negligible noise is exact for every
    /// size (padding correctness).
    #[test]
    fn wavelet_round_trip(counts in proptest::collection::vec(0u32..40, 1..70)) {
        use blowfish::mechanisms::WaveletMechanism;
        use rand::SeedableRng;
        let h: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let m = WaveletMechanism::new(Epsilon::new(1e12).unwrap());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = m.release(&h, &mut rng);
        for (a, b) in r.histogram().iter().zip(&h) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
