//! Integration tests pinning every sensitivity theorem to the exact
//! brute-force value computed from Definitions 4.1 + 5.1 on small
//! domains.

use blowfish::constraints::grid_constraints::{rectangle_predicates, thm_8_6_sensitivity};
use blowfish::constraints::marginal::{thm_8_4_sensitivity, thm_8_5_sensitivity};
use blowfish::constraints::policy_graph::PolicyGraph;
use blowfish::constraints::sparse::DEFAULT_SCAN_CAP;
use blowfish::constraints::Marginal;
use blowfish::core::sensitivity::{
    brute_force_sensitivity, brute_force_sensitivity_with, cumulative_histogram_sensitivity,
    histogram_sensitivity, qsum_sensitivity_cells,
};
use blowfish::core::NeighborSemantics;
use blowfish::domain::grid::Rectangle;
use blowfish::prelude::*;

const CAP: f64 = 3e6;

fn hist(d: &Dataset) -> Vec<f64> {
    d.histogram().counts().to_vec()
}

fn cumulative(d: &Dataset) -> Vec<f64> {
    d.histogram().cumulative().prefixes().to_vec()
}

/// The discrete q_sum on a 1-D line domain: sum of values.
fn qsum_line(d: &Dataset) -> Vec<f64> {
    vec![d.rows().iter().map(|&r| r as f64).sum()]
}

#[test]
fn unconstrained_closed_forms_match_brute_force() {
    let domain = Domain::line(5).unwrap();
    for policy in [
        Policy::differential_privacy(domain.clone()),
        Policy::distance_threshold(domain.clone(), 1),
        Policy::distance_threshold(domain.clone(), 3),
        Policy::partitioned(domain.clone(), Partition::intervals(5, 2)),
    ] {
        assert_eq!(
            brute_force_sensitivity(&policy, 2, &hist, CAP).unwrap(),
            histogram_sensitivity(&policy),
            "histogram, {}",
            policy.label()
        );
        assert_eq!(
            brute_force_sensitivity(&policy, 2, &cumulative, CAP).unwrap(),
            cumulative_histogram_sensitivity(&policy),
            "cumulative, {}",
            policy.label()
        );
    }
}

#[test]
fn qsum_lemma_6_1_on_line_domain() {
    let domain = Domain::line(6).unwrap();
    // Brute-force sensitivity of Σ values is max edge length; Lemma 6.1's
    // 2·max-edge applies to the per-cluster sum vector (a point moves out
    // of one cluster and into another). On the raw sum the factor is 1.
    for (policy, expected) in [
        (Policy::differential_privacy(domain.clone()), 5.0),
        (Policy::distance_threshold(domain.clone(), 2), 2.0),
        (Policy::attribute(domain.clone()), 5.0),
    ] {
        assert_eq!(
            brute_force_sensitivity(&policy, 2, &qsum_line, CAP).unwrap(),
            expected,
            "{}",
            policy.label()
        );
        assert_eq!(qsum_sensitivity_cells(&policy), 2.0 * expected);
    }
}

#[test]
fn thm_8_4_exact_on_small_domain() {
    // One marginal over A1, full-domain secrets, T = 2×3: closed form
    // 2·size(C) = 4 must equal both the policy-graph bound and the
    // aligned brute force at n = 3 (n ≥ 2 tuples needed to realize the
    // swap).
    let domain = Domain::from_cardinalities(&[2, 3]).unwrap();
    let marginal = Marginal::new(vec![0]);
    let closed = thm_8_4_sensitivity(&domain, &marginal).unwrap();
    assert_eq!(closed, 4.0);

    let queries = marginal.queries(&domain);
    let gp = PolicyGraph::build(&domain, &SecretGraph::Full, &queries, DEFAULT_SCAN_CAP).unwrap();
    assert_eq!(gp.sensitivity_bound(), closed);

    let seed = Dataset::from_rows(domain.clone(), vec![0, 3]).unwrap();
    let policy =
        Policy::with_constraints(domain, SecretGraph::Full, marginal.constraints(&seed)).unwrap();
    // Full graph: literal and aligned semantics coincide.
    for sem in [NeighborSemantics::Aligned, NeighborSemantics::Literal] {
        assert_eq!(
            brute_force_sensitivity_with(&policy, 2, &hist, sem, CAP).unwrap(),
            closed,
            "{sem:?}"
        );
    }
}

#[test]
fn thm_8_5_aligned_brute_force_within_closed_form() {
    let domain = Domain::from_cardinalities(&[2, 2, 2]).unwrap();
    let m1 = Marginal::new(vec![0]);
    let m2 = Marginal::new(vec![1]);
    let closed = thm_8_5_sensitivity(&domain, &[m1.clone(), m2.clone()]).unwrap();
    assert_eq!(closed, 4.0);
    let seed = Dataset::from_rows(domain.clone(), vec![0, 3, 5]).unwrap();
    let mut constraints = m1.constraints(&seed);
    constraints.extend(m2.constraints(&seed));
    let policy = Policy::with_constraints(domain, SecretGraph::Attribute, constraints).unwrap();
    let aligned =
        brute_force_sensitivity_with(&policy, 3, &hist, NeighborSemantics::Aligned, CAP).unwrap();
    assert!(
        aligned <= closed,
        "aligned {aligned} exceeds closed {closed}"
    );
    // The literal reading can exceed the closed form (documented witness).
    let literal =
        brute_force_sensitivity_with(&policy, 3, &hist, NeighborSemantics::Literal, CAP).unwrap();
    assert!(literal >= aligned);
    assert_eq!(literal, 6.0, "the EXPERIMENTS.md witness");
}

#[test]
fn thm_8_5_aligned_equality_with_pair_swap() {
    // A cleaner instance where the aligned brute force achieves the
    // closed form: one marginal {A1} on T = 2×2 with attribute secrets.
    let domain = Domain::from_cardinalities(&[2, 2]).unwrap();
    let m = Marginal::new(vec![0]);
    let closed = thm_8_5_sensitivity(&domain, std::slice::from_ref(&m)).unwrap();
    assert_eq!(closed, 4.0);
    let seed = Dataset::from_rows(domain.clone(), vec![0, 2]).unwrap();
    let policy =
        Policy::with_constraints(domain, SecretGraph::Attribute, m.constraints(&seed)).unwrap();
    let aligned =
        brute_force_sensitivity_with(&policy, 2, &hist, NeighborSemantics::Aligned, CAP).unwrap();
    assert_eq!(aligned, closed);
}

#[test]
fn thm_8_6_bound_respected_on_grid() {
    // 5×1 grid, two disjoint non-point rectangles, θ = 2.
    let grid = GridDomain::new(vec![5, 1]).unwrap();
    let rects = vec![
        Rectangle::new(vec![0, 0], vec![1, 0]).unwrap(),
        Rectangle::new(vec![3, 0], vec![4, 0]).unwrap(),
    ];
    let theta = 2u64;
    let (closed, exact) = thm_8_6_sensitivity(&grid, &rects, theta).unwrap();
    assert!(exact);
    assert_eq!(closed, 2.0 * (2.0 + 1.0)); // maxcomp = 2 (gap 1 ≤ θ)

    let preds = rectangle_predicates(&grid, &rects);
    let gp = PolicyGraph::build(
        grid.domain(),
        &SecretGraph::L1Threshold { theta },
        &preds,
        DEFAULT_SCAN_CAP,
    )
    .unwrap();
    assert_eq!(gp.sensitivity_bound(), closed);

    let seed = Dataset::from_rows(grid.domain().clone(), vec![0, 3]).unwrap();
    let constraints: Vec<CountConstraint> = preds
        .iter()
        .map(|p| CountConstraint::observed(p.clone(), &seed))
        .collect();
    let policy = Policy::with_constraints(
        grid.domain().clone(),
        SecretGraph::L1Threshold { theta },
        constraints,
    )
    .unwrap();
    let aligned =
        brute_force_sensitivity_with(&policy, 3, &hist, NeighborSemantics::Aligned, CAP).unwrap();
    assert!(aligned <= closed, "aligned {aligned} > closed {closed}");
}

#[test]
fn constrained_sensitivity_never_below_unconstrained_histogram_changes() {
    // Sanity: with constraints, when a single in-support move exists the
    // brute force still reports ≥ 2 (one tuple leaving/entering cells),
    // unless the constraints freeze everything.
    let domain = Domain::line(4).unwrap();
    let seed = Dataset::from_rows(domain.clone(), vec![0, 2]).unwrap();
    let q = CountConstraint::observed(Predicate::of_values(4, &[0, 1]), &seed);
    let policy = Policy::with_constraints(domain, SecretGraph::Full, vec![q]).unwrap();
    let v = brute_force_sensitivity(&policy, 2, &hist, CAP).unwrap();
    assert!(v >= 2.0);
}
