//! Integration tests verifying the Blowfish *definition* end-to-end:
//! neighbor semantics, the equivalence with differential privacy for the
//! complete graph (Section 4.2), the Eq. 9 distance-damped disclosure
//! bound, and empirical likelihood-ratio checks on real mechanism output.

use blowfish::core::neighbors::enumerate_neighbors;
use blowfish::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const CAP: f64 = 2e6;

/// Differential privacy is exactly Blowfish with the complete graph: the
/// neighbor sets coincide (Section 4.2).
#[test]
fn dp_equals_blowfish_with_complete_graph() {
    let domain = Domain::from_cardinalities(&[2, 3]).unwrap();
    let dp = Policy::differential_privacy(domain.clone());
    let ds = Dataset::from_rows(domain.clone(), vec![0, 4]).unwrap();
    let nbrs = enumerate_neighbors(&dp, &ds, CAP).unwrap();
    // Classic DP neighbors with fixed n: every single-tuple change.
    // 2 rows × 5 alternative values each.
    assert_eq!(nbrs.len(), 10);
    for n in &nbrs {
        assert_eq!(ds.differing_ids(n).len(), 1);
    }
}

/// Under `G^{L1,θ}` neighbors only move a tuple within θ; farther moves
/// are *not* neighbors but are still damped through intermediate steps
/// (Eq. 9: likelihood ratio ≤ e^{ε·d_G(x,y)}).
#[test]
fn distance_threshold_neighbor_structure() {
    let domain = Domain::line(10).unwrap();
    let policy = Policy::distance_threshold(domain.clone(), 2);
    let ds = Dataset::from_rows(domain.clone(), vec![5]).unwrap();
    let nbrs = enumerate_neighbors(&policy, &ds, CAP).unwrap();
    let values: Vec<usize> = nbrs.iter().map(|n| n.row(0)).collect();
    assert_eq!(values, vec![3, 4, 6, 7]);
}

/// Empirical likelihood-ratio check: the policy-calibrated Laplace
/// histogram release satisfies the (ε, P) inequality on a neighbor pair,
/// and the privacy degrades with graph distance exactly as Eq. 9 allows.
#[test]
fn empirical_privacy_inequality_on_histogram_release() {
    let domain = Domain::line(8).unwrap();
    let policy = Policy::distance_threshold(domain.clone(), 1);
    let eps = 0.8;
    let mechanism = HistogramMechanism::for_policy(&policy, Epsilon::new(eps).unwrap()).unwrap();

    let d1 = Dataset::from_rows(domain.clone(), vec![3, 3, 3]).unwrap();
    let d2 = d1.with_row(0, 4).unwrap(); // neighbor (adjacent move)
    let d_far = d1.with_row(0, 7).unwrap(); // d_G = 4, not a neighbor

    let mut rng = StdRng::seed_from_u64(17);
    let trials = 120_000;
    // Discretize the first two histogram cells' outputs coarsely.
    let key = |h: &Histogram| {
        (
            (h.count(3) / 2.0).floor() as i64,
            (h.count(4) / 2.0).floor() as i64,
        )
    };
    let mut c1: HashMap<(i64, i64), u64> = HashMap::new();
    let mut c2: HashMap<(i64, i64), u64> = HashMap::new();
    let mut cf: HashMap<(i64, i64), u64> = HashMap::new();
    for _ in 0..trials {
        *c1.entry(key(&mechanism.release(&d1, &mut rng)))
            .or_insert(0) += 1;
        *c2.entry(key(&mechanism.release(&d2, &mut rng)))
            .or_insert(0) += 1;
        *cf.entry(key(&mechanism.release(&d_far, &mut rng)))
            .or_insert(0) += 1;
    }
    let bound_neighbor = eps.exp() * 1.25; // sampling slack
    let bound_far = (4.0 * eps).exp() * 1.6;
    for (k, &a) in &c1 {
        if a < 800 {
            continue;
        }
        if let Some(&b) = c2.get(k) {
            if b >= 800 {
                let ratio = a as f64 / b as f64;
                assert!(
                    ratio < bound_neighbor && 1.0 / ratio < bound_neighbor,
                    "neighbor ratio {ratio} at {k:?}"
                );
            }
        }
        if let Some(&b) = cf.get(k) {
            if b >= 800 {
                let ratio = a as f64 / b as f64;
                assert!(
                    ratio < bound_far && 1.0 / ratio < bound_far,
                    "far ratio {ratio} at {k:?}"
                );
            }
        }
    }
}

/// Sequential composition accounting (Theorem 4.1) through the budget
/// accountant, and parallel composition (Theorem 4.2) as max.
#[test]
fn composition_accounting() {
    use blowfish::core::{parallel_epsilon, sequential_epsilon};
    let parts = vec![
        Epsilon::new(0.2).unwrap(),
        Epsilon::new(0.3).unwrap(),
        Epsilon::new(0.5).unwrap(),
    ];
    assert!((sequential_epsilon(&parts).unwrap().value() - 1.0).abs() < 1e-12);
    assert_eq!(parallel_epsilon(&parts).unwrap().value(), 0.5);

    let mut acct = BudgetAccountant::new(Epsilon::new(1.0).unwrap());
    for (i, e) in parts.iter().enumerate() {
        acct.spend(format!("step{i}"), *e).unwrap();
    }
    assert!(acct.remaining() < 1e-9);
    assert!(acct.spend("extra", Epsilon::new(0.1).unwrap()).is_err());
}

/// Lemma 5.2: any ε-DP mechanism also satisfies (ε, P)-Blowfish for every
/// constraint-free policy — the Blowfish neighbor set is a subset of the
/// DP neighbor set.
#[test]
fn blowfish_neighbors_subset_of_dp_neighbors() {
    let domain = Domain::from_cardinalities(&[3, 3]).unwrap();
    let ds = Dataset::from_rows(domain.clone(), vec![0, 8]).unwrap();
    let dp = Policy::differential_privacy(domain.clone());
    let dp_neighbors: Vec<Vec<usize>> = enumerate_neighbors(&dp, &ds, CAP)
        .unwrap()
        .into_iter()
        .map(|d| d.rows().to_vec())
        .collect();
    for policy in [
        Policy::attribute(domain.clone()),
        Policy::distance_threshold(domain.clone(), 2),
        Policy::partitioned(domain.clone(), Partition::intervals(9, 3)),
    ] {
        for n in enumerate_neighbors(&policy, &ds, CAP).unwrap() {
            assert!(
                dp_neighbors.contains(&n.rows().to_vec()),
                "{} produced a non-DP neighbor",
                policy.label()
            );
        }
    }
}

/// Parallel composition example from Section 4.1: disconnected components
/// with matching count constraints have no critical secret pairs, so
/// per-component releases compose at max ε. We verify the structural
/// precondition: neighbors never cross components.
#[test]
fn aligned_constraints_keep_neighbors_within_components() {
    let domain = Domain::line(4).unwrap();
    let part = Partition::intervals(4, 2); // components {0,1}, {2,3}
    let graph = SecretGraph::Partition(part);
    let seed = Dataset::from_rows(domain.clone(), vec![0, 2]).unwrap();
    let q_s = CountConstraint::observed(Predicate::of_values(4, &[0, 1]), &seed);
    let q_t = CountConstraint::observed(Predicate::of_values(4, &[2, 3]), &seed);
    let policy = Policy::with_constraints(domain, graph, vec![q_s, q_t]).unwrap();
    let nbrs = enumerate_neighbors(&policy, &seed, CAP).unwrap();
    assert!(!nbrs.is_empty());
    for n in nbrs {
        // Every neighbor changes exactly one tuple within its component.
        let diffs = seed.differing_ids(&n);
        assert_eq!(diffs.len(), 1);
        let id = diffs[0];
        let (old, new) = (seed.row(id), n.row(id));
        assert_eq!(old / 2, new / 2, "move crossed a component");
    }
}

/// The audit API flags a mechanism calibrated to the *wrong* policy: an
/// ordered release calibrated for θ=1 run against a θ=4 neighbor pair
/// (prefix gap 4) leaks more than ε; the correctly calibrated θ=4
/// mechanism passes.
#[test]
fn audit_flags_miscalibrated_policy() {
    use blowfish::core::estimate_max_log_ratio;
    let eps = 0.8;
    let epsilon = Epsilon::new(eps).unwrap();
    let mut rng = StdRng::seed_from_u64(41);

    // Two cumulative histograms whose prefixes differ by 1 in 4 positions
    // — a θ=4 neighbor pair on a line domain.
    let domain = Domain::line(12).unwrap();
    let d1 = Dataset::from_rows(domain.clone(), vec![8, 3]).unwrap();
    let d2 = d1.with_row(0, 4).unwrap();
    let c1 = d1.histogram().cumulative();
    let c2 = d2.histogram().cumulative();

    let wrong = OrderedMechanism::with_theta(epsilon, 1).without_inference();
    let right = OrderedMechanism::with_theta(epsilon, 4).without_inference();

    // Observe the joint shift: the sum of the four prefixes that differ
    // between the two databases (each by 1). Under the correct θ=4
    // calibration the ratio on any post-processed statistic stays ≤ e^ε;
    // the θ=1 calibration leaks across the four coordinates.
    let bucket = |r: &blowfish::mechanisms::OrderedRelease| {
        let s = r.prefix(4) + r.prefix(5) + r.prefix(6) + r.prefix(7);
        ((s / 2.0).floor() as i64).clamp(-60, 60)
    };
    let report_wrong = estimate_max_log_ratio(
        &mut rng,
        |r| wrong.release(&c1, r).unwrap(),
        |r| wrong.release(&c2, r).unwrap(),
        bucket,
        120_000,
        800,
    );
    let report_right = estimate_max_log_ratio(
        &mut rng,
        |r| right.release(&c1, r).unwrap(),
        |r| right.release(&c2, r).unwrap(),
        bucket,
        120_000,
        800,
    );
    assert!(
        report_wrong.max_log_ratio > eps * 1.5,
        "θ=1 calibration should leak > ε on a θ=4 pair: {}",
        report_wrong.max_log_ratio
    );
    assert!(
        report_right.max_log_ratio < eps * 1.25,
        "θ=4 calibration should satisfy ε: {}",
        report_right.max_log_ratio
    );
}
