//! Kill-and-restart integration tests for the durable ε-budget ledger:
//! the acceptance gate for the persistence subsystem.
//!
//! The privacy claim under test: **no ε resurrection**. Whatever subset
//! of the WAL survives a crash, the recovered ledger's spent ε covers
//! every charge that was ever acknowledged — a restarted engine refuses
//! exactly what the pre-crash engine would have refused (or more, never
//! less).

use blowfish::engine::{Engine, EngineError, Request, Response, Store};
use blowfish::prelude::*;
use blowfish::server::{Server, ServerConfig};
use blowfish::store::{scan_frames, scratch_dir, Record, ScanEnd};
use std::sync::Arc;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn build_engine(seed: u64, store: Arc<Store>) -> Engine {
    let engine = Engine::with_store(seed, store);
    let domain = Domain::line(64).unwrap();
    engine
        .register_policy("pol", Policy::distance_threshold(domain.clone(), 3))
        .unwrap();
    let rows: Vec<usize> = (0..640).map(|i| (i * 13) % 64).collect();
    engine
        .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    engine
}

/// The acceptance scenario: serve, die without ceremony, restart,
/// reattach — the restarted engine refuses a charge that would exceed
/// the pre-crash remaining budget, and a same-seed engine replays the
/// acknowledged charges byte-identically.
#[test]
fn killed_engine_restarts_with_its_ledger_and_noise_stream() {
    let dir = scratch_dir("kill-restart");
    let requests = [
        Request::range("pol", "ds", eps(0.3), 4, 20),
        Request::histogram("pol", "ds", eps(0.25)),
        Request::range("pol", "ds", eps(0.15), 10, 50),
    ];

    // Generation 1: acknowledge three charges, then "die" (drop with no
    // shutdown, no compaction — the WAL alone carries the ledger).
    let first_run: Vec<Response> = {
        let store = Arc::new(Store::open(&dir).unwrap());
        let engine = build_engine(1234, store);
        engine.open_session("alice", eps(1.0)).unwrap();
        requests
            .iter()
            .map(|r| engine.serve("alice", r).unwrap())
            .collect()
    };

    // Generation 2: recover.
    let store = Arc::new(Store::open(&dir).unwrap());
    let report = store.recovery_report();
    assert_eq!(report.records_applied, 3 + 1 + 2, "charges + open + regs");
    let engine = build_engine(1234, store);
    engine.open_session("alice", eps(1.0)).unwrap();
    // Pre-crash remaining was 1.0 − 0.7 = 0.3: a 0.5 charge must refuse…
    let err = engine
        .serve("alice", &Request::range("pol", "ds", eps(0.5), 0, 9))
        .unwrap_err();
    assert!(
        matches!(err, EngineError::BudgetRefused { remaining, .. }
            if (remaining - 0.3).abs() < 1e-12),
        "got {err}"
    );
    // …while 0.3 still fits.
    engine
        .serve("alice", &Request::range("pol", "ds", eps(0.3), 0, 9))
        .unwrap();

    // Same-seed replay of the acknowledged charges is byte-identical:
    // a fresh engine with the same seed serving the same sequence
    // reproduces generation 1's answers bit for bit.
    let replay: Vec<Response> = {
        let replay_dir = scratch_dir("kill-restart-replay");
        let store = Arc::new(Store::open(&replay_dir).unwrap());
        let engine = build_engine(1234, store);
        engine.open_session("alice", eps(1.0)).unwrap();
        let out = requests
            .iter()
            .map(|r| engine.serve("alice", r).unwrap())
            .collect();
        std::fs::remove_dir_all(&replay_dir).unwrap();
        out
    };
    assert_eq!(first_run, replay, "same seed, same charges, same bytes");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Recovering the same directory twice yields byte-identical ledgers.
#[test]
fn recovery_is_deterministic() {
    let dir = scratch_dir("recover-twice");
    {
        let store = Arc::new(Store::open(&dir).unwrap());
        let engine = build_engine(7, store);
        for i in 0..8 {
            let analyst = format!("a{i}");
            engine.open_session(&analyst, eps(2.0)).unwrap();
            engine
                .serve(&analyst, &Request::range("pol", "ds", eps(0.125), i, i + 9))
                .unwrap();
        }
    }
    let a = Store::open(&dir).unwrap().recovered_state().digest();
    let b = Store::open(&dir).unwrap().recovered_state().digest();
    assert_eq!(a, b);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The server round trip: graceful shutdown compacts, restart-reattach
/// continues serving under the recovered ledgers.
#[test]
fn server_shutdown_and_restart_reattach() {
    let dir = scratch_dir("server-restart");
    {
        let store = Arc::new(Store::open(&dir).unwrap());
        let engine = Arc::new(build_engine(55, store));
        for i in 0..4 {
            engine.open_session(format!("a{i}"), eps(1.0)).unwrap();
        }
        let server = Server::new(
            Arc::clone(&engine),
            ServerConfig {
                adaptive_window: true,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..4)
            .map(|i| {
                server
                    .submit(
                        &format!("a{i}"),
                        Request::range("pol", "ds", eps(0.4), 8, 24),
                    )
                    .unwrap()
            })
            .collect();
        let stats = server.shutdown().unwrap();
        assert_eq!(stats.answered, 4);
        for t in tickets {
            t.wait().unwrap();
        }
    }
    // Restart: snapshot recovery (the shutdown compacted), reattach,
    // continue — with the spent 0.4 intact per analyst.
    let store = Arc::new(Store::open(&dir).unwrap());
    assert!(store.recovery_report().snapshot_segment.is_some());
    let engine = Arc::new(build_engine(55, store));
    let server = Server::with_defaults(Arc::clone(&engine));
    // Tickets must stay alive until served: a dropped ticket is an
    // unreachable waiter and the scheduler cancels it before charging.
    let mut tickets = Vec::new();
    for i in 0..4 {
        let analyst = format!("a{i}");
        // Parked until reattach; the server refuses at the door.
        assert!(matches!(
            server.submit(&analyst, Request::range("pol", "ds", eps(0.1), 0, 5)),
            Err(blowfish::server::ServerError::Engine(
                EngineError::SessionEvicted(_)
            ))
        ));
        engine.open_session(&analyst, eps(1.0)).unwrap();
        assert!((engine.session_remaining(&analyst).unwrap() - 0.6).abs() < 1e-12);
        // Over-budget refuses at admission; a fitting request serves.
        assert!(server
            .submit(&analyst, Request::range("pol", "ds", eps(0.7), 0, 5))
            .is_err());
        tickets.push(
            server
                .submit(&analyst, Request::range("pol", "ds", eps(0.5), 0, 5))
                .unwrap(),
        );
    }
    server.pump_until_idle();
    for t in tickets {
        t.wait().unwrap();
    }
    for i in 0..4 {
        assert!((engine.session_remaining(&format!("a{i}")).unwrap() - 0.1).abs() < 1e-12);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Builds one WAL of `n` charges with exactly representable ε values
/// and returns (wal bytes, per-charge ε, segment path, dir).
fn charged_wal(tag: &str, n: usize) -> (Vec<u8>, Vec<f64>, std::path::PathBuf) {
    let dir = scratch_dir(tag);
    let spends: Vec<f64> = (0..n).map(|i| (i + 1) as f64 / 1024.0).collect();
    {
        let store = Store::open(&dir).unwrap();
        store
            .commit(&[Record::session_opened("alice", 1e6)])
            .unwrap();
        for (i, &e) in spends.iter().enumerate() {
            store
                .commit(&[Record::charged("alice", &format!("q{i}"), e)])
                .unwrap();
        }
    }
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.file_name().unwrap().to_str().unwrap().starts_with("wal-"))
        .unwrap();
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    (bytes, spends, seg)
}

/// Writes `bytes` as the sole WAL segment of a fresh store dir and
/// tries to recover it, returning (recovered spent, recovered served,
/// report), or the recovery refusal.
fn try_recover_bytes(
    tag: &str,
    bytes: &[u8],
) -> Result<(f64, u64, blowfish::store::RecoveryReport), blowfish::store::StoreError> {
    let dir = scratch_dir(tag);
    std::fs::write(dir.join("wal-0000000000000000.log"), bytes).unwrap();
    let result = Store::open(&dir).map(|store| {
        let report = store.recovery_report();
        let (spent, served) = store
            .recovered_state()
            .sessions
            .get("alice")
            .map_or((0.0, 0), |s| (s.spent, s.served));
        (spent, served, report)
    });
    std::fs::remove_dir_all(&dir).unwrap();
    result
}

/// As [`try_recover_bytes`], for inputs recovery must accept.
fn recover_bytes(tag: &str, bytes: &[u8]) -> (f64, u64, blowfish::store::RecoveryReport) {
    try_recover_bytes(tag, bytes).expect("recovery must accept this input")
}

/// Property: truncating the WAL at **any** byte offset yields a
/// recovered spend equal to some prefix of the charge sequence —
/// monotone in the cut, never an invented value, and equal to the full
/// spend at the full length. This is the no-ε-resurrection guarantee
/// under arbitrary crash points.
#[test]
fn truncation_at_any_offset_recovers_a_monotone_prefix() {
    let (bytes, spends, _) = charged_wal("truncate", 12);
    let mut prefix_sums = vec![0.0f64];
    for &e in &spends {
        prefix_sums.push(prefix_sums.last().unwrap() + e);
    }
    let full_spent = *prefix_sums.last().unwrap();
    let mut last_spent = 0.0f64;
    // Every cut: coarse stride through record bodies plus every offset
    // near the tail, so both header and payload tears are exercised.
    let cuts: Vec<usize> = (0..bytes.len())
        .filter(|c| c % 7 == 0 || *c + 64 >= bytes.len())
        .chain([bytes.len()])
        .collect();
    for cut in cuts {
        let (spent, served, report) = recover_bytes("truncate-cut", &bytes[..cut]);
        assert!(
            prefix_sums.iter().any(|p| (p - spent).abs() < 1e-12),
            "cut {cut}: spent {spent} is not a prefix sum"
        );
        assert!(
            spent >= last_spent - 1e-12,
            "cut {cut}: spent went backwards ({last_spent} → {spent})"
        );
        assert!(spent <= full_spent + 1e-12, "cut {cut}: invented budget");
        // served tracks the same prefix: spends are distinct so the
        // prefix index is recoverable from the spent sum.
        let k = prefix_sums
            .iter()
            .position(|p| (p - spent).abs() < 1e-12)
            .unwrap();
        assert_eq!(served, k as u64, "cut {cut}");
        if cut < bytes.len() {
            assert!(report.tail_skipped || (spent - full_spent).abs() < 1e-12 || k < spends.len());
        }
        last_spent = spent;
    }
    // The uncut WAL recovers everything.
    let (spent, served, report) = recover_bytes("truncate-full", &bytes);
    assert!((spent - full_spent).abs() < 1e-12);
    assert_eq!(served, spends.len() as u64);
    assert!(!report.tail_skipped);
}

/// Property: flipping any single byte makes the checksum reject that
/// record. A flip in the **final** record looks like a crash tear
/// (nothing durable follows), so recovery accepts exactly the intact
/// prefix; a flip anywhere earlier is followed by intact, provably
/// acknowledged frames, so recovery **refuses** rather than silently
/// dropping them. Either way, no spend is ever invented.
#[test]
fn corruption_at_any_offset_is_rejected_by_checksum() {
    let (bytes, spends, _) = charged_wal("corrupt", 10);
    let mut prefix_sums = vec![0.0f64];
    for &e in &spends {
        prefix_sums.push(prefix_sums.last().unwrap() + e);
    }
    let full_spent = *prefix_sums.last().unwrap();
    // Frame boundaries, so each flip maps to a known record index.
    let mut boundaries = vec![0usize];
    {
        let mut pos = 0usize;
        let (end, _) = scan_frames(&bytes, |_| {});
        assert_eq!(end, ScanEnd::Clean);
        while pos < bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += blowfish::store::FRAME_HEADER_LEN + len;
            boundaries.push(pos);
        }
    }
    let records = boundaries.len() - 1; // 1 open + 10 charges
    for flip in (0..bytes.len()).step_by(5) {
        let mut damaged = bytes.clone();
        damaged[flip] ^= 0x40;
        // The flipped byte lives in record `r` (0 = the session open).
        let r = boundaries.iter().filter(|&&b| b <= flip).count() - 1;
        match try_recover_bytes("corrupt-flip", &damaged) {
            Ok((spent, _, report)) => {
                // Acceptance is only sound when nothing durable follows
                // the damage — the damaged-final-record case.
                assert_eq!(
                    r,
                    records - 1,
                    "flip at {flip}: mid-history damage must refuse, not skip"
                );
                let expected = prefix_sums[records - 2]; // all charges but the last
                assert!(
                    (spent - expected).abs() < 1e-12,
                    "flip at {flip}: spent {spent}, expected {expected}"
                );
                assert!(spent <= full_spent + 1e-12, "no resurrection");
                assert!(report.tail_skipped);
            }
            Err(e) => {
                // Refusal is always sound; for mid-history damage it is
                // required (intact acknowledged frames follow the flip).
                assert!(
                    r < records - 1,
                    "flip at {flip} in the final record should be tolerated, got {e}"
                );
            }
        }
    }
}

/// Crash point 1 of the exactly-once story: the fault kills the very
/// commit carrying the charge, so nothing durable was charged and
/// nothing was acknowledged. A restart-and-retry under the same
/// idempotency key performs the work — and charges — exactly once.
#[test]
fn retry_after_precommit_crash_charges_exactly_once() {
    use blowfish::chaos::{StoreFault, StorePlan};
    use blowfish::store::StoreConfig;
    let request = Request::range("pol", "ds", eps(0.4), 4, 20);
    // Dry run with an unarmed plan: count the WAL writes a clean run
    // performs before the serve, so the scripted fault lands exactly on
    // the charge commit no matter how registration batching evolves.
    let ops_before_serve = {
        let dir = scratch_dir("precommit-dry");
        let plan = Arc::new(StorePlan::none());
        let store = Store::open_with(
            &dir,
            StoreConfig {
                fault_plan: Some(Arc::clone(&plan)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let engine = build_engine(99, Arc::new(store));
        engine.open_session("alice", eps(1.0)).unwrap();
        drop(engine);
        let n = plan.ops();
        std::fs::remove_dir_all(&dir).unwrap();
        n
    };

    let dir = scratch_dir("precommit");
    {
        let plan = Arc::new(StorePlan::scripted([(
            ops_before_serve + 1,
            StoreFault::FailWrite,
        )]));
        let store = Store::open_with(
            &dir,
            StoreConfig {
                fault_plan: Some(Arc::clone(&plan)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let engine = build_engine(99, Arc::new(store));
        engine.open_session("alice", eps(1.0)).unwrap();
        let denied = engine.serve_tagged("alice", 7, &request);
        assert!(
            matches!(denied, Err(EngineError::Store(_))),
            "got {denied:?}"
        );
        assert_eq!(plan.injected(), 1, "the scripted fault must have fired");
    } // die without ceremony

    // Restart: the failed commit left no durable charge; the retry under
    // the same key serves once, then replays free and bit-identically.
    let store = Arc::new(Store::open(&dir).unwrap());
    let engine = build_engine(99, store);
    engine.open_session("alice", eps(1.0)).unwrap();
    assert!(
        (engine.session_remaining("alice").unwrap() - 1.0).abs() < 1e-12,
        "a failed commit must not charge"
    );
    let first = engine.serve_tagged("alice", 7, &request).unwrap();
    assert!((engine.session_remaining("alice").unwrap() - 0.6).abs() < 1e-12);
    let replay = engine.serve_tagged("alice", 7, &request).unwrap();
    assert_eq!(first, replay, "replays must be bit-identical");
    assert!(
        (engine.session_remaining("alice").unwrap() - 0.6).abs() < 1e-12,
        "the replay must cost zero ε"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash point 2: the combined charge+answer frame is durable but the
/// process dies before anyone saw the answer. The retried key replays
/// the recovered answer — from a **different-seed** engine, proving the
/// bytes come from the WAL's reply cache, not from noise regeneration.
#[test]
fn retry_after_postcommit_crash_replays_the_durable_answer() {
    let dir = scratch_dir("postcommit");
    let request = Request::range("pol", "ds", eps(0.4), 4, 20);
    let first = {
        let store = Arc::new(Store::open(&dir).unwrap());
        let engine = build_engine(99, store);
        engine.open_session("alice", eps(1.0)).unwrap();
        engine.serve_tagged("alice", 7, &request).unwrap()
    }; // the Replied frame landed; the reply itself never left the box

    let store = Arc::new(Store::open(&dir).unwrap());
    let engine = build_engine(4242, store); // different noise stream
    engine.open_session("alice", eps(1.0)).unwrap();
    assert!(
        (engine.session_remaining("alice").unwrap() - 0.6).abs() < 1e-12,
        "the pre-crash charge must survive recovery"
    );
    let replay = engine.serve_tagged("alice", 7, &request).unwrap();
    assert_eq!(first, replay, "the recovered reply must be bit-identical");
    assert!(
        (engine.session_remaining("alice").unwrap() - 0.6).abs() < 1e-12,
        "the replay must cost zero ε"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// One seeded chaos run: a fault schedule derived from `seed` is
/// injected into a tagged serve stream; the run returns the
/// acknowledged answers, the recovered spent bits and the recovered
/// state digest.
fn chaos_run(seed: u64, generation: u32) -> (Vec<Response>, u64, u64) {
    use blowfish::chaos::{ChaosRng, StoreFault, StorePlan};
    use blowfish::store::StoreConfig;
    let mut rng = ChaosRng::new(seed);
    let fault = match rng.next_below(3) {
        0 => StoreFault::FailWrite,
        1 => StoreFault::TornWrite,
        _ => StoreFault::FailSync,
    };
    let op = 4 + rng.next_below(9); // lands somewhere in the serve stream
    let dir = scratch_dir(&format!("chaos-sweep-{seed}-{generation}"));
    let mut acked = Vec::new();
    {
        let plan = Arc::new(StorePlan::scripted([(op, fault)]));
        let store = Store::open_with(
            &dir,
            StoreConfig {
                fault_plan: Some(Arc::clone(&plan)),
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let engine = build_engine(1000 + seed, Arc::new(store));
        engine.open_session("alice", eps(8.0)).unwrap();
        for i in 0..10u64 {
            let lo = (i as usize * 3) % 40;
            let request = Request::range("pol", "ds", eps(0.25), lo, lo + 12);
            match engine.serve_tagged("alice", i, &request) {
                Ok(response) => acked.push(response),
                Err(_) => break, // the store poisoned — the process "dies"
            }
        }
    }
    // Recovery: every acknowledged charge is covered — and since each
    // charge is exactly 0.25, the recovered spend is the acked sum plus
    // at most the one in-flight frame a FailSync left durable but
    // unacknowledged. Both candidates are exactly representable, so the
    // comparison is bit-for-bit, not approximate.
    let store = Store::open(&dir).unwrap();
    let spent = store
        .recovered_state()
        .sessions
        .get("alice")
        .map_or(0.0, |s| s.spent);
    let acked_sum = 0.25 * acked.len() as f64;
    let with_in_flight = 0.25 * (acked.len() + 1) as f64;
    assert!(
        spent.to_bits() == acked_sum.to_bits() || spent.to_bits() == with_in_flight.to_bits(),
        "seed {seed}: recovered spent {spent} must be the acked sum {acked_sum} \
         or that plus the single in-flight charge"
    );

    // Generation 2 retries every key. Acked answers replay from the
    // recovered cache bit-identically; the faulted one either replays
    // (its frame survived) or serves fresh — in both cases each key
    // ends up charged exactly once: 10 × 0.25 on the nose.
    let engine = build_engine(1000 + seed, Arc::new(store));
    engine.open_session("alice", eps(8.0)).unwrap();
    let retried: Vec<Response> = (0..10u64)
        .map(|i| {
            let lo = (i as usize * 3) % 40;
            let request = Request::range("pol", "ds", eps(0.25), lo, lo + 12);
            engine.serve_tagged("alice", i, &request).unwrap()
        })
        .collect();
    for (i, answer) in acked.iter().enumerate() {
        assert_eq!(
            answer, &retried[i],
            "seed {seed}: acknowledged answer {i} must replay bit-identically"
        );
    }
    let final_spent = 8.0 - engine.session_remaining("alice").unwrap();
    assert_eq!(
        final_spent.to_bits(),
        2.5f64.to_bits(),
        "seed {seed}: after retries every request is charged exactly once"
    );
    let digest = {
        drop(engine);
        let store = Store::open(&dir).unwrap();
        let d = store.recovered_state().digest();
        drop(store);
        d
    };
    std::fs::remove_dir_all(&dir).unwrap();
    (retried, final_spent.to_bits(), digest)
}

/// The acceptance sweep: across seeds, every run recovers with spent ε
/// equal to the acknowledged sum bit-for-bit, and the **same seed**
/// (hence the same fault schedule) reproduces byte-identical answers
/// and a byte-identical recovered ledger.
#[test]
fn chaos_sweep_never_resurrects_and_replays_deterministically() {
    for seed in 0..6u64 {
        let a = chaos_run(seed, 0);
        let b = chaos_run(seed, 1);
        assert_eq!(
            a, b,
            "seed {seed}: same fault schedule must replay byte-identically"
        );
    }
}

/// An acknowledged charge always survives: whatever prefix of commits
/// completed, recovery covers all of them (torn bytes can only eat the
/// *unacknowledged* suffix).
#[test]
fn acknowledged_charges_always_survive_recovery() {
    let dir = scratch_dir("acked");
    let store = Store::open(&dir).unwrap();
    store
        .commit(&[Record::session_opened("alice", 100.0)])
        .unwrap();
    let mut acked = 0.0f64;
    for i in 0..20 {
        let e = (i + 1) as f64 / 256.0;
        store
            .commit(&[Record::charged("alice", &format!("q{i}"), e)])
            .unwrap();
        acked += e;
        // Crash after any prefix of acknowledgements: reopen a parallel
        // store on the same directory contents.
        if i % 5 == 4 {
            let copy = scratch_dir("acked-copy");
            for entry in std::fs::read_dir(&dir).unwrap() {
                let p = entry.unwrap().path();
                std::fs::copy(&p, copy.join(p.file_name().unwrap())).unwrap();
            }
            let recovered = Store::open(&copy).unwrap();
            let s = &recovered.recovered_state().sessions["alice"];
            assert!(
                s.spent >= acked - 1e-12,
                "after {} acks: recovered {} < acknowledged {acked}",
                i + 1,
                s.spent
            );
            std::fs::remove_dir_all(&copy).unwrap();
        }
    }
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}
