//! End-to-end tests of the network stack through the `blowfish` facade:
//! a WAL-backed engine behind the async server behind the TCP
//! front-end, exercised by real sockets.

use blowfish::net::{Client, NetConfig, NetError, NetServer, RetryPolicy};
use blowfish::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

fn build_net(
    seed: u64,
    store_dir: Option<&std::path::Path>,
    server_config: ServerConfig,
    net_config: NetConfig,
) -> NetServer {
    let engine = match store_dir {
        Some(dir) => Engine::with_store(seed, Arc::new(Store::open(dir).unwrap())),
        None => Engine::with_seed(seed),
    };
    let domain = Domain::line(64).unwrap();
    engine
        .register_policy("pol", Policy::distance_threshold(domain.clone(), 2))
        .unwrap();
    let rows: Vec<usize> = (0..640).map(|i| (i * 7) % 64).collect();
    engine
        .register_dataset("ds", Dataset::from_rows(domain, rows).unwrap())
        .unwrap();
    let points = PointSet::new(
        vec![
            vec![1.0, 1.0],
            vec![1.2, 0.8],
            vec![9.0, 9.0],
            vec![8.8, 9.1],
        ],
        BoundingBox::new(vec![0.0, 0.0], vec![10.0, 10.0]),
    );
    engine.register_points("pts", points).unwrap();
    let server = Arc::new(Server::new(Arc::new(engine), server_config));
    NetServer::bind("127.0.0.1:0", server, net_config).unwrap()
}

#[test]
fn kmeans_crosses_the_wire_with_its_spec() {
    let net = build_net(31, None, ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.open_session("km", 5.0).unwrap();
    let response = client
        .call(
            "km",
            &Request::kmeans(
                "pol",
                "pts",
                eps(2.0),
                2,
                3,
                KmeansSecretSpec::L1Threshold(1.0),
            ),
        )
        .unwrap();
    let centroids = response.centroids().unwrap();
    assert_eq!(centroids.len(), 2);
    assert!(centroids.iter().all(|c| c.len() == 2));
    assert!((client.budget("km").unwrap().remaining - 3.0).abs() < 1e-12);
    net.shutdown().unwrap();
}

#[test]
fn wal_recovered_spend_equals_wire_observed_spend() {
    let dir = blowfish::store::scratch_dir("net-facade-ledger");
    let observed = {
        let net = build_net(
            32,
            Some(&dir),
            ServerConfig::default(),
            NetConfig::default(),
        );
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("audit", 2.0).unwrap();
        for i in 0..5 {
            client
                .call(
                    "audit",
                    &Request::range("pol", "ds", eps(0.1 * (i + 1) as f64), i, i + 20),
                )
                .unwrap();
        }
        let spent = client.budget("audit").unwrap().spent;
        client.goodbye().unwrap();
        net.shutdown().unwrap();
        spent
    };
    // The WAL must hold exactly what the wire reported — bit for bit.
    let store = Store::open(&dir).unwrap();
    let recovered = &store.recovered_state().sessions["audit"];
    assert_eq!(recovered.spent.to_bits(), observed.to_bits());
    assert_eq!(recovered.served, 5);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn goodbye_drains_in_flight_work_before_closing() {
    let net = build_net(
        33,
        None,
        ServerConfig {
            coalesce_window: 2,
            ..ServerConfig::default()
        },
        NetConfig {
            tick_interval: Duration::from_millis(10),
            ..NetConfig::default()
        },
    );
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.open_session("polite", 1.0).unwrap();
    for i in 0..4 {
        client
            .submit("polite", &Request::range("pol", "ds", eps(0.1), i, i + 10))
            .unwrap();
    }
    // Goodbye immediately: the server must answer everything in flight
    // before the Farewell.
    client.goodbye().unwrap();
    let stats = net.server().stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.answered, 4, "goodbye must drain, not drop");
    assert_eq!(stats.cancelled, 0);
    net.shutdown().unwrap();
}

#[test]
fn net_shutdown_refuses_new_submissions_over_the_wire() {
    let net = build_net(34, None, ServerConfig::default(), NetConfig::default());
    let addr = net.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.open_session("late", 1.0).unwrap();
    client
        .call("late", &Request::range("pol", "ds", eps(0.1), 0, 10))
        .unwrap();
    net.shutdown().unwrap();
    // The old connection is gone; new dials refuse.
    let result = client.call("late", &Request::range("pol", "ds", eps(0.1), 0, 10));
    assert!(
        matches!(
            result,
            Err(NetError::Io(_)) | Err(NetError::ConnectionLost { .. })
        ),
        "got {result:?}"
    );
    assert!(Client::connect(addr).is_err(), "listener must be closed");
}

#[test]
fn wire_and_in_process_serving_agree_bit_for_bit() {
    // The same seed and the same per-analyst stream, once over TCP and
    // once in process: answers must be byte-identical — the wire layer
    // adds transport, never perturbs the release stream.
    let over_wire: Vec<u64> = {
        let net = build_net(35, None, ServerConfig::default(), NetConfig::default());
        let mut client = Client::connect(net.local_addr()).unwrap();
        client.open_session("twin", 10.0).unwrap();
        let answers = (0..6)
            .map(|i| {
                client
                    .call("twin", &Request::range("pol", "ds", eps(0.25), i, i + 16))
                    .unwrap()
                    .scalar()
                    .unwrap()
                    .to_bits()
            })
            .collect();
        net.shutdown().unwrap();
        answers
    };
    let in_process: Vec<u64> = {
        let net = build_net(35, None, ServerConfig::default(), NetConfig::default());
        let engine = Arc::clone(net.server().engine());
        engine.open_session("twin", eps(10.0)).unwrap();
        let answers = (0..6)
            .map(|i| {
                engine
                    .serve("twin", &Request::range("pol", "ds", eps(0.25), i, i + 16))
                    .unwrap()
                    .scalar()
                    .unwrap()
                    .to_bits()
            })
            .collect();
        net.shutdown().unwrap();
        answers
    };
    assert_eq!(over_wire, in_process);
}

/// The third acknowledged-crash point of the exactly-once story: the
/// charge is durable, the answer is computed, and the reply frame dies
/// on the wire. A resubmission under the same idempotency key must
/// replay the durable answer — bit-identically, at zero additional ε.
#[test]
fn dropped_reply_frame_replays_without_recharging() {
    use blowfish::chaos::{NetFault, NetPlan};
    let net = build_net(
        40,
        None,
        ServerConfig::default(),
        NetConfig {
            fault_plan: Some(Arc::new(NetPlan::scripted([(1, NetFault::DropConnection)]))),
            ..NetConfig::default()
        },
    );
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.open_session("retry", 1.0).unwrap();
    let request = Request::range("pol", "ds", eps(0.4), 2, 22);
    // First delivery: the server serves (and durably charges), then the
    // chaos plan kills the connection instead of writing the answer.
    let id = client
        .submit_tagged("retry", &request, Some(7), None)
        .unwrap();
    let lost = client.wait(id);
    assert!(
        matches!(
            lost,
            Err(NetError::ConnectionLost { .. }) | Err(NetError::Io(_))
        ),
        "got {lost:?}"
    );
    // Reconnect and resubmit the same key, twice: both replays come from
    // the durable reply cache and must agree byte for byte.
    client.reconnect().unwrap();
    let id = client
        .submit_tagged("retry", &request, Some(7), None)
        .unwrap();
    let first = client.wait(id).unwrap();
    let id = client
        .submit_tagged("retry", &request, Some(7), None)
        .unwrap();
    let second = client.wait(id).unwrap();
    assert_eq!(first, second, "replays must be bit-identical");
    let budget = client.budget("retry").unwrap();
    assert!(
        (budget.spent - 0.4).abs() < 1e-12,
        "charged exactly once, spent {}",
        budget.spent
    );
    net.shutdown().unwrap();
}

/// The hands-off variant: [`Client::call_idempotent`] owns the
/// reconnect-backoff-resubmit loop and still charges exactly once.
#[test]
fn call_idempotent_retries_through_a_dropped_reply() {
    use blowfish::chaos::{NetFault, NetPlan};
    let net = build_net(
        41,
        None,
        ServerConfig::default(),
        NetConfig {
            fault_plan: Some(Arc::new(NetPlan::scripted([(1, NetFault::DropConnection)]))),
            ..NetConfig::default()
        },
    );
    let mut client = Client::connect(net.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    client.open_session("idem", 1.0).unwrap();
    let response = client
        .call_idempotent(
            "idem",
            &Request::range("pol", "ds", eps(0.3), 0, 10),
            &RetryPolicy::default(),
        )
        .unwrap();
    assert!(response.scalar().is_some());
    let budget = client.budget("idem").unwrap();
    assert!(
        (budget.spent - 0.3).abs() < 1e-12,
        "charged exactly once, spent {}",
        budget.spent
    );
    let stats = net.server().stats();
    assert!(stats.retries >= 1, "the replay must count as a retry");
    net.shutdown().unwrap();
}

/// The robustness counters ride the ordinary stats scrape: one
/// `StatsReport` covers fault injection, retries, replay hits, deadline
/// refusals and load shedding alongside the engine and store metrics.
#[test]
fn stats_report_exposes_the_chaos_and_retry_counters() {
    let net = build_net(42, None, ServerConfig::default(), NetConfig::default());
    let mut client = Client::connect(net.local_addr()).unwrap();
    let names: Vec<String> = client
        .stats()
        .unwrap()
        .iter()
        .map(|m| m.name().to_owned())
        .collect();
    for needle in [
        "faults_injected",
        "retries",
        "replay_cache_hits",
        "deadline_refusals",
        "shed_requests",
    ] {
        assert!(
            names.iter().any(|n| n.contains(needle)),
            "missing {needle} in {names:?}"
        );
    }
    net.shutdown().unwrap();
}

#[test]
fn mid_stream_disconnect_is_a_regression_guard_at_the_facade() {
    let net = build_net(
        36,
        None,
        ServerConfig {
            coalesce_window: 8,
            ..ServerConfig::default()
        },
        NetConfig {
            tick_interval: Duration::from_millis(50),
            ..NetConfig::default()
        },
    );
    let addr = net.local_addr();
    {
        let mut client = Client::connect(addr).unwrap();
        client.open_session("flaky", 1.0).unwrap();
        client
            .submit("flaky", &Request::range("pol", "ds", eps(0.9), 0, 30))
            .unwrap();
    } // dropped mid-request
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while net.server().stats().cancelled == 0 {
        assert!(std::time::Instant::now() < deadline, "no cancellation seen");
        std::thread::sleep(Duration::from_millis(10));
    }
    // The full budget survives for the reconnecting analyst.
    let mut client = Client::connect(addr).unwrap();
    let remaining = client.open_session("flaky", 1.0).unwrap();
    assert_eq!(remaining, 1.0, "abandoned request must not charge");
    client
        .call("flaky", &Request::range("pol", "ds", eps(0.9), 0, 30))
        .unwrap();
    net.shutdown().unwrap();
}
